"""repro.protect — instruction selectors and the duplication pass."""

from .duplication import (
    DuplicationPass,
    DuplicationReport,
    duplicate_instructions,
    is_duplicable,
)
from .selectors import (
    FullDuplicationSelector,
    IpasSelector,
    LearnedSelector,
    NoProtectionSelector,
    Selector,
    ShoestringStyleSelector,
    StaticRiskSelector,
)

__all__ = [
    "DuplicationPass", "DuplicationReport", "duplicate_instructions",
    "is_duplicable",
    "FullDuplicationSelector", "IpasSelector", "LearnedSelector",
    "NoProtectionSelector", "Selector", "ShoestringStyleSelector",
    "StaticRiskSelector",
]
