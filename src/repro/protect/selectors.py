"""Instruction selection policies (paper step 4 plus the §5.3 baselines).

* :class:`IpasSelector` — protect instructions the trained classifier
  predicts as **SOC-generating** (class 1).  The heart of IPAS.
* :class:`ShoestringStyleSelector` — the paper's comparison baseline: a
  classifier trained on *symptom* labels; protect instructions predicted
  **non-symptom-generating** (faults in symptom-generating instructions are
  covered by symptom-/system-level detection, so duplication there is
  wasted).
* :class:`FullDuplicationSelector` — SWIFT-style: protect everything
  eligible ("Full dup." bars of Fig. 5).
* :class:`NoProtectionSelector` — the unprotected reference.
* :class:`StaticRiskSelector` — injection-free: protect the instructions
  the static risk model (:mod:`repro.analysis.risk`) ranks highest.  No
  training campaign, no classifier — the zero-cost baseline that lets
  new workloads be protected without re-running fault injection.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..analysis.risk import StaticRiskModel
from ..features.extract import FeatureExtractor
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ml.scaling import StandardScaler
from .duplication import is_duplicable


class Selector:
    """Base: maps a module to the list of instructions to duplicate."""

    name = "abstract"

    def select(self, module: Module) -> List[Instruction]:
        raise NotImplementedError

    @staticmethod
    def eligible(module: Module) -> List[Instruction]:
        return [i for i in module.instructions() if is_duplicable(i)]


class NoProtectionSelector(Selector):
    name = "unprotected"

    def select(self, module: Module) -> List[Instruction]:
        return []


class FullDuplicationSelector(Selector):
    name = "full-duplication"

    def select(self, module: Module) -> List[Instruction]:
        return self.eligible(module)


class StaticRiskSelector(Selector):
    """Protect by static SOC-risk score — zero injections required.

    Either an absolute ``threshold`` on the risk score, or (default) a
    ``budget_fraction``: the highest-risk fraction of the eligible
    instructions, mirroring how a user would spend a fixed slowdown
    budget.  Instructions with zero static risk are never selected.
    """

    def __init__(
        self,
        threshold: Optional[float] = None,
        budget_fraction: float = 0.5,
    ):
        if threshold is None and not (0.0 < budget_fraction <= 1.0):
            raise ValueError("budget_fraction must be in (0, 1]")
        self.threshold = threshold
        self.budget_fraction = budget_fraction
        self.name = (
            f"static-risk@{threshold:.2f}"
            if threshold is not None
            else f"static-risk-top{int(round(budget_fraction * 100))}%"
        )

    def select(self, module: Module) -> List[Instruction]:
        candidates = self.eligible(module)
        if not candidates:
            return []
        report = StaticRiskModel(module).assess_many(candidates)
        if self.threshold is not None:
            chosen = report.above(self.threshold)
        else:
            chosen = report.top_fraction(self.budget_fraction)
        selected_ids = {id(a.instruction) for a in chosen if a.risk > 0.0}
        # Preserve module order (the duplication pass sorts per block, but
        # deterministic selection order keeps reports reproducible).
        return [inst for inst in candidates if id(inst) in selected_ids]


class LearnedSelector(Selector):
    """Selects by a trained classifier over Table-1 features.

    ``protect_positive=True`` protects instructions predicted class 1;
    ``False`` protects those predicted class 0 (the Shoestring policy).
    ``feature_mask`` optionally restricts the features used (ablations).
    """

    def __init__(
        self,
        model,
        scaler: Optional[StandardScaler],
        protect_positive: bool,
        feature_mask: Optional[np.ndarray] = None,
        name: str = "learned",
        function_scope: Optional[List[str]] = None,
    ):
        self.model = model
        self.scaler = scaler
        self.protect_positive = protect_positive
        self.feature_mask = feature_mask
        self.name = name
        #: restrict protection to these function names (paper §7: large
        #: codes can be protected kernel by kernel); None = whole module.
        self.function_scope = set(function_scope) if function_scope else None

    def select(self, module: Module) -> List[Instruction]:
        candidates = self.eligible(module)
        if self.function_scope is not None:
            candidates = [
                inst
                for inst in candidates
                if inst.function is not None
                and inst.function.name in self.function_scope
            ]
        if not candidates:
            return []
        extractor = FeatureExtractor(module)
        X = extractor.extract_many(candidates)
        if self.feature_mask is not None:
            X = X[:, self.feature_mask]
        if self.scaler is not None:
            X = self.scaler.transform(X)
        predictions = self.model.predict(X)
        want = 1 if self.protect_positive else 0
        return [inst for inst, p in zip(candidates, predictions) if p == want]


class IpasSelector(LearnedSelector):
    """Protect predicted SOC-generating instructions (paper step 4)."""

    def __init__(self, model, scaler=None, feature_mask=None, function_scope=None):
        super().__init__(
            model,
            scaler,
            protect_positive=True,
            feature_mask=feature_mask,
            name="ipas",
            function_scope=function_scope,
        )


class ShoestringStyleSelector(LearnedSelector):
    """Protect predicted *non-symptom-generating* instructions (paper §5.3)."""

    def __init__(self, model, scaler=None, feature_mask=None, function_scope=None):
        super().__init__(
            model,
            scaler,
            protect_positive=False,
            feature_mask=feature_mask,
            name="baseline",
            function_scope=function_scope,
        )
