"""The instruction-duplication transformation (paper §4.4).

Given the set of instructions selected for protection, the pass:

1. **duplicates** each selected instruction, remapping operands so that a
   duplicate consumes the duplicates of its (selected) producers — SWIFT's
   shadow dataflow, restricted to the selected set;
2. builds **duplication paths**: maximal def-use chains of duplicated
   instructions *within one basic block* (the paper limits path span to a
   single block);
3. inserts one **comparison check** (an ``ipas.check.<type>`` intrinsic
   comparing the original against its duplicate) at the end of every path;
   an isolated duplicated instruction gets its check right after itself.

Loads and stores are never duplicated (ECC-protected memory), calls are
never re-executed (side effects); both can still *appear* inside a path as
consumers of checked values.  The transformed module is verified and remains
semantically identical on fault-free runs — duplicates feed only duplicates
and checks, never the original dataflow.

The shadow dataflow is **global**: a clone consumes the clone of its
producer even when the producer lives in another block (SWIFT's redundant
dataflow; the def of a clone sits right after its original, so dominance
is inherited).  Only phis, loads, and calls break the shadow chain — their
consumers' clones read the original value, exactly where a corruption can
slip between the redundant streams.  The pass records its work as module
metadata (``module.check_sites``, ``module.duplicate_map``) so the
coverage prover (:mod:`repro.analysis.coverage`) and the check-redundancy
eliminator (:mod:`repro.passes.check_elim`) can reason about which check
guards which fault sites without re-deriving the pairing structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOperator,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from ..ir.module import Module
from ..ir.types import Type, VOID
from ..ir.values import Value
from ..ir.verifier import verify_module
from ..recover.regions import compute_regions


def is_duplicable(inst: Instruction) -> bool:
    """Instructions the pass may clone: pure, register-producing compute.

    Calls are protectable (their returned value is compared — see
    ``_needs_value_check``) but not *re-executable*, so they are never
    cloned.
    """
    return isinstance(
        inst, (BinaryOperator, GEPInst, CastInst, ICmpInst, FCmpInst, SelectInst)
    )


def _check_intrinsic_name(type_: Type) -> str:
    # Pointer types mangle as "p.<pointee>" so the name stays a clean
    # identifier (printable and parseable): ipas.check.p.f64, etc.
    if type_.is_pointer():
        return f"ipas.check.p.{type_.pointee}"  # type: ignore[attr-defined]
    return f"ipas.check.{type_}"


@dataclass(frozen=True)
class CheckSite:
    """One inserted ``ipas.check.*`` call and the value pair it compares.

    ``original`` is the duplication-path tail whose value the check guards;
    ``duplicate`` is its shadow clone; ``check`` is the comparison call
    itself.  Recorded on the report and as ``module.check_sites`` so
    downstream analyses can pair checks with protected values without
    pattern-matching the IR.
    """

    original: Instruction
    duplicate: Instruction
    check: CallInst


class DuplicationReport:
    """What the pass did — feeds Fig. 7 (duplicated-instruction percentages)."""

    def __init__(self):
        self.selected = 0
        self.duplicated = 0
        self.checks_inserted = 0
        self.paths: int = 0
        self.eligible = 0
        #: every inserted check, paired with the value it protects
        self.check_sites: List[CheckSite] = []
        #: id(original instruction) -> its shadow clone
        self.duplicate_map: Dict[int, Instruction] = {}
        #: function -> snapshot block names recorded for the recovery
        #: runtime (loop headers + entry of every check-bearing function)
        self.regions: Dict[str, Tuple[str, ...]] = {}

    @property
    def duplicated_fraction(self) -> float:
        return self.duplicated / self.eligible if self.eligible else 0.0

    def __repr__(self) -> str:
        return (
            f"<DuplicationReport duplicated={self.duplicated}/{self.eligible} "
            f"paths={self.paths} checks={self.checks_inserted}>"
        )


class DuplicationPass:
    """Applies selective duplication to a module, in place.

    ``check_placement`` chooses where comparisons go: ``"tails"`` (default)
    inserts one check per duplication-path tail (paper §4.4); ``"every"``
    checks after *each* duplicated instruction — naive SWIFT-style
    placement, kept as the reference point the check-redundancy
    eliminator (:mod:`repro.passes.check_elim`) is measured against.
    """

    def __init__(self, module: Module, check_placement: str = "tails"):
        if check_placement not in ("tails", "every"):
            raise ValueError(f"unknown check placement: {check_placement!r}")
        self.module = module
        self.check_placement = check_placement
        self.report = DuplicationReport()

    # -- public API -----------------------------------------------------------------

    def run(self, selected: Iterable[Instruction]) -> DuplicationReport:
        """Protect ``selected`` instructions; returns the report.

        Unknown/ineligible instructions in ``selected`` are ignored (the
        classifier may nominate calls or loads; calls get a value check,
        the rest contribute nothing).
        """
        selected_list = [s for s in selected]
        self.report.selected = len(selected_list)
        self.report.eligible = sum(
            1 for i in self.module.instructions() if is_duplicable(i)
        )
        by_block: Dict[int, List[Instruction]] = {}
        block_of: Dict[int, BasicBlock] = {}
        for inst in selected_list:
            block = inst.parent
            if block is None:
                continue
            by_block.setdefault(id(block), []).append(inst)
            block_of[id(block)] = block

        # Phase 1: create every clone (operands still point at originals).
        # Clones must all exist before any remapping so a clone can consume
        # the clone of a producer in *another* block.
        per_block: Dict[int, List[Instruction]] = {}
        clones: Dict[int, Instruction] = {}
        for block_id, instructions in by_block.items():
            block = block_of[block_id]
            duplicable = [i for i in instructions if is_duplicable(i)]
            order = {id(inst): n for n, inst in enumerate(block.instructions)}
            duplicable.sort(key=lambda i: order[id(i)])
            per_block[block_id] = duplicable
            for inst in duplicable:
                clone = self._clone(inst)
                block.insert_after(inst, clone)
                clones[id(inst)] = clone
                self.report.duplicated += 1

        # Phase 2: rewire the shadow dataflow globally — each clone consumes
        # the clone of its producer wherever one exists.  A clone sits right
        # after its original, so it dominates everything the original does
        # (bar the single slot in between, which holds no consumer).
        for clone in clones.values():
            for index, op in enumerate(list(clone.operands)):
                if isinstance(op, Instruction):
                    shadow = clones.get(id(op))
                    if shadow is not None:
                        clone.set_operand(index, shadow)

        # Phase 3: path construction and check insertion, per block.
        for block_id, duplicable in per_block.items():
            block = block_of[block_id]
            if self.check_placement == "every":
                paths = [[inst] for inst in duplicable]
            else:
                paths = self._duplication_paths(duplicable, clones)
            self.report.paths += len(paths)
            for path in paths:
                tail = path[-1]
                self._insert_check(block, tail, clones[id(tail)])

        self.report.duplicate_map = dict(clones)
        verify_module(self.module)
        # Record where the recovery runtime may snapshot: the inserted
        # checks define which functions can fire, and their loop headers
        # plus entries are the rollback boundaries (module metadata the
        # interpreter picks up when recovery is armed).
        self.report.regions = compute_regions(self.module)
        self.module.recovery_regions = self.report.regions
        # Protection metadata for the coverage prover and check-redundancy
        # elimination (same precedent as ``recovery_regions``).
        self.module.check_sites = list(self.report.check_sites)
        self.module.duplicate_map = dict(clones)
        return self.report

    def _needs_value_check(self, inst: Instruction) -> bool:
        return isinstance(inst, CallInst) and inst.produces_value()

    def _clone(self, inst: Instruction) -> Instruction:
        def remap(v: Value) -> Value:
            # Operands keep pointing at the originals here; the global
            # remap (phase 2 of ``run``) rewires them to shadow clones.
            return v

        if isinstance(inst, BinaryOperator):
            return BinaryOperator(
                inst.opcode, remap(inst.lhs), remap(inst.rhs), inst.name + ".dup"
            )
        if isinstance(inst, GEPInst):
            return GEPInst(remap(inst.base), remap(inst.index), inst.name + ".dup")
        if isinstance(inst, CastInst):
            return CastInst(
                inst.opcode, remap(inst.operands[0]), inst.type, inst.name + ".dup"
            )
        if isinstance(inst, ICmpInst):
            return ICmpInst(
                inst.predicate,
                remap(inst.operands[0]),
                remap(inst.operands[1]),
                inst.name + ".dup",
            )
        if isinstance(inst, FCmpInst):
            return FCmpInst(
                inst.predicate,
                remap(inst.operands[0]),
                remap(inst.operands[1]),
                inst.name + ".dup",
            )
        if isinstance(inst, SelectInst):
            return SelectInst(
                remap(inst.operands[0]),
                remap(inst.operands[1]),
                remap(inst.operands[2]),
                inst.name + ".dup",
            )
        raise TypeError(f"cannot clone {inst!r}")

    # -- duplication paths -------------------------------------------------------------------

    def _duplication_paths(
        self, duplicated: List[Instruction], clones: Dict[int, Instruction]
    ) -> List[List[Instruction]]:
        """Maximal def-use chains among the duplicated set, within the block.

        An instruction is an interior node of a path if at least one
        duplicated instruction in the same block uses it (paper §4.4); the
        *tails* — duplicated instructions whose value no duplicated
        instruction consumes — each terminate one path and receive the
        check.  Isolated instructions form singleton paths.
        """
        duplicated_ids = {id(i) for i in duplicated}
        paths: List[List[Instruction]] = []
        for inst in duplicated:
            has_duplicated_user = any(
                id(user) in duplicated_ids and user.parent is inst.parent
                for user in inst.users
            )
            if has_duplicated_user:
                continue
            # `inst` is a tail: walk back along its duplicated producers to
            # reconstruct one chain (for reporting; only the tail matters
            # for check placement).
            path = [inst]
            cursor = inst
            while True:
                producer = next(
                    (
                        op
                        for op in cursor.operands
                        if isinstance(op, Instruction)
                        and id(op) in duplicated_ids
                        and op.parent is cursor.parent
                    ),
                    None,
                )
                if producer is None:
                    break
                path.append(producer)
                cursor = producer
            path.reverse()
            paths.append(path)
        return paths

    # -- check insertion ------------------------------------------------------------------------

    def _insert_check(
        self, block: BasicBlock, original: Instruction, duplicate: Instruction
    ) -> None:
        name = _check_intrinsic_name(original.type)
        check_fn = self.module.declare_function(
            name,
            return_type=VOID,
            param_types=[original.type, original.type],
            is_intrinsic=True,
        )
        check = CallInst(check_fn, [original, duplicate])
        block.insert_after(duplicate, check)
        self.report.checks_inserted += 1
        self.report.check_sites.append(CheckSite(original, duplicate, check))


def duplicate_instructions(
    module: Module,
    selected: Iterable[Instruction],
    check_placement: str = "tails",
) -> DuplicationReport:
    """Convenience wrapper: run the duplication pass on ``module``."""
    return DuplicationPass(module, check_placement=check_placement).run(selected)
