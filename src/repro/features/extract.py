"""The 31 instruction features of paper Table 1.

Four categories, exactly as the paper defines them:

* **instruction** (1–12): opcode-class booleans plus result byte size;
* **basic block** (13–19): block size/shape and loop membership;
* **function** (20–24): position relative to the return, function size,
  future calls, and whether the function returns a value;
* **slice** (25–31): statistics of the instruction's *forward* slice
  (Weiser's algorithm — instructions the faulty value can influence).

A :class:`FeatureExtractor` caches the per-function analyses (loop info,
distance-to-return, reachability) and the module-wide slice context so that
extracting features for every instruction of a module stays cheap.

Beyond Table 1, ``include_static_risk=True`` appends the three scores of
the static risk model (:mod:`repro.analysis.risk`) — observability, local
absorption, combined risk — as features 32–34.  They are off by default so
the paper-reproduction experiments keep the exact 31-dimensional space.
``include_coverage=True`` likewise appends two injection-free features from
the protection-coverage prover (:mod:`repro.analysis.coverage`): the static
escape verdict and the provably-killed bit fraction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..analysis.dataflow import distance_to_return
from ..analysis.loops import LoopInfo
from ..analysis.masking import local_absorption
from ..analysis.risk import ObservabilityAnalysis
from ..analysis.slicing import SliceContext, SliceStatistics, forward_slice
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    AtomicRMWInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    RetInst,
)
from ..ir.module import Module

#: Feature names in Table-1 order (index i = feature number i+1).
FEATURE_NAMES: List[str] = [
    "is_binary_op",                # 1
    "is_add_sub",                  # 2
    "is_mul_div",                  # 3
    "is_remainder",                # 4
    "is_logical",                  # 5
    "is_call",                     # 6
    "is_comparison",               # 7
    "is_atomic",                   # 8
    "is_get_pointer",              # 9
    "is_stack_allocation",         # 10
    "is_cast",                     # 11
    "result_bytes",                # 12
    "bb_remaining_instructions",   # 13
    "bb_size",                     # 14
    "bb_successor_count",          # 15
    "bb_successor_sizes_sum",      # 16
    "bb_in_loop",                  # 17
    "bb_has_phi",                  # 18
    "bb_ends_in_branch",           # 19
    "fn_instructions_to_return",   # 20
    "fn_instruction_count",        # 21
    "fn_block_count",              # 22
    "fn_future_calls",             # 23
    "fn_returns_value",            # 24
    "slice_size",                  # 25
    "slice_loads",                 # 26
    "slice_stores",                # 27
    "slice_calls",                 # 28
    "slice_binary_ops",            # 29
    "slice_allocas",               # 30
    "slice_geps",                  # 31
]

NUM_FEATURES = len(FEATURE_NAMES)

#: Optional injection-free features appended when ``include_static_risk``
#: is set (indices 31-33).
STATIC_RISK_FEATURE_NAMES: List[str] = [
    "static_observability",        # 32
    "static_absorption",           # 33
    "static_risk",                 # 34
]

#: Optional prover features appended when ``include_coverage`` is set —
#: the static escape verdict and the provably-killed bit fraction from
#: :mod:`repro.analysis.coverage`.  Like the risk scores they need zero
#: injections, so they are legal classifier inputs.
COVERAGE_FEATURE_NAMES: List[str] = [
    "static_escapes",              # 1.0 iff the prover verdict is ESCAPES
    "static_masked_fraction",      # fraction of flipped bits provably killed
]


def feature_names(
    include_static_risk: bool = False, include_coverage: bool = False
) -> List[str]:
    """Feature names in column order for the chosen feature space."""
    names = list(FEATURE_NAMES)
    if include_static_risk:
        names += STATIC_RISK_FEATURE_NAMES
    if include_coverage:
        names += COVERAGE_FEATURE_NAMES
    return names

#: Feature indices (0-based) grouped by Table-1 category, for ablations.
FEATURE_CATEGORIES: Dict[str, List[int]] = {
    "instruction": list(range(0, 12)),
    "basic_block": list(range(12, 19)),
    "function": list(range(19, 24)),
    "slice": list(range(24, 31)),
}


class _FunctionCaches:
    __slots__ = ("loop_info", "return_distance", "future_calls")

    def __init__(self, fn: Function):
        self.loop_info = LoopInfo(fn)
        self.return_distance = distance_to_return(fn)
        self.future_calls = _future_call_index(fn)


def _future_call_index(fn: Function) -> Dict[int, int]:
    """For each block, the number of call instructions in blocks reachable
    from it (excluding the block itself — the remainder of the current block
    is added per-instruction)."""
    calls_in: Dict[int, int] = {
        id(b): sum(1 for i in b.instructions if isinstance(i, CallInst))
        for b in fn.blocks
    }
    result: Dict[int, int] = {}
    for block in fn.blocks:
        seen = set()
        stack = list(block.successors())
        total = 0
        while stack:
            b = stack.pop()
            if id(b) in seen:
                continue
            seen.add(id(b))
            total += calls_in[id(b)]
            stack.extend(b.successors())
        result[id(block)] = total
    return result


class FeatureExtractor:
    """Extracts Table-1 feature vectors for instructions of one module."""

    def __init__(
        self,
        module: Module,
        slice_cap: Optional[int] = 4000,
        include_static_risk: bool = False,
        include_coverage: bool = False,
    ):
        self.module = module
        self.slice_context = SliceContext(module)
        self.slice_cap = slice_cap
        self.include_static_risk = include_static_risk
        self.include_coverage = include_coverage
        self.num_features = len(
            feature_names(include_static_risk, include_coverage)
        )
        self._fn_caches: Dict[int, _FunctionCaches] = {}
        self._observability: Optional[ObservabilityAnalysis] = None
        self._coverage = None

    def _caches_for(self, fn: Function) -> _FunctionCaches:
        cached = self._fn_caches.get(id(fn))
        if cached is None:
            cached = _FunctionCaches(fn)
            self._fn_caches[id(fn)] = cached
        return cached

    def extract(self, inst: Instruction) -> np.ndarray:
        """The 31-element feature vector of one instruction."""
        block = inst.parent
        if block is None or block.parent is None:
            raise ValueError(f"{inst!r} is not attached to a function")
        fn = block.parent
        caches = self._caches_for(fn)
        v = np.zeros(self.num_features, dtype=np.float64)

        # -- instruction category (1-12)
        if isinstance(inst, BinaryOperator):
            v[0] = 1.0
            v[1] = 1.0 if inst.is_add_sub() else 0.0
            v[2] = 1.0 if inst.is_mul_div() else 0.0
            v[3] = 1.0 if inst.is_remainder() else 0.0
            v[4] = 1.0 if inst.is_logical() else 0.0
        v[5] = 1.0 if isinstance(inst, CallInst) else 0.0
        v[6] = 1.0 if isinstance(inst, (ICmpInst, FCmpInst)) else 0.0
        v[7] = 1.0 if isinstance(inst, AtomicRMWInst) else 0.0
        v[8] = 1.0 if isinstance(inst, GEPInst) else 0.0
        v[9] = 1.0 if isinstance(inst, AllocaInst) else 0.0
        v[10] = 1.0 if isinstance(inst, CastInst) else 0.0
        v[11] = float(inst.type.byte_size) if inst.produces_value() else 0.0

        # -- basic-block category (13-19)
        index = block.index_of(inst)
        v[12] = float(len(block.instructions) - index - 1)
        v[13] = float(len(block.instructions))
        successors = block.successors()
        v[14] = float(len(successors))
        v[15] = float(sum(len(s.instructions) for s in successors))
        v[16] = 1.0 if caches.loop_info.in_loop(block) else 0.0
        v[17] = 1.0 if block.has_phi() else 0.0
        v[18] = 1.0 if isinstance(block.terminator, BranchInst) else 0.0

        # -- function category (20-24)
        remaining_here = len(block.instructions) - index - 1
        if isinstance(block.terminator, RetInst):
            v[19] = float(remaining_here)
        else:
            d = caches.return_distance.get(block, 10**9)
            v[19] = float(remaining_here + (d if d < 10**9 else 0))
        v[20] = float(fn.instruction_count)
        v[21] = float(fn.block_count)
        future_calls = caches.future_calls[id(block)] + sum(
            1
            for later in block.instructions[index + 1 :]
            if isinstance(later, CallInst)
        )
        v[22] = float(future_calls)
        v[23] = 1.0 if fn.returns_value() else 0.0

        # -- slice category (25-31)
        sliced = forward_slice(
            inst, context=self.slice_context, max_size=self.slice_cap
        )
        stats = SliceStatistics(sliced)
        v[24] = float(stats.size)
        v[25] = float(stats.loads)
        v[26] = float(stats.stores)
        v[27] = float(stats.calls)
        v[28] = float(stats.binary_ops)
        v[29] = float(stats.allocas)
        v[30] = float(stats.geps)

        # -- optional categories: indices float after 31 depending on which
        # extras are enabled, so track a cursor instead of hard-coding.
        cursor = NUM_FEATURES

        # -- static-risk category (optional)
        if self.include_static_risk:
            if self._observability is None:
                self._observability = ObservabilityAnalysis(
                    self.module, context=self.slice_context
                )
            observability = self._observability.score(inst)
            depth = caches.loop_info.loop_nest_depth(block)
            v[cursor] = observability
            v[cursor + 1] = local_absorption(inst)
            v[cursor + 2] = observability * (1.0 - 2.0 ** -(1 + depth))
            cursor += len(STATIC_RISK_FEATURE_NAMES)

        # -- coverage-prover category (optional)
        if self.include_coverage:
            from ..analysis.coverage import CoverageAnalysis, Verdict, is_coverage_site

            if self._coverage is None:
                self._coverage = CoverageAnalysis(
                    self.module, context=self.slice_context
                )
            if is_coverage_site(inst):
                site = self._coverage.classify(inst)
                v[cursor] = 1.0 if site.verdict is Verdict.ESCAPES else 0.0
                v[cursor + 1] = (
                    site.masked_bits / site.total_bits if site.total_bits else 0.0
                )
            cursor += len(COVERAGE_FEATURE_NAMES)
        return v

    def extract_many(self, instructions) -> np.ndarray:
        """Feature matrix with one row per instruction."""
        rows = [self.extract(inst) for inst in instructions]
        if not rows:
            return np.zeros((0, self.num_features), dtype=np.float64)
        return np.vstack(rows)
