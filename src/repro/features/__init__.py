"""repro.features — the 31 Table-1 instruction features."""

from .extract import (
    FEATURE_CATEGORIES,
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureExtractor,
)

__all__ = ["FEATURE_CATEGORIES", "FEATURE_NAMES", "NUM_FEATURES", "FeatureExtractor"]
