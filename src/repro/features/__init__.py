"""repro.features — the 31 Table-1 instruction features."""

from .extract import (
    COVERAGE_FEATURE_NAMES,
    FEATURE_CATEGORIES,
    FEATURE_NAMES,
    NUM_FEATURES,
    STATIC_RISK_FEATURE_NAMES,
    FeatureExtractor,
    feature_names,
)

__all__ = [
    "COVERAGE_FEATURE_NAMES", "FEATURE_CATEGORIES", "FEATURE_NAMES",
    "NUM_FEATURES", "STATIC_RISK_FEATURE_NAMES", "FeatureExtractor",
    "feature_names",
]
