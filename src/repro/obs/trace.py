"""Chrome trace-event emission for campaign runs.

One campaign run becomes one trace file that opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  The file is the JSON
*array* flavor of the trace-event format written one event per line::

    [
    {"ph":"M","pid":0,...},
    {"ph":"X","pid":0,"tid":0,"name":"prepare",...},
    ...

The trace-event spec explicitly tolerates a missing closing ``]`` and
trailing commas, so the file is valid the moment each line lands — a
crashed campaign still leaves a loadable trace — and each line after the
opening bracket is independently JSON-parseable once its trailing comma
is stripped (the JSONL property :func:`validate_trace` relies on).

Lane layout:

* ``pid 0`` — the campaign itself: one lane of phase spans (prepare,
  ladder capture, trial sampling, checkpoint resume, execute, sanitize).
* ``pid 1`` — workers: one ``tid`` per worker lane, carrying a complete
  ("X") span per trial plus instant events for recovery rollbacks and
  golden resyncs.  Serial campaigns use lane 0.

Trial spans are reconstructed parent-side at delivery: the worker reports
the trial's wall duration, and the writer places the span at *delivery
time minus duration*, clamped forward so spans on one lane never
overlap.  Worker lanes therefore show per-worker busy time, accurate to
the delivery latency of one pipe message.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, TextIO

__all__ = ["TraceWriter", "validate_trace"]

#: pid of the campaign-orchestration lane.
CAMPAIGN_PID = 0
#: pid grouping the per-worker trial lanes.
WORKER_PID = 1
#: pid of the service-coordinator lane (job lifecycle, lease churn).
SERVICE_PID = 2


class _Phase:
    """Context manager emitting one campaign-lane span on exit."""

    __slots__ = ("writer", "name", "args", "t0")

    def __init__(self, writer: "TraceWriter", name: str, args: Optional[Dict]):
        self.writer = writer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Phase":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.writer.complete(
            self.name,
            "phase",
            CAMPAIGN_PID,
            0,
            self.t0,
            time.perf_counter(),
            args=self.args,
        )


class TraceWriter:
    """Streaming trace-event writer (one campaign run, one file)."""

    def __init__(self, path: str, resume: bool = False, t0: Optional[float] = None):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        resume = resume and os.path.exists(path)
        if resume:
            # Sequential campaigns share one trace file (e.g. the full
            # evaluation's reference + variant campaigns): reopen the
            # closed array, drop the "{}]" terminator, keep appending.
            self._fh: Optional[TextIO] = open(path, "r+")
            self._fh.seek(0, os.SEEK_END)
            size = self._fh.tell()
            tail = min(size, 8)
            self._fh.seek(size - tail)
            if self._fh.read(tail).endswith("{}]\n"):
                self._fh.seek(size - 4)
                self._fh.truncate()
            self._fh.seek(0, os.SEEK_END)
        else:
            self._fh = open(path, "w")
            self._fh.write("[\n")
        # Callers resuming a file pass the original t0 so timestamps stay
        # on one monotonic axis across campaigns.
        self.t0 = time.perf_counter() if t0 is None else t0
        self.events = 0
        # forward-only cursor per (pid, tid): next free microsecond
        self._cursor: Dict[tuple, int] = {}
        self._named_lanes: set = set()
        if not resume:
            self._meta_name(CAMPAIGN_PID, None, "campaign")
            self._meta_name(WORKER_PID, None, "workers")

    # -- low-level emission ------------------------------------------------

    def _us(self, t: float) -> int:
        return int((t - self.t0) * 1e6)

    def _emit(self, event: Dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, separators=(",", ":")) + ",\n")
        self.events += 1

    def _meta_name(self, pid: int, tid: Optional[int], name: str) -> None:
        event = {
            "ph": "M",
            "pid": pid,
            "tid": tid if tid is not None else 0,
            "name": "process_name" if tid is None else "thread_name",
            "args": {"name": name},
        }
        self._emit(event)

    def _lane(self, pid: int, tid: int) -> None:
        if (pid, tid) not in self._named_lanes:
            self._named_lanes.add((pid, tid))
            if pid == WORKER_PID:
                self._meta_name(pid, tid, f"worker-{tid}")
            elif pid == SERVICE_PID:
                # Lazy like the worker lanes: the coordinator lane only
                # appears in traces of runs that actually went through
                # the service.
                self._meta_name(pid, None, "coordinator")

    def complete(
        self,
        name: str,
        category: str,
        pid: int,
        tid: int,
        t_start: float,
        t_end: float,
        args: Optional[Dict] = None,
    ) -> None:
        """One "X" (complete) span; timestamps are ``perf_counter`` values."""
        self._lane(pid, tid)
        dur = max(self._us(t_end) - self._us(t_start), 1)
        ts = self._us(t_start)
        # Clamp forward past the lane's previous span: parent-side
        # reconstruction may place two chunk-mates at overlapping times,
        # and partially overlapping X spans render as garbage.
        cursor = self._cursor.get((pid, tid), 0)
        if ts < cursor:
            ts = cursor
        self._cursor[(pid, tid)] = ts + dur
        event = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "dur": dur,
            "cat": category,
            "name": name,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def instant(
        self, name: str, category: str, pid: int, tid: int,
        args: Optional[Dict] = None,
    ) -> None:
        self._lane(pid, tid)
        event = {
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "ts": max(self._us(time.perf_counter()), self._cursor.get((pid, tid), 0)),
            "cat": category,
            "name": name,
        }
        if args:
            event["args"] = args
        self._emit(event)

    # -- campaign-shaped helpers -------------------------------------------

    def phase(self, name: str, **args) -> _Phase:
        """``with tracer.phase("prepare"):`` — a campaign-lane span."""
        return _Phase(self, name, args or None)

    def trial(
        self,
        index: int,
        wid: int,
        seconds: float,
        name: str,
        args: Optional[Dict] = None,
    ) -> None:
        """One trial span on worker lane ``wid``, ending now."""
        now = time.perf_counter()
        self.complete(name, "trial", WORKER_PID, wid, now - seconds, now, args=args)

    def event(self, name: str, wid: int, **args) -> None:
        """Instant event on a worker lane (rollback, resync, quarantine)."""
        self.instant(name, "event", WORKER_PID, wid, args or None)

    def service_event(self, name: str, **args) -> None:
        """Instant event on the coordinator lane (job submitted, lease
        expired, ack discarded, serial fallback, job done)."""
        self.instant(name, "service", SERVICE_PID, 0, args or None)

    def close(self) -> None:
        if self._fh is not None:
            # The spec tolerates an unterminated array, but finish cleanly
            # when we get the chance: strict JSON parsers then work too.
            self._fh.write("{}]\n")
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- validation ---------------------------------------------------------------


def validate_trace(path: str) -> Dict:
    """Parse a trace file and check event structure and span nesting.

    Returns a JSON-compatible report: ``ok``, ``events``, per-phase
    counts, ``lanes``, and a list of ``errors``.  Nesting is checked per
    (pid, tid) lane: "X" spans must be disjoint or properly nested, and
    "B"/"E" pairs must balance.  The CI smoke step runs this on a traced
    campaign.
    """
    report: Dict = {
        "path": path,
        "ok": False,
        "events": 0,
        "phases": {},
        "lanes": 0,
        "errors": [],
    }
    errors: List[str] = report["errors"]
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        errors.append(str(exc))
        return report
    events = []
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip()
        if line in ("", "[", "]", "{}]"):
            continue
        if line.endswith(","):
            line = line[:-1]
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            errors.append(f"line {lineno}: not JSON")
            continue
        if not isinstance(event, dict):
            errors.append(f"line {lineno}: not an object")
            continue
        if not event:
            continue  # the closing sentinel
        if "ph" not in event or "pid" not in event:
            errors.append(f"line {lineno}: missing ph/pid")
            continue
        events.append(event)
    report["events"] = len(events)
    phases: Dict[str, int] = report["phases"]
    lanes = set()
    spans: Dict[tuple, List] = {}
    depth: Dict[tuple, int] = {}
    for event in events:
        ph = event["ph"]
        phases[ph] = phases.get(ph, 0) + 1
        lane = (event["pid"], event.get("tid", 0))
        lanes.add(lane)
        if ph == "X":
            if "ts" not in event or "dur" not in event:
                errors.append(f"X event {event.get('name')!r} missing ts/dur")
                continue
            spans.setdefault(lane, []).append(
                (event["ts"], event["ts"] + event["dur"], event.get("name"))
            )
        elif ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            depth[lane] = depth.get(lane, 0) - 1
            if depth[lane] < 0:
                errors.append(f"lane {lane}: E without matching B")
    for lane, d in depth.items():
        if d > 0:
            errors.append(f"lane {lane}: {d} unclosed B span(s)")
    # X spans per lane: sorted by start (ties: longest first), each span
    # must either start at/after the enclosing span's end (disjoint) or
    # end within it (nested).
    for lane, lane_spans in spans.items():
        stack: List = []
        for start, end, name in sorted(lane_spans, key=lambda s: (s[0], -s[1])):
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"lane {lane}: span {name!r} [{start},{end}) partially "
                    f"overlaps {stack[-1][2]!r} [{stack[-1][0]},{stack[-1][1]})"
                )
                continue
            stack.append((start, end, name))
    report["lanes"] = len(lanes)
    report["ok"] = not errors and report["events"] > 0
    return report
