"""Opt-in per-block wall-time attribution for the block interpreter.

The interpreter already attributes *cycles* per block for free: a
profiled run counts executions per global block id (``RunResult.profile``)
and every compiled block carries its static cycle cost.  Wall time is the
missing half — Python-level block closures have wildly different real
costs per simulated cycle — and it is what the ROADMAP's superblock-fusion
item needs to pick fusion candidates.

Like fault injection, profiling works by *swapping compiled block
functions*: :class:`BlockProfiler` replaces every ``CompiledFunction``'s
``block_fns`` table with timing wrappers while active and restores the
originals on exit.  The dispatch hot loop is untouched — with the
profiler disarmed the interpreter executes the exact same closures as
before, so disabled-mode overhead is zero by construction (the same
property the injection trap points have).

Timing wrappers do perturb *wall-clock* numbers (each block pays two
``perf_counter`` calls) but never simulated state: cycle counts, outputs,
and outcomes are bit-identical with the profiler armed.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["BlockProfiler", "hot_block_report", "render_block_report"]


class BlockProfiler:
    """Context manager accumulating per-gid wall seconds and hit counts.

    ::

        with BlockProfiler(interp.cm) as prof:
            interp.run(entry)
        report = prof.report()

    Nested arming of the same ``CompiledModule`` is refused — the wrapper
    tables must not wrap themselves.
    """

    def __init__(self, cm):
        self.cm = cm
        self.wall: List[float] = [0.0] * cm.total_blocks
        self.hits: List[int] = [0] * cm.total_blocks
        self._saved: Optional[List[List]] = None

    def _wrap(self, fn, gid: int):
        wall = self.wall
        hits = self.hits
        perf = time.perf_counter

        def timed(frame, state, _fn=fn, _gid=gid):
            t0 = perf()
            try:
                return _fn(frame, state)
            finally:
                wall[_gid] += perf() - t0
                hits[_gid] += 1

        return timed

    def __enter__(self) -> "BlockProfiler":
        if self._saved is not None:
            raise RuntimeError("BlockProfiler is already armed")
        if getattr(self.cm, "_block_profiler_armed", False):
            raise RuntimeError("another BlockProfiler is armed on this module")
        self._saved = []
        for cf in self.cm.cfuncs:
            self._saved.append(cf.block_fns)
            cf.block_fns = [
                self._wrap(fn, block.gid)
                for fn, block in zip(cf.block_fns, cf.blocks)
            ]
        self.cm._block_profiler_armed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._saved is not None
        for cf, fns in zip(self.cm.cfuncs, self._saved):
            cf.block_fns = fns
        self._saved = None
        self.cm._block_profiler_armed = False

    def report(self, top: Optional[int] = None) -> Dict:
        """Hot-block attribution joined with block identity and cycle cost."""
        return hot_block_report(self.cm, self.hits, self.wall, top=top)


def hot_block_report(
    cm, hits: List[int], wall: Optional[List[float]] = None,
    top: Optional[int] = None,
) -> Dict:
    """Build the per-block attribution report.

    ``hits`` is a per-gid execution count (either a profiler's or a
    ``RunResult.profile`` from a ``profile=True`` run); ``wall`` is the
    optional per-gid wall-seconds column.  Cycles are ``hits × static
    block cost`` — exact under the deterministic cost model.
    """
    rows = []
    for cf in cm.cfuncs:
        for block in cf.blocks:
            n = hits[block.gid] if block.gid < len(hits) else 0
            if not n:
                continue
            row = {
                "function": cf.name,
                "block": block.block.name,
                "gid": block.gid,
                "hits": n,
                "cost": block.cost,
                "cycles": n * block.cost,
            }
            if wall is not None:
                row["wall_seconds"] = wall[block.gid]
            rows.append(row)
    rows.sort(key=lambda r: (-r["cycles"], r["gid"]))
    total_cycles = sum(r["cycles"] for r in rows)
    total_wall = sum(r.get("wall_seconds", 0.0) for r in rows)
    if top:
        rows = rows[:top]
    return {
        "kind": "ipas-blockprofile",
        "module": cm.module.name,
        "total_cycles": total_cycles,
        "total_wall_seconds": total_wall,
        "blocks": rows,
    }


def render_block_report(report: Dict, limit: int = 20) -> str:
    lines = [
        f"hot blocks — module {report['module']}, "
        f"{report['total_cycles']} cycles attributed",
        f"{'function':<20} {'block':<12} {'hits':>8} {'cycles':>10} "
        f"{'cyc%':>5}  {'wall ms':>9}",
    ]
    total = report["total_cycles"] or 1
    for row in report["blocks"][:limit]:
        wall_ms = row.get("wall_seconds")
        lines.append(
            f"{row['function']:<20.20} {row['block']:<12.12} "
            f"{row['hits']:>8} {row['cycles']:>10} "
            f"{100.0 * row['cycles'] / total:>4.1f}%  "
            + (f"{1000.0 * wall_ms:>9.3f}" if wall_ms is not None else f"{'-':>9}")
        )
    return "\n".join(lines)
