"""Per-fault-site heatmaps: dynamic outcomes joined with static verdicts.

A campaign samples faults over dynamic instruction executions; the
coverage prover (:mod:`repro.analysis.coverage`) assigns every *static*
site a sound verdict (``detected`` / ``masked`` / ``escapes``).  This
module joins the two: trial outcomes are tallied per (function, block,
instruction) and laid next to the site's static verdict, so one report
answers both "where do SOCs actually come from" and "where do the static
and dynamic views disagree".

Disagreements flagged:

* ``soc-at-covered`` — an SOC landed on a site the prover claims is
  ``detected`` or ``masked``.  The campaign sanitizer aborts on this when
  armed; in the report it is the reddest possible flag.
* ``detected-at-masked`` — a detection fired on a statically-``masked``
  site: the proof says every bit flip is arithmetically absorbed, so a
  fired check there means the proof and runtime disagree.
* ``escape-never-fired`` — a statically-``escapes`` site whose trials
  (at least :data:`MIN_TRIALS_FOR_QUIET`) produced neither an SOC nor a
  detection.  Not an error — dynamic masking the static analysis cannot
  see — but these are exactly the sites where protection money is being
  wasted, so the report surfaces them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["build_heatmap", "render_heatmap_text", "MIN_TRIALS_FOR_QUIET"]

#: trials a site needs before "never produced a symptom" means anything.
MIN_TRIALS_FOR_QUIET = 5


def _site_key(inst) -> tuple:
    fn = inst.function
    block = inst.parent
    index = block.instructions.index(inst) if block is not None else -1
    return (
        fn.name if fn is not None else "?",
        block.name if block is not None else "?",
        index,
    )


def build_heatmap(
    records,
    module,
    coverage=None,
    model=None,
) -> Dict:
    """Tally trial outcomes per static fault site and join static verdicts.

    ``records`` is an iterable of ``TrialRecord``-shaped objects (``site``
    + ``outcome``); ``coverage`` is a precomputed
    :class:`~repro.analysis.coverage.CoverageReport` (computed from
    ``module`` when omitted).  ``model`` tags the report with the
    campaign's fault model (spec string or
    :class:`~repro.faults.models.FaultModel`) and keys the per-model
    outcome tally, so heatmaps from different models never aggregate
    silently.  Returns a JSON-compatible report.
    """
    if coverage is None:
        from ..analysis.coverage import coverage_report

        coverage = coverage_report(module)
    verdict_by_inst = {id(s.instruction): s.verdict.value for s in coverage.sites}

    sites: Dict[tuple, Dict] = {}
    total_trials = 0
    for record in records:
        site = getattr(record, "site", None)
        if site is None:
            continue
        inst = site.instruction
        key = _site_key(inst)
        entry = sites.get(key)
        if entry is None:
            entry = sites[key] = {
                "function": key[0],
                "block": key[1],
                "index": key[2],
                "opcode": inst.opcode,
                "name": getattr(inst, "name", "") or "",
                "static_verdict": verdict_by_inst.get(id(inst)),
                "trials": 0,
                "outcomes": {},
            }
        entry["trials"] += 1
        total_trials += 1
        outcome = record.outcome.value
        entry["outcomes"][outcome] = entry["outcomes"].get(outcome, 0) + 1

    flags: List[Dict] = []
    for entry in sites.values():
        outcomes = entry["outcomes"]
        verdict = entry["static_verdict"]
        soc = outcomes.get("soc", 0)
        detected = outcomes.get("detected", 0) + outcomes.get("corrected", 0)
        entry["flags"] = site_flags = []
        if verdict in ("detected", "masked") and soc:
            site_flags.append("soc-at-covered")
        if verdict == "masked" and detected:
            site_flags.append("detected-at-masked")
        if (
            verdict == "escapes"
            and entry["trials"] >= MIN_TRIALS_FOR_QUIET
            and not soc
            and not detected
        ):
            site_flags.append("escape-never-fired")
        for flag in site_flags:
            flags.append(
                {
                    "flag": flag,
                    "function": entry["function"],
                    "block": entry["block"],
                    "index": entry["index"],
                }
            )

    ordered = sorted(
        sites.values(),
        key=lambda e: (-e["trials"], e["function"], e["block"], e["index"]),
    )
    outcome_totals: Dict[str, int] = {}
    for entry in ordered:
        for outcome, n in entry["outcomes"].items():
            outcome_totals[outcome] = outcome_totals.get(outcome, 0) + n
    model_spec = "transient-1bit"
    if model is not None:
        model_spec = model if isinstance(model, str) else model.spec()
    return {
        "kind": "ipas-heatmap",
        "module": module.name,
        "fault_model": model_spec,
        "trials": total_trials,
        "sites": ordered,
        "static_summary": coverage.summary(),
        "outcome_totals": dict(sorted(outcome_totals.items())),
        "model_outcomes": {model_spec: dict(sorted(outcome_totals.items()))},
        "disagreements": flags,
    }


def render_heatmap_text(heatmap: Dict, limit: Optional[int] = 30) -> str:
    """Human-readable table, hottest sites first."""
    lines = [
        f"fault-site heatmap — module {heatmap['module']}, "
        f"{heatmap['trials']} trials over {len(heatmap['sites'])} sites "
        f"({heatmap.get('fault_model', 'transient-1bit')} faults)",
        f"{'function':<18} {'block':<10} {'idx':>3} {'opcode':<10} "
        f"{'static':<9} {'trials':>6} {'soc':>5} {'det':>5} {'mask':>5} "
        f"{'crash':>5} {'hang':>5}  flags",
    ]
    shown = heatmap["sites"][:limit] if limit else heatmap["sites"]
    for site in shown:
        o = site["outcomes"]
        detected = o.get("detected", 0) + o.get("corrected", 0)
        lines.append(
            f"{site['function']:<18.18} {site['block']:<10.10} "
            f"{site['index']:>3} {site['opcode']:<10.10} "
            f"{(site['static_verdict'] or '-'):<9} {site['trials']:>6} "
            f"{o.get('soc', 0):>5} {detected:>5} {o.get('masked', 0):>5} "
            f"{o.get('crash', 0):>5} {o.get('hang', 0):>5}  "
            f"{','.join(site['flags']) or '-'}"
        )
    hidden = len(heatmap["sites"]) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} colder site(s) omitted (full set in JSON)")
    totals = heatmap["outcome_totals"]
    lines.append(
        "totals: "
        + "  ".join(f"{k} {v}" for k, v in totals.items())
    )
    if heatmap["disagreements"]:
        lines.append(f"disagreement hot spots ({len(heatmap['disagreements'])}):")
        for d in heatmap["disagreements"]:
            lines.append(
                f"  {d['flag']:<20} {d['function']}:{d['block']}[{d['index']}]"
            )
    else:
        lines.append("no static-vs-dynamic disagreements")
    return "\n".join(lines)


def write_heatmap(heatmap: Dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(heatmap, fh, indent=1)
        fh.write("\n")
