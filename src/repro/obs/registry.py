"""Metrics registry: the one aggregation surface for campaign telemetry.

Before this module, runtime evidence was scattered — ``CampaignStats``
attribute counters, ``RecoveryTelemetry`` tuples, warm-start ledger fields —
each with its own ad-hoc merge rules.  The registry unifies them behind a
Prometheus-shaped model:

* **Counters** — monotonically increasing totals (trials, rollbacks,
  worker deaths).
* **Gauges** — last/extreme observations with an explicit merge mode
  (``max``, ``min``, ``sum``, ``last``), e.g. worst-case trial latency.
* **Histograms** — fixed bucket boundaries declared up front, so two
  histograms of the same metric always merge bucket-by-bucket.

Every metric name must be *declared* in the module-level :data:`CATALOG`
before use — an undeclared name raises immediately, which keeps the name
space auditable (``docs/observability.md`` is tested against the catalog).
Metrics carry optional labels (e.g. ``outcome="soc"``); each distinct
label set is an independent sample.

**Deterministic merge.**  :meth:`MetricsRegistry.merge` is associative and
commutative for integer-valued metrics: summing counters and histogram
buckets in any grouping yields bit-identical totals, so a campaign
aggregated at ``jobs=1``, sharded over N workers, or summed across MPI
ranks reports the same numbers.  Metrics derived from wall clocks
(latencies, busy time, backoff) are declared ``wall=True`` and excluded
from :meth:`MetricsRegistry.deterministic_snapshot`, the view the
determinism tests compare.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "declare",
    "render_metrics_text",
    "CYCLE_BUCKETS",
    "LATENCY_BUCKETS_MS",
]

#: trial-latency histogram bucket upper bounds, milliseconds (last open).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)

#: trial-cycle histogram bucket upper bounds (last open).  Cycle counts are
#: deterministic model outputs, so this histogram is bit-identical at any
#: worker count — the latency histogram's deterministic twin.
CYCLE_BUCKETS: Tuple[float, ...] = (
    1e2, 3e2, 1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8,
)

_KINDS = ("counter", "gauge", "histogram")
_GAUGE_MERGES = ("max", "min", "sum", "last")


class MetricSpec:
    """Declared identity of one metric name."""

    __slots__ = (
        "name", "kind", "help", "unit", "wall", "buckets", "gauge_merge",
        "deterministic",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        unit: str = "",
        wall: bool = False,
        buckets: Optional[Tuple[float, ...]] = None,
        gauge_merge: str = "max",
        deterministic: Optional[bool] = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"metric kind must be one of {_KINDS}, got {kind!r}")
        if kind == "histogram" and not buckets:
            raise ValueError(f"histogram {name!r} needs bucket boundaries")
        if gauge_merge not in _GAUGE_MERGES:
            raise ValueError(
                f"gauge_merge must be one of {_GAUGE_MERGES}, got {gauge_merge!r}"
            )
        self.name = name
        self.kind = kind
        self.help = help
        self.unit = unit
        #: derived from a wall clock — real but nondeterministic; excluded
        #: from deterministic snapshots and merge-equality guarantees.
        self.wall = wall
        self.buckets = tuple(buckets) if buckets else None
        self.gauge_merge = gauge_merge
        #: a pure function of the campaign plan (same at any worker count
        #: and on any machine).  Defaults to ``not wall``; harness-health
        #: metrics pass an explicit ``False`` — they count real-world
        #: events (worker deaths, respawns), which no plan determines.
        self.deterministic = (not wall) if deterministic is None else deterministic

    def __repr__(self) -> str:
        return f"<MetricSpec {self.name} {self.kind}{' wall' if self.wall else ''}>"


#: every declarable metric name; the docs-sync test walks this.
CATALOG: Dict[str, MetricSpec] = {}


def declare(
    name: str,
    kind: str,
    help: str,
    unit: str = "",
    wall: bool = False,
    buckets: Optional[Tuple[float, ...]] = None,
    gauge_merge: str = "max",
    deterministic: Optional[bool] = None,
) -> str:
    """Register a metric name in the catalog; returns the name."""
    spec = MetricSpec(
        name, kind, help, unit=unit, wall=wall, buckets=buckets,
        gauge_merge=gauge_merge, deterministic=deterministic,
    )
    existing = CATALOG.get(name)
    if existing is not None and (
        existing.kind != kind or existing.buckets != spec.buckets
    ):
        raise ValueError(f"metric {name!r} already declared as {existing.kind}")
    CATALOG[name] = spec
    return name


class Counter:
    """Monotonic total.  ``value`` is writable for restore paths only."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.spec.name}={self.value}>"


class Gauge:
    """Point-in-time observation merged per its declared mode."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def observe_max(self, value) -> None:
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.spec.name}={self.value}>"


class Histogram:
    """Fixed-boundary histogram: counts per bucket plus sum and count.

    ``counts`` has ``len(buckets) + 1`` entries; the last is the open
    overflow bucket.
    """

    __slots__ = ("spec", "counts", "total", "count")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        assert spec.buckets is not None
        self.counts: List[int] = [0] * (len(spec.buckets) + 1)
        self.total = 0
        self.count = 0

    def observe(self, value) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.spec.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"<Histogram {self.spec.name} n={self.count}>"


def _labels_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """All instruments of one campaign (or one merged view of many).

    Instruments are created lazily on first touch; a name absent from
    :data:`CATALOG` raises ``KeyError`` so typos never create silent
    shadow metrics.
    """

    __slots__ = ("_metrics",)

    def __init__(self):
        # (name, ((label, value), ...)) -> instrument
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], object] = {}

    # -- instrument access -------------------------------------------------

    def _get(self, name: str, kind: str, labels: Dict[str, str]):
        key = (name, _labels_key(labels))
        inst = self._metrics.get(key)
        if inst is None:
            spec = CATALOG.get(name)
            if spec is None:
                raise KeyError(f"metric {name!r} is not declared in the catalog")
            if spec.kind != kind:
                raise TypeError(f"metric {name!r} is a {spec.kind}, not a {kind}")
            cls = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}[kind]
            inst = self._metrics[key] = cls(spec)
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, "counter", labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, "gauge", labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(name, "histogram", labels)

    def value(self, name: str, **labels):
        """Current value (0 for untouched counters/gauges)."""
        inst = self._metrics.get((name, _labels_key(labels)))
        if inst is None:
            return 0
        return inst.value if not isinstance(inst, Histogram) else inst.count

    def samples(self, name: str) -> Dict[Tuple[Tuple[str, str], ...], object]:
        """Every labeled instrument of one metric name."""
        return {
            labels: inst
            for (n, labels), inst in self._metrics.items()
            if n == name
        }

    # -- deterministic merge -----------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry in place; returns ``self``.

        Counters and histogram buckets add; gauges combine per their
        declared mode.  For integer-valued metrics the result is
        independent of merge order and grouping.
        """
        for (name, labels), inst in other._metrics.items():
            if isinstance(inst, Counter):
                self._get(name, "counter", dict(labels)).value += inst.value
            elif isinstance(inst, Gauge):
                fresh = (name, labels) not in self._metrics
                mine = self._get(name, "gauge", dict(labels))
                mode = inst.spec.gauge_merge
                if fresh:
                    mine.value = inst.value
                elif mode == "max":
                    mine.value = max(mine.value, inst.value)
                elif mode == "min":
                    mine.value = min(mine.value, inst.value)
                elif mode == "sum":
                    mine.value += inst.value
                else:  # last
                    mine.value = inst.value
            else:  # Histogram
                mine = self._get(name, "histogram", dict(labels))
                for i, c in enumerate(inst.counts):
                    mine.counts[i] += c
                mine.total += inst.total
                mine.count += inst.count
        return self

    # -- serialization -----------------------------------------------------

    def as_dict(self, deterministic_only: bool = False) -> Dict:
        """JSON-compatible snapshot, keys sorted for stable output.

        ``deterministic_only`` drops every metric not declared
        deterministic (wall clocks and harness-health event counts),
        leaving the view that must be bit-identical at any worker count.
        """
        out: Dict = {}
        for (name, labels), inst in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            spec = CATALOG[name]
            if deterministic_only and not spec.deterministic:
                continue
            entry = out.setdefault(
                name,
                {
                    "type": spec.kind,
                    "help": spec.help,
                    "unit": spec.unit,
                    "wall": spec.wall,
                    "samples": [],
                },
            )
            sample: Dict = {"labels": dict(labels)}
            if isinstance(inst, Histogram):
                sample["buckets"] = list(spec.buckets)
                sample["counts"] = list(inst.counts)
                sample["sum"] = inst.total
                sample["count"] = inst.count
            else:
                sample["value"] = inst.value
            entry["samples"].append(sample)
        return out

    def deterministic_snapshot(self) -> Dict:
        """The plan-determined view (wall-clock and harness metrics excluded)."""
        return self.as_dict(deterministic_only=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output.

        Unknown metric names are skipped (forward compatibility: a newer
        engine's checkpoint must still resume here).
        """
        reg = cls()
        for name, entry in data.items():
            spec = CATALOG.get(name)
            if spec is None or spec.kind != entry.get("type"):
                continue
            for sample in entry.get("samples", ()):
                labels = sample.get("labels", {})
                if spec.kind == "counter":
                    reg.counter(name, **labels).value = sample.get("value", 0)
                elif spec.kind == "gauge":
                    reg.gauge(name, **labels).value = sample.get("value", 0)
                else:
                    hist = reg.histogram(name, **labels)
                    counts = sample.get("counts", [])
                    if len(counts) == len(hist.counts):
                        hist.counts = list(counts)
                    hist.total = sample.get("sum", 0)
                    hist.count = sample.get("count", 0)
        return reg

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._metrics)} instruments>"


# -- the campaign metric catalog ----------------------------------------------
#
# Declared here, at import time, so CampaignStats and the docs-sync test see
# one authoritative name space.  Naming follows Prometheus conventions:
# ``ipas_`` prefix, ``_total`` suffix on counters, base units in the name.

# trial outcomes and throughput
declare(
    "ipas_trials_total", "counter",
    "Completed injection trials by outcome.", unit="trials",
)
declare(
    "ipas_trials_completed_total", "counter",
    "Trials executed by this engine (cumulative across resumed runs).",
    unit="trials", deterministic=False,
)
declare(
    "ipas_trials_resumed_total", "counter",
    "Trials restored from a checkpoint instead of executed.", unit="trials",
    deterministic=False,
)
declare(
    "ipas_trial_cycles", "histogram",
    "Simulated cycles per trial by outcome (deterministic cost model).",
    unit="cycles", buckets=CYCLE_BUCKETS,
)
declare(
    "ipas_trial_latency_ms", "histogram",
    "Wall-clock latency per trial by outcome.", unit="ms", wall=True,
    buckets=LATENCY_BUCKETS_MS,
)
declare(
    "ipas_trial_latency_seconds_max", "gauge",
    "Worst-case trial latency by outcome.", unit="seconds", wall=True,
    gauge_merge="max",
)
declare(
    "ipas_worker_busy_seconds_total", "counter",
    "Summed per-trial wall time across workers.", unit="seconds", wall=True,
)
declare(
    "ipas_campaign_elapsed_seconds_total", "counter",
    "Campaign wall time, summed across resumed runs.", unit="seconds",
    wall=True,
)

# harness health (supervisor)
declare(
    "ipas_worker_deaths_total", "counter",
    "Workers lost to crash or hang-kill.", deterministic=False,
)
declare(
    "ipas_worker_hangs_total", "counter",
    "Workers killed past their deadline.", deterministic=False,
)
declare(
    "ipas_worker_respawns_total", "counter",
    "Replacement workers forked.", deterministic=False,
)
declare(
    "ipas_trial_retries_total", "counter",
    "Re-dispatches of a failure's suspect trial.", deterministic=False,
)
declare(
    "ipas_trials_requeued_total", "counter",
    "Innocent chunk-mates returned to the queue after a worker failure.",
    deterministic=False,
)
declare(
    "ipas_trials_quarantined_total", "counter",
    "Trials delivered as TRIAL_FAILURE after exhausting retries.",
    deterministic=False,
)
declare(
    "ipas_backoff_seconds_total", "counter",
    "Respawn backoff delay accumulated.", unit="seconds", wall=True,
)
declare(
    "ipas_serial_fallback", "gauge",
    "1 when the pool collapsed into in-process execution.", gauge_merge="max",
    deterministic=False,
)

# recovery runtime (rollback re-execution)
declare(
    "ipas_recovery_snapshots_total", "counter",
    "Region snapshots captured across trials.",
)
declare(
    "ipas_recovery_rollbacks_total", "counter",
    "Rollback re-executions performed.",
)
declare(
    "ipas_recovery_reexec_cycles_total", "counter",
    "Cycles discarded and re-executed by rollbacks.", unit="cycles",
)
declare(
    "ipas_recovery_escalations_total", "counter",
    "Rollbacks refused because the escalation ladder was exhausted.",
)

# warm-start engine
declare(
    "ipas_warm_restores_total", "counter",
    "Trials started from a snapshot-ladder rung.",
)
declare(
    "ipas_warm_resyncs_total", "counter",
    "Trials finished early by golden resync.",
)
declare(
    "ipas_warm_cycles_saved_total", "counter",
    "Golden-prefix cycles skipped via ladder restores.", unit="cycles",
)

# campaign service (coordinator).  All non-deterministic: they count
# real-world scheduling events — connects, lease churn, crash recovery —
# which legitimately differ between otherwise bit-identical runs.
declare(
    "ipas_service_jobs_submitted_total", "counter",
    "New jobs accepted and journaled by the coordinator.",
    deterministic=False,
)
declare(
    "ipas_service_jobs_attached_total", "counter",
    "Duplicate submissions attached to an already-running job.",
    deterministic=False,
)
declare(
    "ipas_service_jobs_cached_total", "counter",
    "Duplicate submissions served from completed results.",
    deterministic=False,
)
declare(
    "ipas_service_jobs_completed_total", "counter",
    "Jobs that ran (or resumed) to completion.", deterministic=False,
)
declare(
    "ipas_service_jobs_recovered_total", "counter",
    "In-flight jobs resumed from the journal at coordinator restart.",
    deterministic=False,
)
declare(
    "ipas_service_trials_committed_total", "counter",
    "Trial results durably committed to a job checkpoint.",
    deterministic=False,
)
declare(
    "ipas_service_trials_resumed_total", "counter",
    "Trials restored from a job checkpoint instead of re-executed.",
    deterministic=False,
)
declare(
    "ipas_service_solo_trials_total", "counter",
    "Trials the coordinator executed in-process (no workers reachable).",
    deterministic=False,
)
declare(
    "ipas_service_leases_granted_total", "counter",
    "Trial-chunk leases handed to workers.", deterministic=False,
)
declare(
    "ipas_service_leases_expired_total", "counter",
    "Leases revoked past their heartbeat deadline.", deterministic=False,
)
declare(
    "ipas_service_leases_requeued_total", "counter",
    "Chunks returned to the queue after lease loss or worker disconnect.",
    deterministic=False,
)
declare(
    "ipas_service_acks_committed_total", "counter",
    "Worker acks accepted by the at-most-once commit path.",
    deterministic=False,
)
declare(
    "ipas_service_acks_discarded_total", "counter",
    "Stale or duplicate worker acks discarded without commit.",
    deterministic=False,
)
declare(
    "ipas_service_worker_connects_total", "counter",
    "Worker hellos accepted.", deterministic=False,
)
declare(
    "ipas_service_worker_disconnects_total", "counter",
    "Worker connections lost (EOF, reset, or shutdown).",
    deterministic=False,
)


def render_metrics_text(data: Dict) -> str:
    """Prometheus-exposition-style text for a registry snapshot dict.

    ``data`` is the ``metrics`` mapping produced by
    :meth:`MetricsRegistry.as_dict` (or loaded back from an
    ``ipas-metrics`` JSON artifact).  Histograms render as cumulative
    ``_bucket{le=...}`` lines plus ``_sum``/``_count``, counters and
    gauges as one line per label set.
    """
    lines: List[str] = []
    for name, metric in data.items():
        lines.append(f"# HELP {name} {metric.get('help', '')}")
        lines.append(f"# TYPE {name} {metric.get('type', '')}")
        for sample in metric.get("samples", []):
            labels = dict(sample.get("labels") or {})

            def label_str(extra=None):
                pairs = dict(labels)
                if extra:
                    pairs.update(extra)
                if not pairs:
                    return ""
                body = ",".join(f'{k}="{v}"' for k, v in sorted(pairs.items()))
                return "{" + body + "}"

            if metric.get("type") == "histogram":
                cumulative = 0
                bounds = list(sample.get("buckets", ())) + ["+Inf"]
                for bound, count in zip(bounds, sample.get("counts", ())):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{label_str({'le': bound})} {cumulative}"
                    )
                lines.append(f"{name}_sum{label_str()} {sample.get('sum', 0)}")
                lines.append(f"{name}_count{label_str()} {sample.get('count', 0)}")
            else:
                lines.append(f"{name}{label_str()} {sample.get('value', 0)}")
    return "\n".join(lines)
