"""``repro.obs`` — unified observability: metrics, traces, heatmaps.

One import surface for the three runtime-evidence layers:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — counters, gauges,
  and fixed-bucket histograms with deterministic merge.  ``CampaignStats``
  is backed by a registry, so every existing counter is a declared metric.
* :class:`TraceWriter` (:mod:`repro.obs.trace`) — Chrome trace-event
  emission; a traced campaign opens directly in Perfetto.
* :func:`build_heatmap` (:mod:`repro.obs.heatmap`) — per-fault-site
  outcome tallies joined with the coverage prover's static verdicts.
* :class:`BlockProfiler` (:mod:`repro.obs.blockprof`) — opt-in per-block
  wall-time attribution via block-function swapping.

:class:`Observation` bundles the per-campaign configuration.  Everything
is off by default: a campaign run without an ``Observation`` (or with the
default one) touches none of this machinery and its outcomes, records,
and fingerprints are bit-identical to a build without the package.
"""

from __future__ import annotations

import json
from typing import Optional

from .blockprof import BlockProfiler, hot_block_report, render_block_report
from .heatmap import build_heatmap, render_heatmap_text, write_heatmap
from .registry import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    declare,
    render_metrics_text,
)
from .trace import TraceWriter, validate_trace

__all__ = [
    "BlockProfiler",
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "Observation",
    "TraceWriter",
    "build_heatmap",
    "declare",
    "hot_block_report",
    "render_block_report",
    "render_heatmap_text",
    "render_metrics_text",
    "validate_trace",
    "write_heatmap",
]


class Observation:
    """Per-campaign observability configuration and collection surface.

    ``trace_path`` arms structured trace emission; ``metrics_path`` dumps
    the campaign's metrics registry as JSON when the campaign closes the
    observation.  ``registry`` is shared with the campaign's
    ``CampaignStats`` so the dump and the stats are one source of truth.
    """

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer: Optional[TraceWriter] = None
        self._trace_t0: Optional[float] = None

    @property
    def enabled(self) -> bool:
        return bool(self.trace_path or self.metrics_path)

    def open_trace(self) -> Optional[TraceWriter]:
        if self.trace_path and self.tracer is None:
            # A second campaign on the same Observation (the evaluation
            # driver runs many) appends to the trace on the same time axis
            # rather than truncating it.
            self.tracer = TraceWriter(
                self.trace_path,
                resume=self._trace_t0 is not None,
                t0=self._trace_t0,
            )
            self._trace_t0 = self.tracer.t0
        return self.tracer

    def close(self) -> None:
        """Flush artifacts; called by the campaign engine in its finally."""
        if self.tracer is not None:
            self.tracer.close()
            self.tracer = None
        if self.metrics_path:
            with open(self.metrics_path, "w") as fh:
                json.dump(
                    {"kind": "ipas-metrics", "metrics": self.registry.as_dict()},
                    fh,
                    indent=1,
                )
                fh.write("\n")
