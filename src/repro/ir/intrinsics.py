"""Runtime intrinsics known to the interpreter.

Three families:

* **libm** — elementary math on ``f64`` (the scientific workloads use these
  exactly where their C originals call ``libm``).  Per the paper §5.1,
  library code itself is outside the protection domain; intrinsic *results*
  are still injection-eligible because the fault model covers values returned
  from calls (§3).
* **I/O** — ``print_*`` debug output (disabled by default in campaigns).
* **MPI** — the subset of MPI the workloads need, served by
  :mod:`repro.parallel` when a program runs under the simulated SPMD runtime
  (rank 0 semantics when run serially).

The IPAS check intrinsics (``ipas.check.*``) are *not* listed here: they are
created on demand by the duplication pass with type-mangled names (see
:mod:`repro.protect.duplication`).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .function import Function
from .module import Module
from .types import F64, I64, PointerType, Type, VOID

F64P = PointerType(F64)
I64P = PointerType(I64)

#: name -> (return type, parameter types)
INTRINSIC_SIGNATURES: Dict[str, Tuple[Type, Tuple[Type, ...]]] = {
    # libm
    "sqrt": (F64, (F64,)),
    "fabs": (F64, (F64,)),
    "sin": (F64, (F64,)),
    "cos": (F64, (F64,)),
    "exp": (F64, (F64,)),
    "log": (F64, (F64,)),
    "pow": (F64, (F64, F64)),
    "floor": (F64, (F64,)),
    "fmin": (F64, (F64, F64)),
    "fmax": (F64, (F64, F64)),
    # I/O
    "print_f64": (VOID, (F64,)),
    "print_i64": (VOID, (I64,)),
    # MPI (simulated SPMD runtime; identity/rank-0 semantics when serial)
    "mpi_rank": (I64, ()),
    "mpi_size": (I64, ()),
    "mpi_barrier": (VOID, ()),
    "mpi_allreduce_sum_f64": (F64, (F64,)),
    "mpi_allreduce_min_f64": (F64, (F64,)),
    "mpi_allreduce_max_f64": (F64, (F64,)),
    "mpi_allreduce_sum_i64": (I64, (I64,)),
    "mpi_allreduce_max_i64": (I64, (I64,)),
    "mpi_bcast_f64": (F64, (F64, I64)),
    "mpi_bcast_i64": (I64, (I64, I64)),
    # In-place allreduce over an array of n elements.
    "mpi_allreduce_sum_f64_array": (VOID, (F64P, I64)),
    "mpi_allreduce_sum_i64_array": (VOID, (I64P, I64)),
    # Exchange: send `count` cells from sendbuf to `peer`, receive into recvbuf.
    "mpi_sendrecv_f64": (VOID, (F64P, F64P, I64, I64)),
}

#: Intrinsics whose returned value is data-dependent and therefore
#: injection-eligible per the paper's fault model (values returned from
#: function-call instructions).  Environment queries (rank/size) are treated
#: as configuration, not computation.
VALUE_RETURNING_MATH = frozenset(
    {"sqrt", "fabs", "sin", "cos", "exp", "log", "pow", "floor", "fmin", "fmax"}
)


def declare_intrinsic(module: Module, name: str) -> Function:
    """Get-or-declare the named intrinsic in ``module``."""
    try:
        ret, params = INTRINSIC_SIGNATURES[name]
    except KeyError:
        raise KeyError(f"unknown intrinsic: {name}") from None
    return module.declare_function(name, ret, params, is_intrinsic=True)


def is_check_intrinsic(fn: Function) -> bool:
    """True for the duplication-check intrinsics inserted by the protector."""
    return fn.name.startswith("ipas.check")
