"""repro.ir — a from-scratch typed SSA IR (the LLVM substitute).

This package is the compiler substrate everything else builds on: the
frontend lowers scil programs to it, the analyses and passes transform it,
the interpreter executes it, and the IPAS protector rewrites it.
"""

from .types import (
    ArrayType,
    F64,
    FloatType,
    FunctionType,
    I1,
    I8,
    I32,
    I64,
    IntType,
    PointerType,
    Type,
    VOID,
    VoidType,
    pointer_to,
)
from .values import (
    Argument,
    Constant,
    GlobalVariable,
    UndefValue,
    Value,
    const_bool,
    const_float,
    const_int,
)
from .instructions import (
    AllocaInst,
    AtomicRMWInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    DEFAULT_OPCODE_COSTS,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .block import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder
from .intrinsics import INTRINSIC_SIGNATURES, declare_intrinsic, is_check_intrinsic
from .printer import print_function, print_module
from .parser import IRParseError, parse_module, parse_type
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "ArrayType", "F64", "FloatType", "FunctionType", "I1", "I8", "I32", "I64",
    "IntType", "PointerType", "Type", "VOID", "VoidType", "pointer_to",
    "Argument", "Constant", "GlobalVariable", "UndefValue", "Value",
    "const_bool", "const_float", "const_int",
    "AllocaInst", "AtomicRMWInst", "BinaryOperator", "BranchInst", "CallInst",
    "CastInst", "DEFAULT_OPCODE_COSTS", "FCmpInst", "GEPInst", "ICmpInst",
    "Instruction", "LoadInst", "PhiNode", "RetInst", "SelectInst", "StoreInst",
    "UnreachableInst",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "INTRINSIC_SIGNATURES", "declare_intrinsic", "is_check_intrinsic",
    "print_function", "print_module",
    "IRParseError", "parse_module", "parse_type",
    "VerificationError", "verify_function", "verify_module",
]
