"""Textual printer for the repro IR (LLVM-flavoured assembly).

Intended for debugging, golden tests, and documentation; there is no parser
for this syntax (programs are built with the :class:`~repro.ir.builder.IRBuilder`
or compiled from scil source by :mod:`repro.frontend`).
"""

from __future__ import annotations

from typing import Dict

from .block import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    AtomicRMWInst,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    PhiNode,
    RetInst,
    SelectInst,
    UnreachableInst,
)
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class _Namer:
    """Assigns stable, unique local names (%0, %1, ...) within one function.

    Explicit value names are kept but uniquified (`%i`, `%i.1`, ...), so the
    printed text is unambiguous and :func:`repro.ir.parser.parse_module` can
    round-trip it.
    """

    def __init__(self, fn: Function):
        self._names: Dict[int, str] = {}
        used: set = set()
        counter = 0

        def assign(value: Value) -> None:
            nonlocal counter
            base = value.name or str(counter)
            counter += 1
            name = base
            suffix = 0
            while name in used:
                suffix += 1
                name = f"{base}.{suffix}"
            used.add(name)
            self._names[id(value)] = name

        for arg in fn.args:
            assign(arg)
        for block in fn.blocks:
            for inst in block.instructions:
                if inst.produces_value():
                    assign(inst)

    def ref(self, value: Value) -> str:
        if isinstance(value, (Constant, UndefValue, GlobalVariable)):
            return value.ref()
        if isinstance(value, Function):
            return value.ref()
        name = self._names.get(id(value))
        if name is None:
            return "%<dangling>"
        return f"%{name}"


def _format_instruction(inst: Instruction, namer: _Namer) -> str:
    def r(v: Value) -> str:
        return namer.ref(v)

    def typed(v: Value) -> str:
        return f"{v.type} {r(v)}"

    lhs = f"{r(inst)} = " if inst.produces_value() else ""
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            cond = inst.condition
            assert cond is not None
            return (
                f"br i1 {r(cond)}, label %{inst.targets[0].name}, "
                f"label %{inst.targets[1].name}"
            )
        return f"br label %{inst.targets[0].name}"
    if isinstance(inst, RetInst):
        if inst.return_value is None:
            return "ret void"
        return f"ret {typed(inst.return_value)}"
    if isinstance(inst, UnreachableInst):
        return "unreachable"
    if isinstance(inst, PhiNode):
        incoming = ", ".join(
            f"[ {r(v)}, %{b.name} ]" for v, b in inst.incoming()
        )
        return f"{lhs}phi {inst.type} {incoming}"
    if isinstance(inst, CallInst):
        args = ", ".join(typed(a) for a in inst.operands)
        return f"{lhs}call {inst.type} @{inst.callee.name}({args})"
    if isinstance(inst, ICmpInst):
        return f"{lhs}icmp {inst.predicate} {typed(inst.operands[0])}, {r(inst.operands[1])}"
    if isinstance(inst, FCmpInst):
        return f"{lhs}fcmp {inst.predicate} {typed(inst.operands[0])}, {r(inst.operands[1])}"
    if isinstance(inst, CastInst):
        return f"{lhs}{inst.opcode} {typed(inst.operands[0])} to {inst.type}"
    if isinstance(inst, SelectInst):
        ops = ", ".join(typed(o) for o in inst.operands)
        return f"{lhs}select {ops}"
    if isinstance(inst, AllocaInst):
        return f"{lhs}alloca {inst.allocated_type}"
    if isinstance(inst, GEPInst):
        return f"{lhs}gep {typed(inst.base)}, {typed(inst.index)}"
    if isinstance(inst, AtomicRMWInst):
        return f"{lhs}atomicrmw add {typed(inst.pointer)}, {typed(inst.value)}"
    if inst.opcode == "load":
        return f"{lhs}load {inst.type}, {typed(inst.operands[0])}"
    if inst.opcode == "store":
        return f"store {typed(inst.operands[0])}, {typed(inst.operands[1])}"
    # Binary operators and anything else with plain operand lists.
    ops = ", ".join(r(o) for o in inst.operands)
    first = inst.operands[0].type if inst.operands else inst.type
    return f"{lhs}{inst.opcode} {first} {ops}"


def print_function(fn: Function) -> str:
    if fn.is_declaration:
        params = ", ".join(str(t) for t in fn.ftype.param_types)
        return f"declare {fn.return_type} @{fn.name}({params})"
    namer = _Namer(fn)
    params = ", ".join(
        f"{a.type} {namer.ref(a)}" for a in fn.args
    )
    lines = [f"define {fn.return_type} @{fn.name}({params}) {{"]
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {_format_instruction(inst, namer)}")
    lines.append("}")
    return "\n".join(lines)


def print_global(gv: GlobalVariable) -> str:
    init = "" if gv.initializer is None else f" init {gv.initializer!r}"
    out = " output" if gv.is_output else ""
    return f"@{gv.name} = global {gv.value_type}{init}{out}"


def print_module(module: Module) -> str:
    parts = [f"; module {module.name}"]
    for gv in module.globals.values():
        parts.append(print_global(gv))
    for fn in module.functions.values():
        if fn.is_declaration:
            parts.append(print_function(fn))
    for fn in module.functions.values():
        if not fn.is_declaration:
            parts.append("")
            parts.append(print_function(fn))
    return "\n".join(parts) + "\n"
