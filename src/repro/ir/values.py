"""Core value classes of the repro SSA IR.

Every operand in the IR is a :class:`Value`: constants, function arguments,
global variables, functions, and instructions (which are defined in
:mod:`repro.ir.instructions`).  Values track their *uses* — the ``(user,
operand_index)`` pairs that reference them — which gives the def-use chains
that the IPAS duplication pass (paper §4.4) and Weiser slicing (paper §4.2)
are built on.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple, TYPE_CHECKING

from .types import F64, I1, I64, IntType, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from .instructions import Instruction


class Value:
    """Base class for everything that can appear as an operand."""

    __slots__ = ("type", "name", "uses")

    def __init__(self, type: Type, name: str = ""):
        self.type = type
        self.name = name
        #: list of (user instruction, operand index) pairs
        self.uses: List[Tuple["Instruction", int]] = []

    # -- use-list maintenance -------------------------------------------------

    def add_use(self, user: "Instruction", index: int) -> None:
        self.uses.append((user, index))

    def remove_use(self, user: "Instruction", index: int) -> None:
        self.uses.remove((user, index))

    @property
    def users(self) -> List["Instruction"]:
        """The distinct instructions that use this value, in use order."""
        seen = []
        for user, _ in self.uses:
            if user not in seen:
                seen.append(user)
        return seen

    def is_used(self) -> bool:
        return bool(self.uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to refer to ``new`` instead."""
        if new is self:
            return
        for user, index in list(self.uses):
            user.set_operand(index, new)

    # -- display --------------------------------------------------------------

    def ref(self) -> str:
        """Short printable reference (used by the textual printer)."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """An immediate constant of integer, boolean, or float type."""

    __slots__ = ("value",)

    def __init__(self, type: Type, value):
        super().__init__(type, "")
        if type.is_integer():
            bits = type.bits  # type: ignore[attr-defined]
            value = int(value)
            lo = -(1 << (bits - 1)) if bits > 1 else 0
            hi = (1 << bits) - 1
            if not (lo <= value <= hi):
                raise ValueError(f"constant {value} out of range for {type}")
            # Canonicalize to the signed representative.
            if bits > 1 and value > (1 << (bits - 1)) - 1:
                value -= 1 << bits
        elif type.is_float():
            value = float(value)
        else:
            raise ValueError(f"constants must be int or float typed, got {type}")
        self.value = value

    def ref(self) -> str:
        if self.type.is_float():
            if math.isnan(self.value):
                return "nan"
            return repr(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and (
                other.value == self.value
                or (
                    self.type.is_float()
                    and math.isnan(self.value)
                    and math.isnan(other.value)
                )
            )
        )

    def __hash__(self) -> int:
        if self.type.is_float() and math.isnan(self.value):
            return hash((self.type, "nan"))
        return hash((self.type, self.value))


def const_int(value: int, type: IntType = I64) -> Constant:
    return Constant(type, value)


def const_bool(value: bool) -> Constant:
    return Constant(I1, 1 if value else 0)


def const_float(value: float) -> Constant:
    return Constant(F64, value)


class UndefValue(Value):
    """An undefined value (reads of it yield zero in the interpreter)."""

    __slots__ = ()

    def __init__(self, type: Type):
        super().__init__(type, "")

    def ref(self) -> str:
        return "undef"


class Argument(Value):
    """A formal parameter of a :class:`~repro.ir.function.Function`."""

    __slots__ = ("parent", "index")

    def __init__(self, type: Type, name: str, parent, index: int):
        super().__init__(type, name)
        self.parent = parent
        self.index = index


class GlobalVariable(Value):
    """A module-level variable.

    The value's *type* is a pointer to the variable's ``value_type`` (as in
    LLVM, referencing a global yields its address).  ``initializer`` is either
    ``None`` (zero-initialised), a scalar Python number, or a list of numbers
    for array globals.
    """

    __slots__ = ("value_type", "initializer", "is_output")

    def __init__(
        self,
        name: str,
        value_type: Type,
        initializer=None,
        is_output: bool = False,
    ):
        from .types import PointerType

        if value_type.is_array():
            pointee = value_type.element  # type: ignore[attr-defined]
        elif value_type.is_scalar():
            pointee = value_type
        else:
            raise ValueError(f"global of type {value_type} is not supported")
        super().__init__(PointerType(pointee), name)
        self.value_type = value_type
        self.initializer = initializer
        #: marks globals that hold the program's scientific output; the
        #: verification routines (paper Table 2) read these after a run.
        self.is_output = is_output

    @property
    def cell_count(self) -> int:
        """Number of 8-byte memory cells the global occupies."""
        if self.value_type.is_array():
            return self.value_type.count  # type: ignore[attr-defined]
        return 1

    def ref(self) -> str:
        return f"@{self.name}"

    def initial_cells(self) -> List:
        """The initial contents of the global's memory cells."""
        elem = (
            self.value_type.element  # type: ignore[attr-defined]
            if self.value_type.is_array()
            else self.value_type
        )
        zero = 0.0 if elem.is_float() else 0
        if self.initializer is None:
            return [zero] * self.cell_count
        if isinstance(self.initializer, (list, tuple)):
            cells = list(self.initializer)
            if len(cells) > self.cell_count:
                raise ValueError(f"initializer too long for {self.name}")
            cells += [zero] * (self.cell_count - len(cells))
            if elem.is_float():
                return [float(c) for c in cells]
            return [int(c) for c in cells]
        if self.cell_count != 1:
            return [
                float(self.initializer) if elem.is_float() else int(self.initializer)
            ] * self.cell_count
        return [float(self.initializer) if elem.is_float() else int(self.initializer)]


def ensure_all_scalar(values: Iterable[Value]) -> None:
    for v in values:
        if not v.type.is_scalar():
            raise TypeError(f"expected scalar-typed value, got {v!r}")
