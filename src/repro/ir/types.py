"""Type system for the repro SSA IR.

The IR models the subset of LLVM's type system that the IPAS paper's
instruction taxonomy (Table 1) needs:

* integer types of a few fixed widths (``i1`` for booleans, ``i32``, ``i64``),
* a 64-bit IEEE-754 floating point type (``f64``),
* pointers (typed, word-addressed — see :mod:`repro.interp.memory`),
* flat array types (used only for the size of allocas and globals),
* ``void`` for instructions and functions that produce no value,
* function types.

Types are immutable and compared structurally; the common scalar types are
exposed as module-level singletons (:data:`I1`, :data:`I32`, :data:`I64`,
:data:`F64`, :data:`VOID`).
"""

from __future__ import annotations

from typing import Tuple


class Type:
    """Base class of all IR types."""

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_scalar(self) -> bool:
        """True for values that fit in one virtual register."""
        return self.is_integer() or self.is_float() or self.is_pointer()

    @property
    def byte_size(self) -> int:
        """Size of a value of this type in bytes (feature 12 of Table 1)."""
        raise TypeError(f"type {self} has no byte size")

    def __eq__(self, other: object) -> bool:  # pragma: no cover - trivial
        raise NotImplementedError

    def __hash__(self) -> int:  # pragma: no cover - trivial
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    """The type of instructions that produce no value."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """An integer type of a fixed bit width.

    Arithmetic wraps modulo ``2**bits`` with two's-complement signedness,
    matching LLVM's ``iN`` semantics for the operations the IR supports.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int):
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {bits}")
        self.bits = bits

    @property
    def byte_size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("int", self.bits))

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(Type):
    """An IEEE-754 binary floating point type (only 64-bit is used)."""

    __slots__ = ("bits",)

    def __init__(self, bits: int = 64):
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: {bits}")
        self.bits = bits

    @property
    def byte_size(self) -> int:
        return self.bits // 8

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FloatType) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("float", self.bits))

    def __str__(self) -> str:
        return f"f{self.bits}"


class PointerType(Type):
    """A typed pointer.

    The interpreter's memory is word-addressed (one scalar per 8-byte cell),
    so pointer arithmetic (``gep``) advances in whole cells regardless of the
    pointee type; the pointee type is still tracked for type checking and for
    load/store result types.
    """

    __slots__ = ("pointee",)

    def __init__(self, pointee: Type):
        if pointee.is_void():
            raise ValueError("pointer to void is not supported")
        self.pointee = pointee

    @property
    def byte_size(self) -> int:
        return 8

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(Type):
    """A flat, fixed-length array; used to size allocas and globals."""

    __slots__ = ("element", "count")

    def __init__(self, element: Type, count: int):
        if not element.is_scalar():
            raise ValueError("only arrays of scalars are supported")
        if count <= 0:
            raise ValueError("array count must be positive")
        self.element = element
        self.count = count

    @property
    def byte_size(self) -> int:
        # One memory cell (8 bytes) per element; see PointerType.
        return 8 * self.count

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    __slots__ = ("return_type", "param_types")

    def __init__(self, return_type: Type, param_types: Tuple[Type, ...]):
        for p in param_types:
            if not p.is_scalar():
                raise ValueError(f"function parameters must be scalar, got {p}")
        self.return_type = return_type
        self.param_types = tuple(param_types)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
        )

    def __hash__(self) -> int:
        return hash(("fn", self.return_type, self.param_types))

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} ({params})"


#: Singleton instances of the common scalar types.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
F64 = FloatType(64)


def pointer_to(pointee: Type) -> PointerType:
    """Convenience constructor mirroring LLVM's ``T*`` notation."""
    return PointerType(pointee)
