"""Functions of the repro SSA IR."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING

from .block import BasicBlock
from .instructions import Instruction
from .types import FunctionType, Type
from .values import Argument, Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import Module


class Function(Value):
    """A function: a named list of basic blocks plus formal arguments.

    A function with no blocks is a *declaration* — either an external
    intrinsic handled by the interpreter's runtime (``sqrt``, ``mpi_rank``,
    ``ipas.check.f64``, ...) or a forward declaration awaiting a body.

    Function-level properties are the third feature category of Table 1:
    instruction count (21), block count (22), future calls (23), and whether
    the function returns a value (24).
    """

    __slots__ = ("ftype", "args", "blocks", "parent", "is_intrinsic")

    def __init__(
        self,
        name: str,
        ftype: FunctionType,
        arg_names: Optional[Sequence[str]] = None,
        parent: Optional["Module"] = None,
        is_intrinsic: bool = False,
    ):
        super().__init__(ftype, name)
        self.ftype = ftype
        names = list(arg_names) if arg_names is not None else [
            f"arg{i}" for i in range(len(ftype.param_types))
        ]
        if len(names) != len(ftype.param_types):
            raise ValueError("argument name count does not match parameter count")
        self.args: List[Argument] = [
            Argument(pty, nm, self, i)
            for i, (pty, nm) in enumerate(zip(ftype.param_types, names))
        ]
        self.blocks: List[BasicBlock] = []
        self.parent = parent
        self.is_intrinsic = is_intrinsic

    # -- structure ---------------------------------------------------------------

    @property
    def return_type(self) -> Type:
        return self.ftype.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise RuntimeError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name), self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def _unique_block_name(self, base: str) -> str:
        existing = {b.name for b in self.blocks}
        if base not in existing:
            return base
        i = 1
        while f"{base}.{i}" in existing:
            i += 1
        return f"{base}.{i}"

    # -- traversal ----------------------------------------------------------------

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    @property
    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def returns_value(self) -> bool:
        return not self.return_type.is_void()

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} {self.name}: {self.ftype}>"
