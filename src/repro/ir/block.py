"""Basic blocks of the repro SSA IR."""

from __future__ import annotations

from typing import Iterator, List, Optional, TYPE_CHECKING

from .instructions import BranchInst, Instruction, PhiNode

if TYPE_CHECKING:  # pragma: no cover
    from .function import Function


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    Basic-block properties are the second feature category of the paper's
    Table 1: block size (14), successor count (15), successor sizes (16),
    loop membership (17), phi presence (18), and branch terminator (19).
    """

    __slots__ = ("name", "parent", "instructions")

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # -- structural queries ----------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        return term.successors()  # type: ignore[attr-defined]

    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors():
                preds.append(block)
        return preds

    def phis(self) -> List[PhiNode]:
        result = []
        for inst in self.instructions:
            if isinstance(inst, PhiNode):
                result.append(inst)
            else:
                break
        return result

    def non_phi_instructions(self) -> List[Instruction]:
        return [i for i in self.instructions if not isinstance(i, PhiNode)]

    def has_phi(self) -> bool:
        return bool(self.instructions) and isinstance(self.instructions[0], PhiNode)

    def ends_in_branch(self) -> bool:
        return isinstance(self.terminator, BranchInst)

    # -- mutation ---------------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.is_terminated():
            raise RuntimeError(f"block {self.name} is already terminated")
        if isinstance(inst, PhiNode) and self.non_phi_instructions():
            raise RuntimeError("phi nodes must be grouped at the top of a block")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        index = self.instructions.index(anchor)
        return self.insert(index + 1, inst)

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        index = self.instructions.index(anchor)
        return self.insert(index, inst)

    def remove(self, inst: Instruction) -> None:
        self.instructions.remove(inst)
        inst.parent = None

    def index_of(self, inst: Instruction) -> int:
        return self.instructions.index(inst)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name}: {len(self.instructions)} insts>"
