"""Parser for the textual IR (the inverse of :mod:`repro.ir.printer`).

Round-trips the printer's output: ``parse_module(print_module(m))`` yields
a structurally identical module.  Useful for golden tests, for crafting
regression cases by hand, and for inspecting/editing protected modules.

Grammar (one construct per line)::

    ; comment
    @name = global <type> [init <python-literal>] [output]
    declare <type> @name(<type>, ...)
    define <type> @name(<type> %arg, ...) {
    label:
      %x = add i64 %a, %b
      ...
    }

Instruction syntax follows the printer exactly; forward references to
blocks and to values defined later in the function are resolved in a second
pass, so phis and loops parse naturally.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from .block import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    AtomicRMWInst,
    BinaryOperator,
    BINARY_OPS,
    BranchInst,
    CallInst,
    CastInst,
    CAST_OPS,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .module import Module
from .types import ArrayType, F64, FloatType, I1, I8, I32, I64, IntType, PointerType, Type, VOID
from .values import Constant, UndefValue, Value


class IRParseError(Exception):
    """Malformed textual IR."""

    def __init__(self, message: str, line_number: int = 0):
        super().__init__(
            f"line {line_number}: {message}" if line_number else message
        )
        self.line_number = line_number


_SCALARS: Dict[str, Type] = {
    "void": VOID,
    "i1": I1,
    "i8": I8,
    "i32": I32,
    "i64": I64,
    "f64": F64,
    "f32": FloatType(32),
}


def parse_type(text: str) -> Type:
    text = text.strip()
    if text.endswith("*"):
        return PointerType(parse_type(text[:-1]))
    if text.startswith("["):
        match = re.fullmatch(r"\[\s*(\d+)\s*x\s*(.+?)\s*\]", text)
        if not match:
            raise IRParseError(f"bad array type {text!r}")
        return ArrayType(parse_type(match.group(2)), int(match.group(1)))
    scalar = _SCALARS.get(text)
    if scalar is None:
        raise IRParseError(f"unknown type {text!r}")
    return scalar


class _Deferred(Value):
    """Placeholder for a %name used before its definition."""

    __slots__ = ()


class _FunctionParser:
    def __init__(self, module: Module, fn: Function, line_number: int):
        self.module = module
        self.fn = fn
        self.start_line = line_number
        self.values: Dict[str, Value] = {a.name: a for a in fn.args}
        self.blocks: Dict[str, BasicBlock] = {}
        #: (instruction, operand index, name) fixups for forward value refs
        self.value_fixups: List[Tuple[Instruction, int, str, int]] = []
        #: (phi, value-name-or-literal, block name, line) fixups
        self.phi_fixups: List[Tuple[PhiNode, str, str, str, int]] = []

    # -- operand handling ------------------------------------------------------

    def operand(self, type_: Type, token: str, line_number: int) -> Value:
        token = token.strip()
        if token.startswith("%"):
            name = token[1:]
            existing = self.values.get(name)
            if existing is not None:
                return existing
            placeholder = _Deferred(type_, name)
            return placeholder
        if token.startswith("@"):
            name = token[1:]
            if name in self.module.globals:
                return self.module.get_global(name)
            raise IRParseError(f"unknown global @{name}", line_number)
        if token == "undef":
            return UndefValue(type_)
        if type_.is_pointer():
            # Pointer-typed literal (addresses are plain ints here).
            raise IRParseError(f"bad pointer operand {token!r}", line_number)
        try:
            if type_.is_float():
                return Constant(type_, float(token))
            return Constant(type_, int(token))
        except ValueError:
            raise IRParseError(f"bad literal {token!r}", line_number) from None

    def block(self, name: str) -> BasicBlock:
        existing = self.blocks.get(name)
        if existing is not None:
            return existing
        block = BasicBlock(name, self.fn)
        self.blocks[name] = block
        return block

    def define(self, name: str, value: Value, line_number: int) -> None:
        if name in self.values:
            raise IRParseError(f"redefinition of %{name}", line_number)
        value.name = name
        self.values[name] = value

    def resolve_deferred(self) -> None:
        for fn_block in self.fn.blocks:
            for inst in fn_block.instructions:
                for index, op in enumerate(inst.operands):
                    if isinstance(op, _Deferred):
                        real = self.values.get(op.name)
                        if real is None:
                            raise IRParseError(
                                f"undefined value %{op.name} in {self.fn.name}"
                            )
                        inst.set_operand(index, real)


_TYPED_OPERAND = re.compile(r"^\s*(\S+(?:\s*\*)?)\s+(\S+)\s*$")


def _split_typed(token: str, line_number: int) -> Tuple[Type, str]:
    """Parse '<type> <operand>'."""
    parts = token.strip().rsplit(" ", 1)
    if len(parts) != 2:
        raise IRParseError(f"expected '<type> <value>', got {token!r}", line_number)
    return parse_type(parts[0]), parts[1]


def _split_args(text: str) -> List[str]:
    """Split on commas not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class IRTextParser:
    """Parses the printer's textual module syntax."""

    def __init__(self, source: str):
        self.lines = source.splitlines()
        self.pos = 0
        self.module = Module("parsed")

    # -- line plumbing ------------------------------------------------------------

    def _next_line(self) -> Optional[Tuple[int, str]]:
        while self.pos < len(self.lines):
            raw = self.lines[self.pos]
            self.pos += 1
            text = raw.split(";", 1)[0].rstrip()
            if text.strip():
                return self.pos, text
        return None

    def _peek_line(self) -> Optional[Tuple[int, str]]:
        saved = self.pos
        result = self._next_line()
        self.pos = saved
        return result

    # -- top level ---------------------------------------------------------------------

    def parse(self) -> Module:
        while True:
            item = self._next_line()
            if item is None:
                break
            line_number, text = item
            stripped = text.strip()
            try:
                if stripped.startswith("@"):
                    self._parse_global(stripped, line_number)
                elif stripped.startswith("declare"):
                    self._parse_declare(stripped, line_number)
                elif stripped.startswith("define"):
                    self._parse_define(stripped, line_number)
                else:
                    raise IRParseError(f"unexpected line {stripped!r}", line_number)
            except IRParseError:
                raise
            except (IndexError, KeyError, ValueError, TypeError) as exc:
                # Constructor-level rejections (duplicate names, zero-length
                # arrays, bad initializers) become parse diagnostics.
                raise IRParseError(
                    f"invalid construct {stripped!r}: {exc}", line_number
                ) from exc
        return self.module

    def _parse_global(self, text: str, line_number: int) -> None:
        match = re.fullmatch(
            r"@([\w.]+)\s*=\s*global\s+(.+?)(\s+init\s+(.+?))?(\s+output)?",
            text,
        )
        if not match:
            raise IRParseError(f"bad global: {text!r}", line_number)
        name, type_text, _, init_text, output = match.groups()
        initializer = None
        if init_text is not None:
            try:
                initializer = ast.literal_eval(init_text.strip())
            except (ValueError, SyntaxError):
                raise IRParseError(
                    f"bad initializer {init_text!r}", line_number
                ) from None
        self.module.add_global(
            name, parse_type(type_text), initializer, is_output=bool(output)
        )

    def _parse_declare(self, text: str, line_number: int) -> None:
        match = re.fullmatch(r"declare\s+(\S+)\s+@([\w.]+)\((.*)\)", text)
        if not match:
            raise IRParseError(f"bad declare: {text!r}", line_number)
        ret_text, name, params_text = match.groups()
        params = [parse_type(p) for p in _split_args(params_text)]
        self.module.declare_function(name, parse_type(ret_text), params)

    def _parse_define(self, text: str, line_number: int) -> None:
        match = re.fullmatch(r"define\s+(\S+)\s+@([\w.]+)\((.*)\)\s*\{", text)
        if not match:
            raise IRParseError(f"bad define: {text!r}", line_number)
        ret_text, name, params_text = match.groups()
        param_types: List[Type] = []
        param_names: List[str] = []
        for chunk in _split_args(params_text):
            ptype, pname = _split_typed(chunk, line_number)
            if not pname.startswith("%"):
                raise IRParseError(f"bad parameter {chunk!r}", line_number)
            param_types.append(ptype)
            param_names.append(pname[1:])
        fn = self.module.add_function(
            name, parse_type(ret_text), param_types, param_names
        )
        parser = _FunctionParser(self.module, fn, line_number)
        current: Optional[BasicBlock] = None
        while True:
            item = self._next_line()
            if item is None:
                raise IRParseError(f"unterminated function @{name}", line_number)
            ln, body_text = item
            stripped = body_text.strip()
            if stripped == "}":
                break
            if re.fullmatch(r"[\w.]+:", stripped):
                block = parser.block(stripped[:-1])
                if block in fn.blocks:
                    raise IRParseError(f"duplicate block {stripped!r}", ln)
                fn.blocks.append(block)
                current = block
                continue
            if current is None:
                raise IRParseError("instruction before first block label", ln)
            self._parse_instruction(parser, current, stripped, ln)
        parser.resolve_deferred()
        self._resolve_phis(parser)

    # -- instructions -----------------------------------------------------------------------

    def _parse_instruction(
        self, p: _FunctionParser, block: BasicBlock, text: str, ln: int
    ) -> None:
        dest: Optional[str] = None
        body = text
        match = re.match(r"^%([\w.]+)\s*=\s*(.+)$", text)
        if match:
            dest, body = match.group(1), match.group(2)
        try:
            inst = self._build(p, block, body.strip(), ln)
        except IRParseError:
            raise
        except (IndexError, KeyError, ValueError, TypeError) as exc:
            # Malformed operand lists or type mismatches surface from the
            # instruction constructors; report them as parse diagnostics.
            raise IRParseError(f"malformed instruction {body!r}: {exc}", ln) from exc
        inst.parent = block
        block.instructions.append(inst)
        if dest is not None:
            if not inst.produces_value():
                raise IRParseError("void instruction cannot be named", ln)
            p.define(dest, inst, ln)

    def _build(
        self, p: _FunctionParser, block: BasicBlock, body: str, ln: int
    ) -> Instruction:
        opcode, _, rest = body.partition(" ")
        rest = rest.strip()
        if opcode in BINARY_OPS:
            type_text, _, ops_text = rest.partition(" ")
            type_ = parse_type(type_text)
            tokens = _split_args(ops_text)
            if len(tokens) != 2:
                raise IRParseError(f"binary op needs 2 operands: {body!r}", ln)
            return BinaryOperator(
                opcode,
                p.operand(type_, tokens[0], ln),
                p.operand(type_, tokens[1], ln),
            )
        if opcode in ("icmp", "fcmp"):
            pred, _, rest2 = rest.partition(" ")
            tokens = _split_args(rest2)
            type_, first = _split_typed(tokens[0], ln)
            lhs = p.operand(type_, first, ln)
            rhs = p.operand(type_, tokens[1], ln)
            cls = ICmpInst if opcode == "icmp" else FCmpInst
            return cls(pred, lhs, rhs)
        if opcode in CAST_OPS:
            match = re.fullmatch(r"(.+)\s+to\s+(\S+)", rest)
            if not match:
                raise IRParseError(f"bad cast: {body!r}", ln)
            src_type, token = _split_typed(match.group(1), ln)
            return CastInst(opcode, p.operand(src_type, token, ln), parse_type(match.group(2)))
        if opcode == "select":
            tokens = _split_args(rest)
            parsed = [_split_typed(t, ln) for t in tokens]
            values = [p.operand(ty, tok, ln) for ty, tok in parsed]
            return SelectInst(*values)
        if opcode == "phi":
            type_text, _, incomings = rest.partition(" ")
            type_ = parse_type(type_text)
            phi = PhiNode(type_)
            for chunk in re.findall(r"\[\s*([^\],]+)\s*,\s*%([\w.]+)\s*\]", incomings):
                value_token, block_name = chunk
                p.phi_fixups.append((phi, value_token.strip(), block_name, type_text, ln))
            return phi
        if opcode == "call":
            match = re.fullmatch(r"(\S+)\s+@([\w.]+)\((.*)\)", rest)
            if not match:
                raise IRParseError(f"bad call: {body!r}", ln)
            _ret_text, callee_name, args_text = match.groups()
            try:
                callee = self.module.get_function(callee_name)
            except KeyError:
                raise IRParseError(f"unknown callee @{callee_name}", ln) from None
            args = []
            for chunk in _split_args(args_text):
                atype, token = _split_typed(chunk, ln)
                args.append(p.operand(atype, token, ln))
            return CallInst(callee, args)
        if opcode == "alloca":
            return AllocaInst(parse_type(rest))
        if opcode == "load":
            tokens = _split_args(rest)
            ptype, token = _split_typed(tokens[1], ln)
            return LoadInst(p.operand(ptype, token, ln))
        if opcode == "store":
            tokens = _split_args(rest)
            vtype, vtoken = _split_typed(tokens[0], ln)
            ptype, ptoken = _split_typed(tokens[1], ln)
            return StoreInst(p.operand(vtype, vtoken, ln), p.operand(ptype, ptoken, ln))
        if opcode == "gep":
            tokens = _split_args(rest)
            btype, btoken = _split_typed(tokens[0], ln)
            itype, itoken = _split_typed(tokens[1], ln)
            return GEPInst(p.operand(btype, btoken, ln), p.operand(itype, itoken, ln))
        if opcode == "atomicrmw":
            operation, _, rest2 = rest.partition(" ")
            tokens = _split_args(rest2)
            ptype, ptoken = _split_typed(tokens[0], ln)
            vtype, vtoken = _split_typed(tokens[1], ln)
            return AtomicRMWInst(
                operation, p.operand(ptype, ptoken, ln), p.operand(vtype, vtoken, ln)
            )
        if opcode == "br":
            cond_match = re.fullmatch(
                r"i1\s+(\S+)\s*,\s*label\s+%([\w.]+)\s*,\s*label\s+%([\w.]+)", rest
            )
            if cond_match:
                cond = p.operand(I1, cond_match.group(1), ln)
                return BranchInst(
                    cond, p.block(cond_match.group(2)), p.block(cond_match.group(3))
                )
            uncond_match = re.fullmatch(r"label\s+%([\w.]+)", rest)
            if uncond_match:
                return BranchInst(None, p.block(uncond_match.group(1)))
            raise IRParseError(f"bad branch: {body!r}", ln)
        if opcode == "ret":
            if rest == "void":
                return RetInst()
            rtype, token = _split_typed(rest, ln)
            return RetInst(p.operand(rtype, token, ln))
        if opcode == "unreachable" or body == "unreachable":
            return UnreachableInst()
        raise IRParseError(f"unknown instruction {body!r}", ln)

    def _resolve_phis(self, p: _FunctionParser) -> None:
        for phi, value_token, block_name, type_text, ln in p.phi_fixups:
            block = p.blocks.get(block_name)
            if block is None or block not in p.fn.blocks:
                raise IRParseError(f"phi references unknown block %{block_name}", ln)
            value = p.operand(parse_type(type_text), value_token, ln)
            if isinstance(value, _Deferred):
                real = p.values.get(value.name)
                if real is None:
                    raise IRParseError(f"undefined value %{value.name}", ln)
                value = real
            phi.add_incoming(value, block)


def parse_module(source: str, name: Optional[str] = None) -> Module:
    """Parse textual IR into a module (not verified — call verify_module).

    The module name comes from an explicit ``name`` argument, else from a
    leading ``; module <name>`` header (which the printer emits), else
    defaults to "parsed".
    """
    parser = IRTextParser(source)
    module = parser.parse()
    if name is not None:
        module.name = name
    else:
        header = re.search(r"^\s*;\s*module\s+(\S+)", source, re.MULTILINE)
        module.name = header.group(1) if header else "parsed"
    return module
