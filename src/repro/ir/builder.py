"""IRBuilder: a convenience layer for emitting instructions.

Mirrors LLVM's ``IRBuilder``: it holds an insertion point (a basic block) and
exposes one method per instruction kind, with constant folding left to the
optimizer (:mod:`repro.passes.constant_folding`) so that builders stay
predictable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .block import BasicBlock
from .function import Function
from .instructions import (
    AllocaInst,
    AtomicRMWInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from .intrinsics import declare_intrinsic
from .module import Module
from .types import F64, I64, Type
from .values import Constant, Value, const_float, const_int


class IRBuilder:
    """Emits instructions at the end of a chosen basic block."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise RuntimeError("builder has no insertion point")
        return self.block.parent

    @property
    def module(self) -> Module:
        mod = self.function.parent
        if mod is None:
            raise RuntimeError("function is not attached to a module")
        return mod

    def _emit(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        self.block.append(inst)
        return inst

    # -- arithmetic -------------------------------------------------------------

    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(BinaryOperator(opcode, lhs, rhs, name))

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs, rhs, name=""):
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs, rhs, name=""):
        return self.binop("srem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def lshr(self, lhs, rhs, name=""):
        return self.binop("lshr", lhs, rhs, name)

    def ashr(self, lhs, rhs, name=""):
        return self.binop("ashr", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    def frem(self, lhs, rhs, name=""):
        return self.binop("frem", lhs, rhs, name)

    # -- comparisons, selects -----------------------------------------------------

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(ICmpInst(predicate, lhs, rhs, name))

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> Value:
        return self._emit(FCmpInst(predicate, lhs, rhs, name))

    def select(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> Value:
        return self._emit(SelectInst(cond, if_true, if_false, name))

    # -- casts ---------------------------------------------------------------------

    def cast(self, opcode: str, value: Value, to_type: Type, name: str = "") -> Value:
        return self._emit(CastInst(opcode, value, to_type, name))

    def sitofp(self, value: Value, to_type: Type = F64, name: str = "") -> Value:
        return self.cast("sitofp", value, to_type, name)

    def fptosi(self, value: Value, to_type: Type = I64, name: str = "") -> Value:
        return self.cast("fptosi", value, to_type, name)

    def zext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("zext", value, to_type, name)

    def sext(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("sext", value, to_type, name)

    def trunc(self, value: Value, to_type: Type, name: str = "") -> Value:
        return self.cast("trunc", value, to_type, name)

    # -- memory ----------------------------------------------------------------------

    def alloca(self, allocated_type: Type, name: str = "") -> Value:
        return self._emit(AllocaInst(allocated_type, name))

    def load(self, pointer: Value, name: str = "") -> Value:
        return self._emit(LoadInst(pointer, name))

    def store(self, value: Value, pointer: Value) -> Value:
        return self._emit(StoreInst(value, pointer))

    def gep(self, base: Value, index: Value, name: str = "") -> Value:
        return self._emit(GEPInst(base, index, name))

    def atomic_add(self, pointer: Value, value: Value, name: str = "") -> Value:
        return self._emit(AtomicRMWInst("add", pointer, value, name))

    # -- control flow -------------------------------------------------------------------

    def br(self, dest: BasicBlock) -> Value:
        return self._emit(BranchInst(None, dest))

    def cond_br(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> Value:
        return self._emit(BranchInst(cond, then_block, else_block))

    def ret(self, value: Optional[Value] = None) -> Value:
        return self._emit(RetInst(value))

    def unreachable(self) -> Value:
        return self._emit(UnreachableInst())

    def phi(self, type: Type, name: str = "") -> PhiNode:
        """Phis are inserted at the top of the block, after existing phis."""
        if self.block is None:
            raise RuntimeError("builder has no insertion point")
        node = PhiNode(type, name)
        index = len(self.block.phis())
        self.block.insert(index, node)
        return node

    # -- calls -----------------------------------------------------------------------------

    def call(self, callee: Function, args: Sequence[Value] = (), name: str = "") -> Value:
        return self._emit(CallInst(callee, list(args), name))

    def call_intrinsic(self, name: str, args: Sequence[Value] = (), result_name: str = "") -> Value:
        fn = declare_intrinsic(self.module, name)
        return self.call(fn, args, result_name)

    # -- constants (module-independent helpers) ------------------------------------------------

    @staticmethod
    def i64(value: int) -> Constant:
        return const_int(value, I64)

    @staticmethod
    def f64(value: float) -> Constant:
        return const_float(value)
