"""Modules (translation units) of the repro SSA IR."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .function import Function
from .instructions import Instruction
from .types import FunctionType, Type
from .values import GlobalVariable


class Module:
    """A compilation unit: global variables plus functions.

    The protected programs that IPAS produces (paper step 4) are modules; the
    whole pipeline — feature extraction, fault injection, duplication —
    operates at module granularity, matching the paper's use of LLVM bitcode
    modules.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- functions -------------------------------------------------------------

    def add_function(
        self,
        name: str,
        return_type: Type,
        param_types: Sequence[Type] = (),
        arg_names: Optional[Sequence[str]] = None,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"function {name} already exists in module")
        fn = Function(name, FunctionType(return_type, tuple(param_types)), arg_names, self)
        self.functions[name] = fn
        return fn

    def declare_function(
        self,
        name: str,
        return_type: Type,
        param_types: Sequence[Type] = (),
        is_intrinsic: bool = True,
    ) -> Function:
        """Get or create a body-less declaration (used for intrinsics)."""
        existing = self.functions.get(name)
        if existing is not None:
            want = FunctionType(return_type, tuple(param_types))
            if existing.ftype != want:
                raise ValueError(
                    f"redeclaration of {name} with different type "
                    f"({existing.ftype} vs {want})"
                )
            return existing
        fn = Function(
            name,
            FunctionType(return_type, tuple(param_types)),
            parent=self,
            is_intrinsic=is_intrinsic,
        )
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name} in module {self.name}") from None

    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    # -- globals ----------------------------------------------------------------

    def add_global(
        self,
        name: str,
        value_type: Type,
        initializer=None,
        is_output: bool = False,
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"global {name} already exists in module")
        gv = GlobalVariable(name, value_type, initializer, is_output)
        self.globals[name] = gv
        return gv

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"no global named {name} in module {self.name}") from None

    def output_globals(self) -> List[GlobalVariable]:
        return [g for g in self.globals.values() if g.is_output]

    # -- traversal ----------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for fn in self.defined_functions():
            yield from fn.instructions()

    @property
    def static_instruction_count(self) -> int:
        """Static instruction count (paper Table 3)."""
        return sum(f.instruction_count for f in self.defined_functions())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.defined_functions())} functions, "
            f"{self.static_instruction_count} instructions>"
        )
