"""Instruction classes of the repro SSA IR.

The instruction taxonomy deliberately mirrors the categories that the IPAS
feature set (paper Table 1) distinguishes:

* binary operations, split into add/sub, mul/div, remainder, and logical
  groups (features 1-5),
* calls (feature 6), comparisons (feature 7), atomic read-modify-write
  (feature 8), ``gep`` pointer arithmetic (feature 9), ``alloca`` stack
  allocation (feature 10), and casts (feature 11),
* loads/stores (excluded from duplication per paper §4.4 — memory is assumed
  ECC-protected), phis, selects, and the control-flow terminators.

Every instruction is a :class:`~repro.ir.values.Value`; instructions with
``void`` type (stores, branches, ``ret void``) produce no value.  Operands are
managed through :meth:`Instruction.set_operand` so that use-lists stay
consistent — the duplication pass and the slicer depend on them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from .types import F64, I1, PointerType, Type, VOID
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .block import BasicBlock
    from .function import Function


# Opcode groups ---------------------------------------------------------------

INT_ARITH_OPS = ("add", "sub", "mul", "sdiv", "srem")
INT_LOGIC_OPS = ("and", "or", "xor", "shl", "lshr", "ashr")
FP_ARITH_OPS = ("fadd", "fsub", "fmul", "fdiv", "frem")
BINARY_OPS = INT_ARITH_OPS + INT_LOGIC_OPS + FP_ARITH_OPS

ADD_SUB_OPS = frozenset({"add", "sub", "fadd", "fsub"})
MUL_DIV_OPS = frozenset({"mul", "sdiv", "fmul", "fdiv"})
REM_OPS = frozenset({"srem", "frem"})
LOGIC_OPS = frozenset(INT_LOGIC_OPS)

CAST_OPS = ("sitofp", "fptosi", "zext", "sext", "trunc", "bitcast")

ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

#: Per-opcode cycle costs for the deterministic cost model.  The absolute
#: values follow typical latencies of a modern out-of-order core (divides are
#: expensive, simple ALU ops are cheap); only the *ratios* matter for the
#: paper's slowdown metric.
DEFAULT_OPCODE_COSTS = {
    "add": 1, "sub": 1, "mul": 3, "sdiv": 20, "srem": 20,
    "and": 1, "or": 1, "xor": 1, "shl": 1, "lshr": 1, "ashr": 1,
    "fadd": 3, "fsub": 3, "fmul": 4, "fdiv": 20, "frem": 25,
    "icmp": 1, "fcmp": 2, "select": 1,
    "sitofp": 4, "fptosi": 4, "zext": 1, "sext": 1, "trunc": 1, "bitcast": 0,
    "gep": 1, "alloca": 1, "load": 4, "store": 1, "atomicrmw": 8,
    "phi": 0, "br": 1, "ret": 1, "call": 2, "unreachable": 0,
    # A duplication check lowers to a compare plus a (predicted) branch.
    "ipas.check": 2,
}


class Instruction(Value):
    """Base class of all IR instructions."""

    __slots__ = ("opcode", "operands", "parent")

    def __init__(self, opcode: str, type: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.opcode = opcode
        self.operands: List[Value] = []
        self.parent: Optional["BasicBlock"] = None
        for op in operands:
            self._append_operand(op)

    # -- operand management ---------------------------------------------------

    def _append_operand(self, value: Value) -> None:
        index = len(self.operands)
        self.operands.append(value)
        value.add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        if old is value:
            return
        old.remove_use(self, index)
        self.operands[index] = value
        value.add_use(self, index)

    def drop_operands(self) -> None:
        """Detach all operands (used when deleting the instruction)."""
        for index, op in enumerate(self.operands):
            op.remove_use(self, index)
        self.operands = []

    # -- classification queries (mirroring Table 1 feature groups) ------------

    def is_terminator(self) -> bool:
        return isinstance(self, (BranchInst, RetInst, UnreachableInst))

    def is_binary_op(self) -> bool:
        return isinstance(self, BinaryOperator)

    def is_phi(self) -> bool:
        return isinstance(self, PhiNode)

    def is_call(self) -> bool:
        return isinstance(self, CallInst)

    def is_cmp(self) -> bool:
        return isinstance(self, (ICmpInst, FCmpInst))

    def is_memory_access(self) -> bool:
        return isinstance(self, (LoadInst, StoreInst, AtomicRMWInst))

    def produces_value(self) -> bool:
        return not self.type.is_void()

    @property
    def function(self) -> Optional["Function"]:
        return self.parent.parent if self.parent is not None else None

    def erase(self) -> None:
        """Remove the instruction from its block and drop its operands."""
        if self.is_used():
            raise RuntimeError(f"cannot erase {self!r}: it still has uses")
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_operands()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.opcode} {self.ref()}>"


class BinaryOperator(Instruction):
    """An arithmetic or logical operation on two scalar operands."""

    __slots__ = ()

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = ""):
        if opcode not in BINARY_OPS:
            raise ValueError(f"unknown binary opcode: {opcode}")
        if lhs.type != rhs.type:
            raise TypeError(f"{opcode}: operand types differ ({lhs.type} vs {rhs.type})")
        if opcode in FP_ARITH_OPS and not lhs.type.is_float():
            raise TypeError(f"{opcode} requires float operands, got {lhs.type}")
        if opcode not in FP_ARITH_OPS and not lhs.type.is_integer():
            raise TypeError(f"{opcode} requires integer operands, got {lhs.type}")
        super().__init__(opcode, lhs.type, (lhs, rhs), name)

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def is_add_sub(self) -> bool:
        return self.opcode in ADD_SUB_OPS

    def is_mul_div(self) -> bool:
        return self.opcode in MUL_DIV_OPS

    def is_remainder(self) -> bool:
        return self.opcode in REM_OPS

    def is_logical(self) -> bool:
        return self.opcode in LOGIC_OPS


class ICmpInst(Instruction):
    """Signed integer / pointer comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        if lhs.type != rhs.type:
            raise TypeError(f"icmp: operand types differ ({lhs.type} vs {rhs.type})")
        if not (lhs.type.is_integer() or lhs.type.is_pointer()):
            raise TypeError(f"icmp requires integer or pointer operands, got {lhs.type}")
        super().__init__("icmp", I1, (lhs, rhs), name)
        self.predicate = predicate


class FCmpInst(Instruction):
    """Ordered floating-point comparison producing an ``i1``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate: {predicate}")
        if lhs.type != rhs.type or not lhs.type.is_float():
            raise TypeError("fcmp requires two float operands of the same type")
        super().__init__("fcmp", I1, (lhs, rhs), name)
        self.predicate = predicate


class CastInst(Instruction):
    """A value conversion (``sitofp``, ``fptosi``, ``zext``, ``sext``,
    ``trunc``, or ``bitcast``)."""

    __slots__ = ()

    def __init__(self, opcode: str, value: Value, to_type: Type, name: str = ""):
        if opcode not in CAST_OPS:
            raise ValueError(f"unknown cast opcode: {opcode}")
        src = value.type
        if opcode == "sitofp" and not (src.is_integer() and to_type.is_float()):
            raise TypeError("sitofp converts int -> float")
        if opcode == "fptosi" and not (src.is_float() and to_type.is_integer()):
            raise TypeError("fptosi converts float -> int")
        if opcode in ("zext", "sext") and not (
            src.is_integer() and to_type.is_integer() and to_type.bits > src.bits
        ):
            raise TypeError(f"{opcode} widens an integer type")
        if opcode == "trunc" and not (
            src.is_integer() and to_type.is_integer() and to_type.bits < src.bits
        ):
            raise TypeError("trunc narrows an integer type")
        if opcode == "bitcast" and src.byte_size != to_type.byte_size:
            raise TypeError("bitcast requires same-size types")
        super().__init__(opcode, to_type, (value,), name)

    @property
    def value(self) -> Value:
        return self.operands[0]


class SelectInst(Instruction):
    """``select cond, a, b`` — branch-free conditional move."""

    __slots__ = ()

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = ""):
        if cond.type != I1:
            raise TypeError("select condition must be i1")
        if if_true.type != if_false.type:
            raise TypeError("select arms must have the same type")
        super().__init__("select", if_true.type, (cond, if_true, if_false), name)

    @property
    def condition(self) -> Value:
        return self.operands[0]


class PhiNode(Instruction):
    """An SSA phi node.

    Incoming blocks are stored alongside the operand list; operand ``i``
    corresponds to ``incoming_blocks[i]``.  Phis are *not* eligible for fault
    injection or duplication (they are a compiler artifact, not a hardware
    instruction — paper §3's fault model targets hardware instruction
    results), but feature 18 records their presence in a basic block.
    """

    __slots__ = ("incoming_blocks",)

    def __init__(self, type: Type, name: str = ""):
        super().__init__("phi", type, (), name)
        self.incoming_blocks: List["BasicBlock"] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type != self.type:
            raise TypeError(
                f"phi incoming type {value.type} != phi type {self.type}"
            )
        self._append_operand(value)
        self.incoming_blocks.append(block)

    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for_block(self, block: "BasicBlock") -> Value:
        for value, pred in self.incoming():
            if pred is block:
                return value
        raise KeyError(f"phi has no incoming value for block {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Drop the incoming entry for ``block`` (used by CFG simplification)."""
        index = self.incoming_blocks.index(block)
        # Rebuild operand list to keep use indices consistent.
        pairs = [(v, b) for v, b in self.incoming() if b is not block]
        self.drop_operands()
        self.incoming_blocks = []
        for value, pred in pairs:
            self._append_operand(value)
            self.incoming_blocks.append(pred)


class CallInst(Instruction):
    """A direct call to a :class:`~repro.ir.function.Function`.

    The callee is *not* an operand (it is not a dataflow value in this IR);
    only the arguments are.  Faults may corrupt the *returned value* of a call
    (paper §3), so non-void calls are injection-eligible, but the call itself
    is never duplicated (duplicating calls would re-execute side effects).
    """

    __slots__ = ("callee",)

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = ""):
        ftype = callee.ftype
        if len(args) != len(ftype.param_types):
            raise TypeError(
                f"call to {callee.name}: expected {len(ftype.param_types)} args, "
                f"got {len(args)}"
            )
        for arg, pty in zip(args, ftype.param_types):
            if arg.type != pty:
                raise TypeError(
                    f"call to {callee.name}: argument type {arg.type} != {pty}"
                )
        super().__init__("call", ftype.return_type, args, name)
        self.callee = callee

    @property
    def args(self) -> List[Value]:
        return list(self.operands)


class AllocaInst(Instruction):
    """Stack allocation of a scalar or a fixed-size array of scalars."""

    __slots__ = ("allocated_type",)

    def __init__(self, allocated_type: Type, name: str = ""):
        if allocated_type.is_array():
            pointee = allocated_type.element  # type: ignore[attr-defined]
        elif allocated_type.is_scalar():
            pointee = allocated_type
        else:
            raise TypeError(f"cannot alloca type {allocated_type}")
        super().__init__("alloca", PointerType(pointee), (), name)
        self.allocated_type = allocated_type

    @property
    def cell_count(self) -> int:
        if self.allocated_type.is_array():
            return self.allocated_type.count  # type: ignore[attr-defined]
        return 1


class LoadInst(Instruction):
    """Load one scalar from memory.  Loads are ECC-protected (paper §3):
    their result is never a fault-injection target and they are never
    duplicated."""

    __slots__ = ()

    def __init__(self, pointer: Value, name: str = ""):
        if not pointer.type.is_pointer():
            raise TypeError(f"load requires a pointer operand, got {pointer.type}")
        super().__init__("load", pointer.type.pointee, (pointer,), name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class StoreInst(Instruction):
    """Store one scalar to memory (void-typed)."""

    __slots__ = ()

    def __init__(self, value: Value, pointer: Value):
        if not pointer.type.is_pointer():
            raise TypeError(f"store requires a pointer operand, got {pointer.type}")
        if value.type != pointer.type.pointee:
            raise TypeError(
                f"store of {value.type} through pointer to {pointer.type.pointee}"
            )
        super().__init__("store", VOID, (value, pointer))

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


class AtomicRMWInst(Instruction):
    """Atomic read-modify-write (feature 8).

    Supported operations: ``add`` (integer or float fetch-and-add).  Returns
    the *old* value, as LLVM's ``atomicrmw`` does.  Present mainly so the
    feature space matches Table 1; the serial interpreter executes it
    non-atomically, and the simulated-MPI runtime has no shared memory.
    """

    __slots__ = ("operation",)

    def __init__(self, operation: str, pointer: Value, value: Value, name: str = ""):
        if operation != "add":
            raise ValueError(f"unsupported atomicrmw operation: {operation}")
        if not pointer.type.is_pointer() or value.type != pointer.type.pointee:
            raise TypeError("atomicrmw operand types are inconsistent")
        super().__init__("atomicrmw", value.type, (pointer, value), name)
        self.operation = operation

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]


class GEPInst(Instruction):
    """Pointer arithmetic: ``gep base, index`` computes ``base + index`` in
    memory cells (the "get-pointer" instruction of Table 1, feature 9).

    Address computations are a prime source of *symptoms*: a bit flip in a
    gep result typically produces a wild address and an access trap, which
    the Shoestring-style baseline exploits.
    """

    __slots__ = ()

    def __init__(self, base: Value, index: Value, name: str = ""):
        if not base.type.is_pointer():
            raise TypeError(f"gep base must be a pointer, got {base.type}")
        if not index.type.is_integer():
            raise TypeError(f"gep index must be an integer, got {index.type}")
        super().__init__("gep", base.type, (base, index), name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


class BranchInst(Instruction):
    """Unconditional (``br dest``) or conditional (``br cond, then, else``)
    branch.  Control-flow faults are out of scope (paper §3: handled by
    control-flow checking), so branches are never injection targets."""

    __slots__ = ("targets",)

    def __init__(
        self,
        cond: Optional[Value],
        then_block: "BasicBlock",
        else_block: Optional["BasicBlock"] = None,
    ):
        if cond is None:
            if else_block is not None:
                raise ValueError("unconditional branch takes one target")
            super().__init__("br", VOID, ())
            self.targets: List["BasicBlock"] = [then_block]
        else:
            if cond.type != I1:
                raise TypeError("branch condition must be i1")
            if else_block is None:
                raise ValueError("conditional branch takes two targets")
            super().__init__("br", VOID, (cond,))
            self.targets = [then_block, else_block]

    @property
    def is_conditional(self) -> bool:
        return bool(self.operands)

    @property
    def condition(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["BasicBlock"]:
        return list(self.targets)

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.targets = [new if t is old else t for t in self.targets]


class RetInst(Instruction):
    """Function return, with or without a value."""

    __slots__ = ()

    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", VOID, (value,) if value is not None else ())

    @property
    def return_value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def successors(self) -> List["BasicBlock"]:
        return []


class UnreachableInst(Instruction):
    """Marks a point that must never execute (reaching it traps)."""

    __slots__ = ()

    def __init__(self):
        super().__init__("unreachable", VOID, ())

    def successors(self) -> List["BasicBlock"]:
        return []
