"""IR verifier: structural and SSA well-formedness checks.

Run after the frontend, after each optimization pass, and after the IPAS
duplication pass; a protected module must be exactly as well-formed as the
original, so the verifier is the safety net for the whole pipeline.
"""

from __future__ import annotations

from typing import List, Set

from .block import BasicBlock
from .function import Function
from .instructions import Instruction, PhiNode
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value


class VerificationError(Exception):
    """Raised when a module violates an IR invariant."""


def _check(condition: bool, message: str, errors: List[str]) -> None:
    if not condition:
        errors.append(message)


def verify_function(fn: Function, errors: List[str]) -> None:
    name = fn.name
    if fn.is_declaration:
        return
    blocks: Set[BasicBlock] = set(fn.blocks)
    _check(bool(fn.blocks), f"{name}: function body has no blocks", errors)

    # Structural checks per block.
    defined: Set[int] = {id(a) for a in fn.args}
    all_insts: Set[int] = set()
    for block in fn.blocks:
        _check(
            block.parent is fn,
            f"{name}/{block.name}: block parent link is wrong",
            errors,
        )
        _check(
            block.is_terminated(),
            f"{name}/{block.name}: block lacks a terminator",
            errors,
        )
        seen_non_phi = False
        for i, inst in enumerate(block.instructions):
            all_insts.add(id(inst))
            _check(
                inst.parent is block,
                f"{name}/{block.name}: instruction parent link is wrong",
                errors,
            )
            if isinstance(inst, PhiNode):
                _check(
                    not seen_non_phi,
                    f"{name}/{block.name}: phi after non-phi instruction",
                    errors,
                )
            else:
                seen_non_phi = True
            if inst.is_terminator():
                _check(
                    i == len(block.instructions) - 1,
                    f"{name}/{block.name}: terminator not at end of block",
                    errors,
                )
                for succ in block.successors():
                    _check(
                        succ in blocks,
                        f"{name}/{block.name}: branch to foreign block {succ.name}",
                        errors,
                    )
            if inst.produces_value():
                defined.add(id(inst))

    # Phi / predecessor consistency: the incoming-block set must exactly
    # match the CFG predecessors — a missing edge would read an undefined
    # value in the interpreter, an extra one would mask a CFG bug.
    for block in fn.blocks:
        preds = block.predecessors()
        for phi in block.phis():
            _check(
                len(phi.operands) == len(phi.incoming_blocks),
                f"{name}/{block.name}: phi has {len(phi.operands)} values for "
                f"{len(phi.incoming_blocks)} incoming blocks",
                errors,
            )
            _check(
                len(phi.incoming_blocks) == len(set(map(id, phi.incoming_blocks))),
                f"{name}/{block.name}: phi has duplicate incoming blocks",
                errors,
            )
            for incoming in phi.incoming_blocks:
                _check(
                    incoming in blocks,
                    f"{name}/{block.name}: phi incoming block "
                    f"{incoming.name} belongs to another function",
                    errors,
                )
            incoming_ids = {id(b) for b in phi.incoming_blocks}
            pred_ids = {id(p) for p in preds}
            missing = [p.name for p in preds if id(p) not in incoming_ids]
            extra = [
                b.name for b in phi.incoming_blocks if id(b) not in pred_ids
            ]
            _check(
                not missing,
                f"{name}/{block.name}: phi incoming values missing for "
                f"predecessor(s) {missing}",
                errors,
            )
            _check(
                not extra,
                f"{name}/{block.name}: phi incoming values from "
                f"non-predecessor block(s) {extra}",
                errors,
            )

    # Operand sanity and use-list symmetry.
    for block in fn.blocks:
        for inst in block.instructions:
            for idx, op in enumerate(inst.operands):
                _check(
                    (inst, idx) in op.uses,
                    f"{name}/{block.name}: use-list of {op!r} is missing "
                    f"({inst!r}, {idx})",
                    errors,
                )
                if isinstance(op, Instruction):
                    _check(
                        id(op) in all_insts,
                        f"{name}/{block.name}: operand {op!r} of {inst!r} is not "
                        f"in this function",
                        errors,
                    )
                elif isinstance(op, Argument):
                    _check(
                        op.parent is fn,
                        f"{name}/{block.name}: argument operand from another function",
                        errors,
                    )
                else:
                    _check(
                        isinstance(op, (Constant, UndefValue, GlobalVariable)),
                        f"{name}/{block.name}: unexpected operand kind {op!r}",
                        errors,
                    )

    # SSA dominance: defs must dominate uses.
    if not errors:
        _verify_dominance(fn, errors)


def _verify_dominance(fn: Function, errors: List[str]) -> None:
    # Imported here to avoid a package-level import cycle (analysis imports ir).
    from ..analysis.dominators import DominatorTree

    try:
        dom = DominatorTree(fn)
    except Exception as exc:  # malformed CFG already reported elsewhere
        errors.append(f"{fn.name}: could not build dominator tree: {exc}")
        return
    reachable = set(dom.reachable_blocks)
    order = {}
    for block in fn.blocks:
        for i, inst in enumerate(block.instructions):
            order[id(inst)] = i
    for block in fn.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            if isinstance(inst, PhiNode):
                for value, pred in inst.incoming():
                    if isinstance(value, Instruction):
                        vb = value.parent
                        if vb in reachable and pred in reachable:
                            ok = dom.dominates(vb, pred)
                            _check(
                                ok,
                                f"{fn.name}/{block.name}: phi incoming "
                                f"{value!r} does not dominate edge from "
                                f"{pred.name}",
                                errors,
                            )
                continue
            for op in inst.operands:
                if not isinstance(op, Instruction):
                    continue
                ob = op.parent
                if ob is None or ob not in reachable:
                    continue
                if ob is block:
                    _check(
                        order[id(op)] < order[id(inst)],
                        f"{fn.name}/{block.name}: {op!r} used before defined",
                        errors,
                    )
                else:
                    _check(
                        dom.dominates(ob, block),
                        f"{fn.name}/{block.name}: def of {op!r} in {ob.name} "
                        f"does not dominate use in {block.name}",
                        errors,
                    )


def verify_module(module: Module) -> None:
    """Raise :class:`VerificationError` if the module is malformed."""
    errors: List[str] = []
    for fn in module.functions.values():
        _check(
            fn.parent is module,
            f"{fn.name}: function parent link is wrong",
            errors,
        )
        verify_function(fn, errors)
    if errors:
        preview = "\n  ".join(errors[:20])
        more = f"\n  ... and {len(errors) - 20} more" if len(errors) > 20 else ""
        raise VerificationError(f"module {module.name} is invalid:\n  {preview}{more}")
