"""repro.frontend — the scil language.

scil ("SCIentific Language") is the small C-like language the five
workloads are written in.  A whirlwind tour::

    // Globals; `output` marks what the verification routines read.
    int param_n = 64;
    output double result[256];

    double dot(double a[], double b[], int n) {
        double s = 0.0;
        for (int i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }
        return s;
    }

    void main() {
        int n = param_n;
        double x[256];
        for (int i = 0; i < n; i = i + 1) { x[i] = (double)i; }
        result[0] = sqrt(dot(x, x, n));
    }

Features: ``int`` (i64), ``double`` (IEEE f64), ``bool``, 1-D arrays
(globals, locals, and ``T name[]`` parameters), functions, ``if``/``while``/
``for``/``break``/``continue``, short-circuit ``&&``/``||``, bitwise and
shift operators on ``int``, implicit ``int -> double`` promotion, explicit
``(int)``/``(double)`` casts, libm intrinsics, ``print``, and the ``mpi_*``
collectives served by :mod:`repro.parallel`.

Pipeline: :func:`tokenize` → :func:`parse` → :func:`analyze` →
:func:`generate` → (optionally) the standard optimization pipeline.
:func:`compile_to_ir` runs all of it.
"""

from ..ir.verifier import verify_module
from .ast_nodes import Program
from .codegen import generate
from .errors import LexError, ParseError, ScilError, SemaError, SourceLocation
from .lexer import Token, tokenize
from .parser import parse
from .sema import INTRINSICS, SemanticAnalyzer, analyze


def compile_to_ir(source: str, name: str = "module", optimize: bool = True):
    """Compile scil source text into a verified IR module.

    With ``optimize=True`` (the default, and what the IPAS pipeline uses),
    the standard pass pipeline — mem2reg, constant folding, CFG
    simplification, DCE — runs to fixpoint, mirroring the paper's setup
    where protection happens after user-level optimization (§3, step 4).
    """
    from ..passes import optimize_module

    program = analyze(parse(source))
    module = generate(program, name)
    verify_module(module)
    if optimize:
        optimize_module(module)
        verify_module(module)
    return module


__all__ = [
    "INTRINSICS", "LexError", "ParseError", "Program", "ScilError",
    "SemaError", "SemanticAnalyzer", "SourceLocation", "Token",
    "analyze", "compile_to_ir", "generate", "parse", "tokenize",
    "verify_module",
]
