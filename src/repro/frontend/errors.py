"""Diagnostics for the scil frontend."""

from __future__ import annotations


class SourceLocation:
    """1-based line/column position in a source file."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int):
        self.line = line
        self.column = column

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def __repr__(self) -> str:
        return f"SourceLocation({self.line}, {self.column})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SourceLocation)
            and other.line == self.line
            and other.column == self.column
        )


class ScilError(Exception):
    """A frontend diagnostic with a source position."""

    def __init__(self, message: str, location: SourceLocation = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(ScilError):
    """Invalid character or malformed literal."""


class ParseError(ScilError):
    """Syntax error."""


class SemaError(ScilError):
    """Type or name-resolution error."""
