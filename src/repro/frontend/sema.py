"""Semantic analysis for scil: name resolution and type checking.

Annotates the AST in place:

* every :class:`~repro.frontend.ast_nodes.Expr` gets a ``type`` string
  (``"int"``, ``"double"``, ``"bool"``, ``"int[]"``, ``"double[]"``),
* ``VarRef.symbol`` points to the declaring :class:`VarSymbol`,
* ``CallExpr.resolved`` points to a :class:`FuncSymbol` or
  :class:`IntrinsicOverload`,
* implicit ``int -> double`` promotions are materialised as explicit
  :class:`~repro.frontend.ast_nodes.CastExpr` nodes so codegen never has to
  reason about coercions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ast_nodes import (
    Assign,
    BinaryExpr,
    Block,
    BoolLiteral,
    Break,
    CallExpr,
    CastExpr,
    Continue,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FuncDef,
    GlobalDecl,
    If,
    IndexExpr,
    IntLiteral,
    Param,
    Program,
    Return,
    Stmt,
    UnaryExpr,
    VarDecl,
    VarRef,
    While,
)
from .errors import SemaError

SCALAR_TYPES = ("int", "double", "bool")
ARITH_OPS = ("+", "-", "*", "/")
INT_ONLY_OPS = ("%", "<<", ">>", "&", "|", "^")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGIC_OPS = ("&&", "||")


class VarSymbol:
    __slots__ = ("name", "type", "is_global", "array_size", "node")

    def __init__(self, name: str, type_: str, is_global: bool, array_size=None, node=None):
        self.name = name
        self.type = type_  # 'int' | 'double' | 'bool' | 'int[]' | 'double[]'
        self.is_global = is_global
        self.array_size = array_size
        self.node = node

    @property
    def is_array(self) -> bool:
        return self.type.endswith("[]")

    @property
    def element_type(self) -> str:
        return self.type[:-2] if self.is_array else self.type


class FuncSymbol:
    __slots__ = ("name", "return_type", "param_types", "node")

    def __init__(self, name: str, return_type: str, param_types: List[str], node=None):
        self.name = name
        self.return_type = return_type
        self.param_types = param_types
        self.node = node


class IntrinsicOverload:
    __slots__ = ("scil_name", "ir_name", "param_types", "return_type")

    def __init__(self, scil_name: str, ir_name: str, param_types: Tuple[str, ...], return_type: str):
        self.scil_name = scil_name
        self.ir_name = ir_name
        self.param_types = list(param_types)
        self.return_type = return_type


def _ov(scil, ir, params, ret) -> IntrinsicOverload:
    return IntrinsicOverload(scil, ir, params, ret)


#: scil-level intrinsics; overloads resolve to typed IR intrinsics.
INTRINSICS: Dict[str, List[IntrinsicOverload]] = {
    "sqrt": [_ov("sqrt", "sqrt", ("double",), "double")],
    "fabs": [_ov("fabs", "fabs", ("double",), "double")],
    "sin": [_ov("sin", "sin", ("double",), "double")],
    "cos": [_ov("cos", "cos", ("double",), "double")],
    "exp": [_ov("exp", "exp", ("double",), "double")],
    "log": [_ov("log", "log", ("double",), "double")],
    "pow": [_ov("pow", "pow", ("double", "double"), "double")],
    "floor": [_ov("floor", "floor", ("double",), "double")],
    "fmin": [_ov("fmin", "fmin", ("double", "double"), "double")],
    "fmax": [_ov("fmax", "fmax", ("double", "double"), "double")],
    "print": [
        _ov("print", "print_i64", ("int",), "void"),
        _ov("print", "print_f64", ("double",), "void"),
    ],
    "mpi_rank": [_ov("mpi_rank", "mpi_rank", (), "int")],
    "mpi_size": [_ov("mpi_size", "mpi_size", (), "int")],
    "mpi_barrier": [_ov("mpi_barrier", "mpi_barrier", (), "void")],
    "mpi_allreduce_sum": [
        _ov("mpi_allreduce_sum", "mpi_allreduce_sum_i64", ("int",), "int"),
        _ov("mpi_allreduce_sum", "mpi_allreduce_sum_f64", ("double",), "double"),
    ],
    "mpi_allreduce_min": [
        _ov("mpi_allreduce_min", "mpi_allreduce_min_f64", ("double",), "double"),
    ],
    "mpi_allreduce_max": [
        _ov("mpi_allreduce_max", "mpi_allreduce_max_i64", ("int",), "int"),
        _ov("mpi_allreduce_max", "mpi_allreduce_max_f64", ("double",), "double"),
    ],
    "mpi_bcast": [
        _ov("mpi_bcast", "mpi_bcast_i64", ("int", "int"), "int"),
        _ov("mpi_bcast", "mpi_bcast_f64", ("double", "int"), "double"),
    ],
    "mpi_allreduce_sum_array": [
        _ov("mpi_allreduce_sum_array", "mpi_allreduce_sum_i64_array", ("int[]", "int"), "void"),
        _ov("mpi_allreduce_sum_array", "mpi_allreduce_sum_f64_array", ("double[]", "int"), "void"),
    ],
    "mpi_sendrecv": [
        _ov("mpi_sendrecv", "mpi_sendrecv_f64", ("double[]", "double[]", "int", "int"), "void"),
    ],
}


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, VarSymbol] = {}

    def declare(self, symbol: VarSymbol, location) -> None:
        if symbol.name in self.symbols:
            raise SemaError(f"redeclaration of {symbol.name!r}", location)
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[VarSymbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            sym = scope.symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Checks and annotates one :class:`Program`."""

    def __init__(self, program: Program):
        self.program = program
        self.globals = Scope()
        self.functions: Dict[str, FuncSymbol] = {}
        self._current_fn: Optional[FuncDef] = None
        self._loop_depth = 0

    # -- entry point -------------------------------------------------------------

    def analyze(self) -> Program:
        for g in self.program.globals:
            self._declare_global(g)
        for f in self.program.functions:
            self._declare_function(f)
        for f in self.program.functions:
            self._check_function(f)
        return self.program

    # -- declarations ---------------------------------------------------------------

    def _declare_global(self, g: GlobalDecl) -> None:
        type_ = g.type_name + ("[]" if g.array_size is not None else "")
        if g.type_name == "bool":
            raise SemaError("bool globals are not supported", g.location)
        if g.array_size is not None and g.array_size <= 0:
            raise SemaError("array size must be positive", g.location)
        if g.initializer is not None and g.array_size is not None:
            if isinstance(g.initializer, list) and len(g.initializer) > g.array_size:
                raise SemaError("too many initializer elements", g.location)
        sym = VarSymbol(g.name, type_, True, g.array_size, g)
        self.globals.declare(sym, g.location)

    def _declare_function(self, f: FuncDef) -> None:
        if f.name in self.functions:
            raise SemaError(f"redefinition of function {f.name!r}", f.location)
        if f.name in INTRINSICS:
            raise SemaError(f"{f.name!r} shadows a builtin", f.location)
        param_types = []
        for p in f.params:
            if p.type_name == "bool" and p.is_array:
                raise SemaError("bool arrays are not supported", p.location)
            param_types.append(p.type_name + ("[]" if p.is_array else ""))
        self.functions[f.name] = FuncSymbol(f.name, f.return_type, param_types, f)

    # -- function bodies --------------------------------------------------------------

    def _check_function(self, f: FuncDef) -> None:
        self._current_fn = f
        scope = Scope(self.globals)
        for p in f.params:
            type_ = p.type_name + ("[]" if p.is_array else "")
            p.symbol = VarSymbol(p.name, type_, False, None, p)
            scope.declare(p.symbol, p.location)
        self._check_block(f.body, scope)
        self._current_fn = None

    def _check_block(self, block: Block, parent_scope: Scope) -> None:
        scope = Scope(parent_scope)
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: Stmt, scope: Scope) -> None:
        if isinstance(stmt, Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, VarDecl):
            self._check_var_decl(stmt, scope)
        elif isinstance(stmt, Assign):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, If):
            self._check_condition(stmt.condition, scope)
            self._check_stmt(stmt.then_body, Scope(scope))
            if stmt.else_body is not None:
                self._check_stmt(stmt.else_body, Scope(scope))
        elif isinstance(stmt, While):
            self._check_condition(stmt.condition, scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(scope))
            self._loop_depth -= 1
        elif isinstance(stmt, For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.condition is not None:
                self._check_condition(stmt.condition, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, Scope(inner))
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                kind = "break" if isinstance(stmt, Break) else "continue"
                raise SemaError(f"{kind} outside of a loop", stmt.location)
        elif isinstance(stmt, ExprStmt):
            type_ = self._check_expr(stmt.expr, scope)
            if not isinstance(stmt.expr, CallExpr):
                raise SemaError("expression statement must be a call", stmt.location)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemaError(f"unknown statement {stmt!r}", stmt.location)

    def _check_var_decl(self, decl: VarDecl, scope: Scope) -> None:
        if decl.array_size is not None:
            if decl.array_size <= 0:
                raise SemaError("array size must be positive", decl.location)
            if decl.type_name == "bool":
                raise SemaError("bool arrays are not supported", decl.location)
            type_ = decl.type_name + "[]"
        else:
            type_ = decl.type_name
        if decl.init is not None:
            init_type = self._check_expr(decl.init, scope)
            decl.init = self._coerce(decl.init, init_type, type_, decl.location)
        decl.symbol = VarSymbol(decl.name, type_, False, decl.array_size, decl)
        scope.declare(decl.symbol, decl.location)

    def _check_assign(self, stmt: Assign, scope: Scope) -> None:
        target_type = self._check_expr(stmt.target, scope)
        if target_type.endswith("[]"):
            raise SemaError("cannot assign to an array", stmt.location)
        value_type = self._check_expr(stmt.value, scope)
        if stmt.op:
            # `x op= v` behaves like `x = x op v`; validate the operator.
            if stmt.op in INT_ONLY_OPS and (target_type != "int" or value_type != "int"):
                raise SemaError(f"operator {stmt.op}= requires int operands", stmt.location)
            if target_type == "bool":
                raise SemaError("compound assignment on bool", stmt.location)
        stmt.value = self._coerce(stmt.value, value_type, target_type, stmt.location)

    def _check_return(self, stmt: Return, scope: Scope) -> None:
        assert self._current_fn is not None
        expected = self._current_fn.return_type
        if expected == "void":
            if stmt.value is not None:
                raise SemaError("void function returns a value", stmt.location)
            return
        if stmt.value is None:
            raise SemaError(f"non-void function must return a {expected}", stmt.location)
        actual = self._check_expr(stmt.value, scope)
        stmt.value = self._coerce(stmt.value, actual, expected, stmt.location)

    def _check_condition(self, expr: Expr, scope: Scope) -> None:
        type_ = self._check_expr(expr, scope)
        if type_ != "bool":
            raise SemaError(f"condition must be bool, got {type_}", expr.location)

    # -- expressions ----------------------------------------------------------------------

    def _check_expr(self, expr: Expr, scope: Scope) -> str:
        type_ = self._infer(expr, scope)
        expr.type = type_
        return type_

    def _infer(self, expr: Expr, scope: Scope) -> str:
        if isinstance(expr, IntLiteral):
            return "int"
        if isinstance(expr, FloatLiteral):
            return "double"
        if isinstance(expr, BoolLiteral):
            return "bool"
        if isinstance(expr, VarRef):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise SemaError(f"undeclared identifier {expr.name!r}", expr.location)
            expr.symbol = sym
            return sym.type
        if isinstance(expr, IndexExpr):
            base_type = self._check_expr(expr.base, scope)
            if not base_type.endswith("[]"):
                raise SemaError(f"indexing a non-array ({base_type})", expr.location)
            index_type = self._check_expr(expr.index, scope)
            if index_type != "int":
                raise SemaError(f"array index must be int, got {index_type}", expr.location)
            return base_type[:-2]
        if isinstance(expr, UnaryExpr):
            operand_type = self._check_expr(expr.operand, scope)
            if expr.op == "-":
                if operand_type not in ("int", "double"):
                    raise SemaError(f"unary - on {operand_type}", expr.location)
                return operand_type
            if operand_type != "bool":
                raise SemaError(f"! requires bool, got {operand_type}", expr.location)
            return "bool"
        if isinstance(expr, CastExpr):
            operand_type = self._check_expr(expr.operand, scope)
            if operand_type.endswith("[]"):
                raise SemaError("cannot cast an array", expr.location)
            if expr.target == "bool" and operand_type != "bool":
                raise SemaError("cannot cast to bool", expr.location)
            return expr.target
        if isinstance(expr, BinaryExpr):
            return self._infer_binary(expr, scope)
        if isinstance(expr, CallExpr):
            return self._infer_call(expr, scope)
        raise SemaError(f"unknown expression {expr!r}", expr.location)

    def _infer_binary(self, expr: BinaryExpr, scope: Scope) -> str:
        lt = self._check_expr(expr.lhs, scope)
        rt = self._check_expr(expr.rhs, scope)
        op = expr.op
        if op in LOGIC_OPS:
            if lt != "bool" or rt != "bool":
                raise SemaError(f"{op} requires bool operands", expr.location)
            return "bool"
        if lt.endswith("[]") or rt.endswith("[]"):
            raise SemaError(f"operator {op} on array values", expr.location)
        if op in INT_ONLY_OPS:
            if lt != "int" or rt != "int":
                raise SemaError(f"operator {op} requires int operands", expr.location)
            return "int"
        if op in CMP_OPS:
            if lt == "bool" and rt == "bool":
                if op in ("==", "!="):
                    return "bool"
                raise SemaError(f"ordering comparison on bool", expr.location)
            common = self._numeric_common(lt, rt, expr.location, op)
            expr.lhs = self._coerce(expr.lhs, lt, common, expr.location)
            expr.rhs = self._coerce(expr.rhs, rt, common, expr.location)
            return "bool"
        if op in ARITH_OPS:
            common = self._numeric_common(lt, rt, expr.location, op)
            expr.lhs = self._coerce(expr.lhs, lt, common, expr.location)
            expr.rhs = self._coerce(expr.rhs, rt, common, expr.location)
            return common
        raise SemaError(f"unknown operator {op}", expr.location)

    def _numeric_common(self, lt: str, rt: str, location, op: str) -> str:
        for t in (lt, rt):
            if t not in ("int", "double"):
                raise SemaError(f"operator {op} on non-numeric {t}", location)
        return "double" if "double" in (lt, rt) else "int"

    def _infer_call(self, expr: CallExpr, scope: Scope) -> str:
        arg_types = [self._check_expr(a, scope) for a in expr.args]
        overloads = INTRINSICS.get(expr.name)
        if overloads is not None:
            chosen = self._resolve_overload(overloads, arg_types)
            if chosen is None:
                raise SemaError(
                    f"no matching overload for {expr.name}({', '.join(arg_types)})",
                    expr.location,
                )
            for i, (arg, want) in enumerate(zip(expr.args, chosen.param_types)):
                expr.args[i] = self._coerce(arg, arg_types[i], want, expr.location)
            expr.resolved = chosen
            return chosen.return_type
        fn = self.functions.get(expr.name)
        if fn is None:
            raise SemaError(f"call to undeclared function {expr.name!r}", expr.location)
        if len(arg_types) != len(fn.param_types):
            raise SemaError(
                f"{expr.name} expects {len(fn.param_types)} arguments, got {len(arg_types)}",
                expr.location,
            )
        for i, (arg, want) in enumerate(zip(expr.args, fn.param_types)):
            expr.args[i] = self._coerce(arg, arg_types[i], want, expr.location)
        expr.resolved = fn
        return fn.return_type

    def _resolve_overload(
        self, overloads: List[IntrinsicOverload], arg_types: List[str]
    ) -> Optional[IntrinsicOverload]:
        # Exact match first, then int->double promotion.
        for ov in overloads:
            if ov.param_types == arg_types:
                return ov
        for ov in overloads:
            if len(ov.param_types) != len(arg_types):
                continue
            ok = True
            for want, have in zip(ov.param_types, arg_types):
                if want == have:
                    continue
                if want == "double" and have == "int":
                    continue
                ok = False
                break
            if ok:
                return ov
        return None

    # -- coercions -------------------------------------------------------------------------

    def _coerce(self, expr: Expr, have: str, want: str, location) -> Expr:
        if have == want:
            return expr
        if want == "double" and have == "int":
            cast = CastExpr("double", expr, location)
            cast.type = "double"
            return cast
        raise SemaError(f"cannot convert {have} to {want}", location)


def analyze(program: Program) -> Program:
    """Run semantic analysis, annotating the AST in place."""
    return SemanticAnalyzer(program).analyze()
