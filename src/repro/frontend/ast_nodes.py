"""AST node definitions for scil.

Every node carries a :class:`~repro.frontend.errors.SourceLocation`; the
semantic analyzer annotates expression nodes with a resolved ``type`` (a
string: ``"int" | "double" | "bool"`` plus the array forms) before codegen.
"""

from __future__ import annotations

from typing import List, Optional

from .errors import SourceLocation


class Node:
    """Base class of all AST nodes."""

    __slots__ = ("location",)

    def __init__(self, location: SourceLocation):
        self.location = location


# -- expressions ----------------------------------------------------------------


class Expr(Node):
    __slots__ = ("type",)

    def __init__(self, location: SourceLocation):
        super().__init__(location)
        self.type: Optional[str] = None  # filled by sema


class IntLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int, location: SourceLocation):
        super().__init__(location)
        self.value = value


class FloatLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, location: SourceLocation):
        super().__init__(location)
        self.value = value


class BoolLiteral(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool, location: SourceLocation):
        super().__init__(location)
        self.value = value


class VarRef(Expr):
    __slots__ = ("name", "symbol")

    def __init__(self, name: str, location: SourceLocation):
        super().__init__(location)
        self.name = name
        self.symbol = None  # filled by sema


class IndexExpr(Expr):
    """``base[index]`` where base names an array variable or array param."""

    __slots__ = ("base", "index")

    def __init__(self, base: "VarRef", index: Expr, location: SourceLocation):
        super().__init__(location)
        self.base = base
        self.index = index


class UnaryExpr(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, location: SourceLocation):
        super().__init__(location)
        self.op = op  # '-' | '!'
        self.operand = operand


class BinaryExpr(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, location: SourceLocation):
        super().__init__(location)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class CastExpr(Expr):
    """Explicit ``(int)e`` or ``(double)e``."""

    __slots__ = ("target", "operand")

    def __init__(self, target: str, operand: Expr, location: SourceLocation):
        super().__init__(location)
        self.target = target
        self.operand = operand


class CallExpr(Expr):
    __slots__ = ("name", "args", "resolved")

    def __init__(self, name: str, args: List[Expr], location: SourceLocation):
        super().__init__(location)
        self.name = name
        self.args = args
        self.resolved = None  # filled by sema: FunctionSymbol or intrinsic


# -- statements -------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: List[Stmt], location: SourceLocation):
        super().__init__(location)
        self.statements = statements


class VarDecl(Stmt):
    """``type name [= init];`` or ``type name[N];``"""

    __slots__ = ("type_name", "name", "array_size", "init", "symbol")

    def __init__(
        self,
        type_name: str,
        name: str,
        array_size: Optional[int],
        init: Optional[Expr],
        location: SourceLocation,
    ):
        super().__init__(location)
        self.type_name = type_name
        self.name = name
        self.array_size = array_size
        self.init = init
        self.symbol = None


class Assign(Stmt):
    """``lvalue op= expr;`` with op in {'', '+', '-', '*', '/', '%'}."""

    __slots__ = ("target", "op", "value")

    def __init__(self, target: Expr, op: str, value: Expr, location: SourceLocation):
        super().__init__(location)
        self.target = target  # VarRef or IndexExpr
        self.op = op
        self.value = value


class If(Stmt):
    __slots__ = ("condition", "then_body", "else_body")

    def __init__(
        self,
        condition: Expr,
        then_body: Stmt,
        else_body: Optional[Stmt],
        location: SourceLocation,
    ):
        super().__init__(location)
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    __slots__ = ("condition", "body")

    def __init__(self, condition: Expr, body: Stmt, location: SourceLocation):
        super().__init__(location)
        self.condition = condition
        self.body = body


class For(Stmt):
    __slots__ = ("init", "condition", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        condition: Optional[Expr],
        step: Optional[Stmt],
        body: Stmt,
        location: SourceLocation,
    ):
        super().__init__(location)
        self.init = init
        self.condition = condition
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], location: SourceLocation):
        super().__init__(location)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class ExprStmt(Stmt):
    """A bare call used for its effects."""

    __slots__ = ("expr",)

    def __init__(self, expr: Expr, location: SourceLocation):
        super().__init__(location)
        self.expr = expr


# -- top level ------------------------------------------------------------------------


class Param(Node):
    __slots__ = ("type_name", "name", "is_array", "symbol")

    def __init__(self, type_name: str, name: str, is_array: bool, location: SourceLocation):
        super().__init__(location)
        self.type_name = type_name
        self.name = name
        self.is_array = is_array
        self.symbol = None


class FuncDef(Node):
    __slots__ = ("return_type", "name", "params", "body")

    def __init__(
        self,
        return_type: str,
        name: str,
        params: List[Param],
        body: Block,
        location: SourceLocation,
    ):
        super().__init__(location)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body


class GlobalDecl(Node):
    __slots__ = ("type_name", "name", "array_size", "initializer", "is_output")

    def __init__(
        self,
        type_name: str,
        name: str,
        array_size: Optional[int],
        initializer,
        is_output: bool,
        location: SourceLocation,
    ):
        super().__init__(location)
        self.type_name = type_name
        self.name = name
        self.array_size = array_size
        self.initializer = initializer  # None | number | list of numbers
        self.is_output = is_output


class Program(Node):
    __slots__ = ("globals", "functions")

    def __init__(self, globals_: List[GlobalDecl], functions: List[FuncDef], location):
        super().__init__(location)
        self.globals = globals_
        self.functions = functions
