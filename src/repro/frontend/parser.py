"""Recursive-descent parser for scil.

Grammar (EBNF; see the package docstring for the informal language tour)::

    program     := (global_decl | func_def)*
    global_decl := ["output"] type IDENT ["[" INT "]"] ["=" ginit] ";"
    ginit       := number | "-" number | "{" number ("," number)* "}"
    func_def    := type IDENT "(" [params] ")" block
    params      := param ("," param)*
    param       := type IDENT ["[" "]"]
    block       := "{" stmt* "}"
    stmt        := var_decl | simple ";" | if | while | for | return
                 | "break" ";" | "continue" ";" | block
    var_decl    := type IDENT ("[" INT "]" | ["=" expr]) ";"
    simple      := assign | expr
    assign      := lvalue ("=" | "+=" | "-=" | "*=" | "/=" | "%=") expr
    if          := "if" "(" expr ")" stmt ["else" stmt]
    while       := "while" "(" expr ")" stmt
    for         := "for" "(" [var_decl_nosemi | simple] ";" [expr] ";" [simple] ")" stmt
    return      := "return" [expr] ";"

Expression precedence, low to high::

    ||  &&  |  ^  &  == !=  < <= > >=  << >>  + -  * / %  unary- !  postfix
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    Assign,
    BinaryExpr,
    Block,
    BoolLiteral,
    Break,
    CallExpr,
    CastExpr,
    Continue,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FuncDef,
    GlobalDecl,
    If,
    IndexExpr,
    IntLiteral,
    Param,
    Program,
    Return,
    Stmt,
    UnaryExpr,
    VarDecl,
    VarRef,
    While,
)
from .errors import ParseError, SourceLocation
from .lexer import Token, tokenize

TYPE_KEYWORDS = ("int", "double", "bool", "void")

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise ParseError(
                f"expected {text!r}, found {self.current.text!r}",
                self.current.location,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise ParseError(
                f"expected identifier, found {self.current.text!r}",
                self.current.location,
            )
        return self.advance()

    def at_type(self) -> bool:
        return self.current.kind == "keyword" and self.current.text in TYPE_KEYWORDS

    def expect_type(self) -> str:
        if not self.at_type():
            raise ParseError(
                f"expected a type, found {self.current.text!r}",
                self.current.location,
            )
        return self.advance().text

    # -- top level -------------------------------------------------------------------

    def parse_program(self) -> Program:
        loc = self.current.location
        globals_: List[GlobalDecl] = []
        functions: List[FuncDef] = []
        while self.current.kind != "eof":
            if self.current.is_keyword("output"):
                globals_.append(self.parse_global())
                continue
            if not self.at_type():
                raise ParseError(
                    f"expected a declaration, found {self.current.text!r}",
                    self.current.location,
                )
            # type IDENT '(' -> function; otherwise global variable.
            if self.peek(2).is_op("("):
                functions.append(self.parse_function())
            else:
                globals_.append(self.parse_global())
        return Program(globals_, functions, loc)

    def parse_global(self) -> GlobalDecl:
        loc = self.current.location
        is_output = False
        if self.current.is_keyword("output"):
            is_output = True
            self.advance()
        type_name = self.expect_type()
        if type_name == "void":
            raise ParseError("globals cannot be void", loc)
        name = self.expect_ident().text
        array_size: Optional[int] = None
        if self.current.is_op("["):
            self.advance()
            size_tok = self.advance()
            if size_tok.kind != "int":
                raise ParseError("array size must be an integer literal", size_tok.location)
            array_size = size_tok.value
            self.expect_op("]")
        initializer = None
        if self.current.is_op("="):
            self.advance()
            initializer = self.parse_global_init(array_size is not None)
        self.expect_op(";")
        return GlobalDecl(type_name, name, array_size, initializer, is_output, loc)

    def parse_global_init(self, is_array: bool):
        if self.current.is_op("{"):
            if not is_array:
                raise ParseError("brace initializer on a scalar global", self.current.location)
            self.advance()
            values = [self.parse_const_number()]
            while self.current.is_op(","):
                self.advance()
                values.append(self.parse_const_number())
            self.expect_op("}")
            return values
        return self.parse_const_number()

    def parse_const_number(self):
        negative = False
        if self.current.is_op("-"):
            negative = True
            self.advance()
        tok = self.advance()
        if tok.kind not in ("int", "float"):
            raise ParseError("expected a numeric constant", tok.location)
        return -tok.value if negative else tok.value

    def parse_function(self) -> FuncDef:
        loc = self.current.location
        return_type = self.expect_type()
        name = self.expect_ident().text
        self.expect_op("(")
        params: List[Param] = []
        if not self.current.is_op(")"):
            params.append(self.parse_param())
            while self.current.is_op(","):
                self.advance()
                params.append(self.parse_param())
        self.expect_op(")")
        body = self.parse_block()
        return FuncDef(return_type, name, params, body, loc)

    def parse_param(self) -> Param:
        loc = self.current.location
        type_name = self.expect_type()
        if type_name == "void":
            raise ParseError("parameters cannot be void", loc)
        name = self.expect_ident().text
        is_array = False
        if self.current.is_op("["):
            self.advance()
            self.expect_op("]")
            is_array = True
        return Param(type_name, name, is_array, loc)

    # -- statements --------------------------------------------------------------------

    def parse_block(self) -> Block:
        loc = self.current.location
        self.expect_op("{")
        statements: List[Stmt] = []
        while not self.current.is_op("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", loc)
            statements.append(self.parse_statement())
        self.expect_op("}")
        return Block(statements, loc)

    def parse_statement(self) -> Stmt:
        tok = self.current
        if tok.is_op("{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_var_decl()
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("return"):
            self.advance()
            value = None
            if not self.current.is_op(";"):
                value = self.parse_expression()
            self.expect_op(";")
            return Return(value, tok.location)
        if tok.is_keyword("break"):
            self.advance()
            self.expect_op(";")
            return Break(tok.location)
        if tok.is_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return Continue(tok.location)
        stmt = self.parse_simple()
        self.expect_op(";")
        return stmt

    def parse_var_decl(self) -> VarDecl:
        loc = self.current.location
        type_name = self.expect_type()
        if type_name == "void":
            raise ParseError("variables cannot be void", loc)
        name = self.expect_ident().text
        array_size: Optional[int] = None
        init: Optional[Expr] = None
        if self.current.is_op("["):
            self.advance()
            size_tok = self.advance()
            if size_tok.kind != "int":
                raise ParseError("array size must be an integer literal", size_tok.location)
            array_size = size_tok.value
            self.expect_op("]")
        elif self.current.is_op("="):
            self.advance()
            init = self.parse_expression()
        self.expect_op(";")
        return VarDecl(type_name, name, array_size, init, loc)

    def parse_simple(self) -> Stmt:
        """An assignment or a bare expression (call) — no semicolon."""
        loc = self.current.location
        expr = self.parse_expression()
        if self.current.kind == "op" and self.current.text in ASSIGN_OPS:
            op_tok = self.advance()
            if not isinstance(expr, (VarRef, IndexExpr)):
                raise ParseError("left side of assignment is not assignable", loc)
            value = self.parse_expression()
            return Assign(expr, ASSIGN_OPS[op_tok.text], value, loc)
        return ExprStmt(expr, loc)

    def parse_if(self) -> If:
        loc = self.advance().location
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        then_body = self.parse_statement()
        else_body = None
        if self.current.is_keyword("else"):
            self.advance()
            else_body = self.parse_statement()
        return If(condition, then_body, else_body, loc)

    def parse_while(self) -> While:
        loc = self.advance().location
        self.expect_op("(")
        condition = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return While(condition, body, loc)

    def parse_for(self) -> For:
        loc = self.advance().location
        self.expect_op("(")
        init: Optional[Stmt] = None
        if not self.current.is_op(";"):
            if self.at_type():
                # Variable declaration consumes its own semicolon.
                init = self.parse_var_decl()
            else:
                init = self.parse_simple()
                self.expect_op(";")
        else:
            self.advance()
        condition: Optional[Expr] = None
        if not self.current.is_op(";"):
            condition = self.parse_expression()
        self.expect_op(";")
        step: Optional[Stmt] = None
        if not self.current.is_op(")"):
            step = self.parse_simple()
        self.expect_op(")")
        body = self.parse_statement()
        return For(init, condition, step, body, loc)

    # -- expressions ------------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.current.kind == "op" and self.current.text in ops:
            op_tok = self.advance()
            rhs = self._parse_binary(level + 1)
            lhs = BinaryExpr(op_tok.text, lhs, rhs, op_tok.location)
        return lhs

    def parse_unary(self) -> Expr:
        tok = self.current
        if tok.is_op("-"):
            self.advance()
            return UnaryExpr("-", self.parse_unary(), tok.location)
        if tok.is_op("!"):
            self.advance()
            return UnaryExpr("!", self.parse_unary(), tok.location)
        # Cast: '(' type ')' unary
        if (
            tok.is_op("(")
            and self.peek().kind == "keyword"
            and self.peek().text in ("int", "double", "bool")
            and self.peek(2).is_op(")")
        ):
            self.advance()
            target = self.advance().text
            self.expect_op(")")
            return CastExpr(target, self.parse_unary(), tok.location)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        tok = self.current
        if tok.is_op("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if tok.kind == "int":
            self.advance()
            return IntLiteral(tok.value, tok.location)
        if tok.kind == "float":
            self.advance()
            return FloatLiteral(tok.value, tok.location)
        if tok.is_keyword("true"):
            self.advance()
            return BoolLiteral(True, tok.location)
        if tok.is_keyword("false"):
            self.advance()
            return BoolLiteral(False, tok.location)
        if tok.kind == "ident":
            self.advance()
            if self.current.is_op("("):
                self.advance()
                args: List[Expr] = []
                if not self.current.is_op(")"):
                    args.append(self.parse_expression())
                    while self.current.is_op(","):
                        self.advance()
                        args.append(self.parse_expression())
                self.expect_op(")")
                return CallExpr(tok.text, args, tok.location)
            ref = VarRef(tok.text, tok.location)
            if self.current.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                return IndexExpr(ref, index, tok.location)
            return ref
        raise ParseError(f"unexpected token {tok.text!r}", tok.location)


def parse(source: str) -> Program:
    """Parse scil source text into an AST."""
    return Parser(tokenize(source)).parse_program()
