"""Lexer for scil, the small C-like language the workloads are written in.

Token kinds: keywords, identifiers, integer and floating literals, operators,
and punctuation.  ``//`` line comments and ``/* */`` block comments are
skipped.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from .errors import LexError, SourceLocation

KEYWORDS = frozenset(
    {
        "int",
        "double",
        "bool",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "output",
    }
)

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class Token:
    __slots__ = ("kind", "text", "value", "location")

    def __init__(self, kind: str, text: str, location: SourceLocation, value=None):
        #: 'keyword' | 'ident' | 'int' | 'float' | 'op' | 'eof'
        self.kind = kind
        self.text = text
        self.value = value
        self.location = location

    def is_op(self, text: str) -> bool:
        return self.kind == "op" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, @{self.location})"


class Lexer:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            c = self._peek()
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    def _lex_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == ".":
            is_float = True
            self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if is_float:
            return Token("float", text, loc, float(text))
        return Token("int", text, loc, int(text))

    def _lex_word(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            return Token("keyword", text, loc)
        return Token("ident", text, loc)

    def _lex_operator(self) -> Token:
        loc = self._loc()
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, loc)
        raise LexError(f"unexpected character {self._peek()!r}", loc)

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token("eof", "", self._loc())
                return
            c = self._peek()
            if c.isdigit() or (c == "." and self._peek(1).isdigit()):
                yield self._lex_number()
            elif c.isalpha() or c == "_":
                yield self._lex_word()
            else:
                yield self._lex_operator()


def tokenize(source: str) -> List[Token]:
    """Tokenize scil source, including the trailing EOF token."""
    return list(Lexer(source).tokens())
