"""IR code generation for scil.

Lowers a sema-annotated AST to repro IR the way Clang lowers C at -O0:
every local scalar becomes an ``alloca`` with loads/stores at each use, all
allocas are grouped at the top of the entry block, and control flow becomes
explicit basic blocks.  The mem2reg pass then rebuilds SSA form, which is
required by the IPAS fault model (registers are unprotected, memory is
ECC-protected — see :mod:`repro.passes.mem2reg`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.builder import IRBuilder
from ..ir.function import Function
from ..ir.instructions import AllocaInst
from ..ir.module import Module
from ..ir.types import ArrayType, F64, I1, I64, PointerType, Type, VOID
from ..ir.values import Value, const_bool, const_float, const_int
from .ast_nodes import (
    Assign,
    BinaryExpr,
    Block,
    BoolLiteral,
    Break,
    CallExpr,
    CastExpr,
    Continue,
    Expr,
    ExprStmt,
    FloatLiteral,
    For,
    FuncDef,
    If,
    IndexExpr,
    IntLiteral,
    Program,
    Return,
    Stmt,
    UnaryExpr,
    VarDecl,
    VarRef,
    While,
)
from .errors import SemaError
from .sema import FuncSymbol, IntrinsicOverload, VarSymbol

_SCALAR_IR = {"int": I64, "double": F64, "bool": I1}

_ICMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
_FCMP = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt", ">=": "oge"}


def ir_type(scil_type: str) -> Type:
    if scil_type.endswith("[]"):
        return PointerType(_SCALAR_IR[scil_type[:-2]])
    if scil_type == "void":
        return VOID
    return _SCALAR_IR[scil_type]


class CodeGenerator:
    """Lowers one annotated Program to a fresh IR Module."""

    def __init__(self, program: Program, module_name: str = "module"):
        self.program = program
        self.module = Module(module_name)
        self.ir_functions: Dict[str, Function] = {}

    def generate(self) -> Module:
        for g in self.program.globals:
            if g.array_size is not None:
                vtype: Type = ArrayType(_SCALAR_IR[g.type_name], g.array_size)
            else:
                vtype = _SCALAR_IR[g.type_name]
            self.module.add_global(g.name, vtype, g.initializer, g.is_output)
        for f in self.program.functions:
            params = []
            names = []
            for p in f.params:
                params.append(ir_type(p.type_name + ("[]" if p.is_array else "")))
                names.append(p.name)
            self.ir_functions[f.name] = self.module.add_function(
                f.name, ir_type(f.return_type), params, names
            )
        for f in self.program.functions:
            _FunctionCodegen(self, f).generate()
        return self.module


class _LoopTargets:
    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block: BasicBlock, continue_block: BasicBlock):
        self.break_block = break_block
        self.continue_block = continue_block


class _FunctionCodegen:
    def __init__(self, parent: CodeGenerator, fdef: FuncDef):
        self.cg = parent
        self.fdef = fdef
        self.fn = parent.ir_functions[fdef.name]
        self.builder = IRBuilder()
        self.entry_block: Optional[BasicBlock] = None
        self._alloca_count = 0
        #: id(VarSymbol) -> address Value (alloca/global) or direct pointer
        self.slots: Dict[int, Value] = {}
        #: symbols holding their value directly (array params)
        self.direct: Dict[int, Value] = {}
        self.loops: List[_LoopTargets] = []
        self._block_counter = 0

    # -- plumbing -------------------------------------------------------------------

    def new_block(self, hint: str) -> BasicBlock:
        self._block_counter += 1
        return self.fn.add_block(f"{hint}{self._block_counter}")

    def make_alloca(self, allocated_type: Type, name: str) -> Value:
        """Insert an alloca at the top of the entry block (Clang style), so
        loops never re-allocate and mem2reg sees a canonical shape."""
        assert self.entry_block is not None
        inst = AllocaInst(allocated_type, name)
        inst.parent = self.entry_block
        self.entry_block.instructions.insert(self._alloca_count, inst)
        self._alloca_count += 1
        return inst

    # -- function body -----------------------------------------------------------------

    def generate(self) -> None:
        self.entry_block = self.fn.add_block("entry")
        self.builder.position_at_end(self.entry_block)
        for arg, p in zip(self.fn.args, self.fdef.params):
            assert p.symbol is not None
            if p.is_array:
                self.direct[id(p.symbol)] = arg
            else:
                slot = self.make_alloca(arg.type, p.name)
                self.builder.store(arg, slot)
                self.slots[id(p.symbol)] = slot
        self.gen_block(self.fdef.body)
        current = self.builder.block
        assert current is not None
        if not current.is_terminated():
            if self.fn.return_type.is_void():
                self.builder.ret()
            else:
                # Falling off the end of a non-void function is a runtime
                # trap, like UB in C compiled with -fsanitize=unreachable.
                self.builder.unreachable()

    # -- statements -------------------------------------------------------------------------

    def gen_block(self, block: Block) -> None:
        for stmt in block.statements:
            self.gen_stmt(stmt)

    def ensure_open_block(self) -> None:
        """After a terminator (return/break), park codegen in a dead block."""
        current = self.builder.block
        if current is not None and current.is_terminated():
            self.builder.position_at_end(self.new_block("dead"))

    def gen_stmt(self, stmt: Stmt) -> None:
        self.ensure_open_block()
        if isinstance(stmt, Block):
            self.gen_block(stmt)
        elif isinstance(stmt, VarDecl):
            self.gen_var_decl(stmt)
        elif isinstance(stmt, Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, If):
            self.gen_if(stmt)
        elif isinstance(stmt, While):
            self.gen_while(stmt)
        elif isinstance(stmt, For):
            self.gen_for(stmt)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.builder.ret(self.gen_expr(stmt.value))
            else:
                self.builder.ret()
        elif isinstance(stmt, Break):
            self.builder.br(self.loops[-1].break_block)
        elif isinstance(stmt, Continue):
            self.builder.br(self.loops[-1].continue_block)
        elif isinstance(stmt, ExprStmt):
            self.gen_expr(stmt.expr, discard=True)
        else:  # pragma: no cover
            raise SemaError(f"codegen: unknown statement {stmt!r}", stmt.location)

    def gen_var_decl(self, decl: VarDecl) -> None:
        sym = decl.symbol
        assert sym is not None
        if decl.array_size is not None:
            elem = _SCALAR_IR[decl.type_name]
            slot = self.make_alloca(ArrayType(elem, decl.array_size), decl.name)
            self.slots[id(sym)] = slot
            return
        slot = self.make_alloca(_SCALAR_IR[decl.type_name], decl.name)
        self.slots[id(sym)] = slot
        if decl.init is not None:
            self.builder.store(self.gen_expr(decl.init), slot)

    def gen_assign(self, stmt: Assign) -> None:
        address = self.gen_address(stmt.target)
        value = self.gen_expr(stmt.value)
        if stmt.op:
            old = self.builder.load(address)
            value = self.gen_arith(stmt.op, old, value, stmt.target.type)
        self.builder.store(value, address)

    def gen_if(self, stmt: If) -> None:
        cond = self.gen_expr(stmt.condition)
        then_block = self.new_block("if.then")
        merge_block = self.new_block("if.end")
        else_block = self.new_block("if.else") if stmt.else_body is not None else merge_block
        self.builder.cond_br(cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        self.gen_stmt(stmt.then_body)
        if not self.builder.block.is_terminated():
            self.builder.br(merge_block)
        if stmt.else_body is not None:
            self.builder.position_at_end(else_block)
            self.gen_stmt(stmt.else_body)
            if not self.builder.block.is_terminated():
                self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)

    def gen_while(self, stmt: While) -> None:
        cond_block = self.new_block("while.cond")
        body_block = self.new_block("while.body")
        exit_block = self.new_block("while.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        cond = self.gen_expr(stmt.condition)
        self.builder.cond_br(cond, body_block, exit_block)
        self.builder.position_at_end(body_block)
        self.loops.append(_LoopTargets(exit_block, cond_block))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        if not self.builder.block.is_terminated():
            self.builder.br(cond_block)
        self.builder.position_at_end(exit_block)

    def gen_for(self, stmt: For) -> None:
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        cond_block = self.new_block("for.cond")
        body_block = self.new_block("for.body")
        step_block = self.new_block("for.step")
        exit_block = self.new_block("for.end")
        self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        if stmt.condition is not None:
            cond = self.gen_expr(stmt.condition)
            self.builder.cond_br(cond, body_block, exit_block)
        else:
            self.builder.br(body_block)
        self.builder.position_at_end(body_block)
        self.loops.append(_LoopTargets(exit_block, step_block))
        self.gen_stmt(stmt.body)
        self.loops.pop()
        if not self.builder.block.is_terminated():
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.builder.br(cond_block)
        self.builder.position_at_end(exit_block)

    # -- addresses ----------------------------------------------------------------------------

    def gen_address(self, target: Expr) -> Value:
        if isinstance(target, VarRef):
            sym = target.symbol
            assert sym is not None
            if sym.is_global:
                return self.cg.module.get_global(sym.name)
            return self.slots[id(sym)]
        if isinstance(target, IndexExpr):
            base = self.gen_array_pointer(target.base)
            index = self.gen_expr(target.index)
            return self.builder.gep(base, index)
        raise SemaError("invalid assignment target", target.location)

    def gen_array_pointer(self, ref: VarRef) -> Value:
        sym = ref.symbol
        assert sym is not None and sym.is_array
        if sym.is_global:
            return self.cg.module.get_global(sym.name)
        direct = self.direct.get(id(sym))
        if direct is not None:
            return direct
        return self.slots[id(sym)]

    # -- expressions ----------------------------------------------------------------------------

    def gen_expr(self, expr: Expr, discard: bool = False) -> Optional[Value]:
        if isinstance(expr, IntLiteral):
            return const_int(expr.value)
        if isinstance(expr, FloatLiteral):
            return const_float(expr.value)
        if isinstance(expr, BoolLiteral):
            return const_bool(expr.value)
        if isinstance(expr, VarRef):
            sym = expr.symbol
            assert sym is not None
            if sym.is_array:
                return self.gen_array_pointer(expr)
            if sym.is_global:
                return self.builder.load(self.cg.module.get_global(sym.name), sym.name)
            return self.builder.load(self.slots[id(sym)], sym.name)
        if isinstance(expr, IndexExpr):
            base = self.gen_array_pointer(expr.base)
            index = self.gen_expr(expr.index)
            return self.builder.load(self.builder.gep(base, index))
        if isinstance(expr, UnaryExpr):
            operand = self.gen_expr(expr.operand)
            if expr.op == "-":
                if expr.type == "double":
                    return self.builder.fsub(const_float(0.0), operand)
                return self.builder.sub(const_int(0), operand)
            return self.builder.xor(operand, const_bool(True))
        if isinstance(expr, CastExpr):
            return self.gen_cast(expr)
        if isinstance(expr, BinaryExpr):
            return self.gen_binary(expr)
        if isinstance(expr, CallExpr):
            return self.gen_call(expr, discard)
        raise SemaError(f"codegen: unknown expression {expr!r}", expr.location)

    def gen_cast(self, expr: CastExpr) -> Value:
        operand = self.gen_expr(expr.operand)
        src = expr.operand.type
        dst = expr.target
        if src == dst:
            return operand
        if src == "int" and dst == "double":
            return self.builder.sitofp(operand)
        if src == "double" and dst == "int":
            return self.builder.fptosi(operand)
        if src == "bool" and dst == "int":
            return self.builder.zext(operand, I64)
        if src == "bool" and dst == "double":
            as_int = self.builder.zext(operand, I64)
            return self.builder.sitofp(as_int)
        raise SemaError(f"codegen: cannot cast {src} to {dst}", expr.location)

    def gen_binary(self, expr: BinaryExpr) -> Value:
        if expr.op in ("&&", "||"):
            return self.gen_short_circuit(expr)
        lhs = self.gen_expr(expr.lhs)
        rhs = self.gen_expr(expr.rhs)
        if expr.type == "bool":  # comparison
            operand_type = expr.lhs.type
            if operand_type == "double":
                return self.builder.fcmp(_FCMP[expr.op], lhs, rhs)
            return self.builder.icmp(_ICMP[expr.op], lhs, rhs)
        return self.gen_arith(expr.op, lhs, rhs, expr.type)

    def gen_arith(self, op: str, lhs: Value, rhs: Value, result_type: str) -> Value:
        if result_type == "double":
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv", "%": "frem"}[op]
            return self.builder.binop(opcode, lhs, rhs)
        opcode = {
            "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr",
        }[op]
        return self.builder.binop(opcode, lhs, rhs)

    def gen_short_circuit(self, expr: BinaryExpr) -> Value:
        lhs = self.gen_expr(expr.lhs)
        lhs_block = self.builder.block
        assert lhs_block is not None
        rhs_block = self.new_block("sc.rhs")
        merge_block = self.new_block("sc.end")
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, merge_block)
            short_value = const_bool(False)
        else:
            self.builder.cond_br(lhs, merge_block, rhs_block)
            short_value = const_bool(True)
        self.builder.position_at_end(rhs_block)
        rhs = self.gen_expr(expr.rhs)
        rhs_end = self.builder.block
        assert rhs_end is not None
        self.builder.br(merge_block)
        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(I1, "sc")
        phi.add_incoming(short_value, lhs_block)
        phi.add_incoming(rhs, rhs_end)
        return phi

    def gen_call(self, expr: CallExpr, discard: bool) -> Optional[Value]:
        args = [self.gen_expr(a) for a in expr.args]
        resolved = expr.resolved
        if isinstance(resolved, IntrinsicOverload):
            return self.builder.call_intrinsic(resolved.ir_name, args)
        assert isinstance(resolved, FuncSymbol)
        callee = self.cg.ir_functions[resolved.name]
        return self.builder.call(callee, args)


def generate(program: Program, module_name: str = "module") -> Module:
    """Lower an analyzed Program to IR (unoptimized, unverified)."""
    return CodeGenerator(program, module_name).generate()
