"""Command-line interface: ``python -m repro <command>``.

Commands mirror how a user would adopt the library:

* ``list``                     — the built-in workloads and their inputs;
* ``compile FILE``             — compile a scil file and print the IR;
* ``run WORKLOAD``             — one golden run, outputs + cycle count;
* ``inject WORKLOAD``          — a fault-injection campaign, outcome mix;
* ``protect WORKLOAD``         — the full IPAS pipeline, protection report;
* ``evaluate WORKLOAD``        — unprotected vs full-dup vs IPAS vs baseline
  vs the injection-free static-risk selector;
* ``analyze TARGET``           — static SOC-risk scores and IR diagnostics
  for a workload or a ``.scil`` file, no fault injection required;
* ``report PATH``              — render an observability artifact (metrics
  JSON, heatmap JSON, or a campaign trace) written by ``inject``;
* ``serve`` / ``worker`` / ``submit`` / ``status`` — the campaign service:
  a fault-tolerant coordinator over localhost sockets with a durable job
  journal, socket workers that lease trial-chunks from it, and clients
  that submit campaigns and watch progress.

Human-facing status lines go to stderr whenever the command also prints a
JSON artifact to stdout (``--metrics-out -`` / ``--heatmap -``), so piped
output stays machine-readable; ``--quiet`` suppresses them entirely.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="campaign worker processes (default: IPAS_JOBS env or 1; 0 = all CPUs)",
    )


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trial-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per trial; a worker past its chunk deadline "
        "is killed and its trials requeued (default: IPAS_TRIAL_TIMEOUT env "
        "or no deadline)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts for a trial whose worker died before it is "
        "quarantined as a trial_failure (default: IPAS_MAX_RETRIES env or 2)",
    )
    parser.add_argument(
        "--on-worker-failure",
        choices=["respawn", "serial", "abort"],
        default=None,
        help="reaction to a dead/hung worker: respawn it (default), fall "
        "back to serial execution, or abort (default: IPAS_ON_WORKER_FAILURE "
        "env or 'respawn')",
    )


def _resolve_supervision(args):
    """A SupervisorPolicy when any knob was given, else None (env defaults)."""
    if (
        args.trial_timeout is None
        and args.max_retries is None
        and args.on_worker_failure is None
    ):
        return None
    from .faults import SupervisorPolicy

    return SupervisorPolicy.resolve(
        None,
        trial_timeout=args.trial_timeout,
        max_retries=args.max_retries,
        on_worker_failure=args.on_worker_failure,
    )


def _add_quiet_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress human-facing status lines (JSON artifacts still print)",
    )


def _status_stream(args):
    """Where status lines go: None under --quiet, stderr when stdout
    carries a JSON artifact, else stdout."""
    if getattr(args, "quiet", False):
        return None
    if getattr(args, "metrics_out", None) == "-" or getattr(args, "heatmap", None) == "-":
        return sys.stderr
    return sys.stdout


def _say(stream, message: str) -> None:
    if stream is not None:
        print(message, file=stream)


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["quick", "default", "paper"],
        default=None,
        help="campaign-size preset (default: IPAS_SCALE env or 'default')",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")


def _resolve_scale(args):
    from .core import ExperimentScale

    if args.scale is not None:
        return ExperimentScale.preset(args.scale)
    return ExperimentScale.from_env()


def cmd_list(args) -> int:
    from .workloads import all_workloads

    for workload in all_workloads():
        print(f"{workload.name:>6}: {workload.description}")
        for input_id in sorted(workload.inputs):
            marker = " (training input)" if input_id == 1 else ""
            print(f"         input {input_id}: {workload.input_labels[input_id]}{marker}")
    return 0


def cmd_compile(args) -> int:
    from . import compile_source
    from .ir import print_module

    with open(args.file) as fh:
        source = fh.read()
    module = compile_source(source, name=args.file, optimize=not args.no_opt)
    print(print_module(module))
    print(
        f"; {module.static_instruction_count} static instructions, "
        f"{len(module.defined_functions())} functions",
        file=sys.stderr,
    )
    return 0


def cmd_run(args) -> int:
    from .workloads import get_workload

    workload = get_workload(args.workload)
    interp = workload.make_interpreter(args.input)
    profiler = None
    if args.block_profile:
        from .obs import BlockProfiler

        profiler = BlockProfiler(interp.cm)
        with profiler:
            result = interp.run()
    else:
        result = interp.run()
    print(f"status: {result.status}")
    print(f"cycles: {result.cycles}")
    for gv in interp.module.output_globals():
        value = interp.read_global(gv.name)
        if isinstance(value, list) and len(value) > 8:
            preview = ", ".join(f"{v:.6g}" for v in value[:8])
            print(f"{gv.name}: [{preview}, ...] ({len(value)} cells)")
        else:
            print(f"{gv.name}: {value}")
    if profiler is not None:
        from .obs import render_block_report

        print(render_block_report(profiler.report(), limit=args.top))
    return 0 if result.status == "ok" else 1


def cmd_inject(args) -> int:
    from .faults import Campaign, Outcome
    from .workloads import get_workload

    workload = get_workload(args.workload)
    module = None
    if args.protect == "full":
        from .protect import FullDuplicationSelector, duplicate_instructions

        module = workload.compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
    recovery = None
    if args.recover:
        if args.protect == "none":
            print(
                "error: --recover needs duplication checks to fire; "
                "combine it with --protect full",
                file=sys.stderr,
            )
            return 2
        from .recover import RecoveryPolicy

        recovery = RecoveryPolicy(
            max_rollbacks=args.max_rollbacks,
            snapshot_period=args.snapshot_period,
        )
    interp = workload.make_interpreter(args.input, module=module)
    campaign = Campaign(
        interp,
        verifier=workload.verifier(),
        budget_factor=workload.budget_factor,
        recovery=recovery,
        warm_start=args.warm_start,
        snapshot_stride=args.snapshot_stride or None,
        fault_model=args.fault_model,
    )

    if args.verify_checkpoint:
        return _verify_checkpoint_report(args, campaign)

    chaos = None
    if args.chaos:
        from .faults.chaos import parse_chaos_spec

        chaos = parse_chaos_spec(args.chaos)
    obs = None
    if args.trace or args.metrics_out or args.heatmap:
        from .obs import Observation

        obs = Observation(
            trace_path=args.trace,
            metrics_path=args.metrics_out if args.metrics_out != "-" else None,
        )
    result = campaign.run(
        args.trials,
        seed=args.seed,
        n_jobs=args.jobs,
        checkpoint_path=args.checkpoint,
        progress=args.progress,
        trial_timeout=args.trial_timeout,
        max_retries=args.max_retries,
        on_worker_failure=args.on_worker_failure,
        chaos=chaos,
        obs=obs,
    )
    out = _status_stream(args)
    model = campaign.fault_model
    if model.name == "transient-1bit":
        _say(out, f"{args.trials} single-bit faults injected into {workload.name}:")
    else:
        _say(out, f"{args.trials} {model.spec()} faults injected into {workload.name}:")
    for outcome in Outcome:
        count = result.counts.counts[outcome]
        if outcome is Outcome.TRIAL_FAILURE and count == 0:
            continue  # harness-only outcome; hide it for undisturbed runs
        _say(out, f"  {outcome.value:>9}: {count:5d}  ({100*count/args.trials:5.1f}%)")
    stats = result.stats
    if stats is not None and stats.completed:
        _say(
            out,
            f"  throughput: {stats.trials_per_second:.1f} trials/s "
            f"({stats.n_jobs} worker{'s' if stats.n_jobs != 1 else ''}, "
            f"utilization {stats.utilization:.0%}"
            + (f", {stats.resumed} resumed from checkpoint" if stats.resumed else "")
            + ")"
        )
    if stats is not None and (stats.harness_events or stats.serial_fallback):
        _say(
            out,
            f"  harness: {stats.worker_deaths} worker death"
            f"{'s' if stats.worker_deaths != 1 else ''} "
            f"({stats.hangs} hangs), {stats.respawns} respawns, "
            f"{stats.retries} retries, {stats.quarantined} quarantined"
            + (", serial fallback" if stats.serial_fallback else "")
        )
    if args.warm_start and stats is not None:
        _say(
            out,
            f"  warm-start: {stats.warm_restores} trials restored from the "
            f"snapshot ladder (stride {campaign.effective_stride} cycles), "
            f"{stats.golden_resyncs} golden resyncs, "
            f"{stats.warm_cycles_saved} prefix cycles skipped"
        )
    if recovery is not None and stats is not None:
        corrected = result.counts.counts[Outcome.CORRECTED]
        fired = corrected + result.counts.counts[Outcome.DETECTED]
        _say(
            out,
            f"  recovery: {stats.rollbacks} rollbacks, "
            f"{corrected}/{fired or 1} fired checks corrected "
            f"({100 * result.counts.corrected_fraction:.1f}% of trials), "
            f"mean re-executed cycles {stats.mean_rollback_cycles:.0f}, "
            f"{stats.escalations} escalations"
        )
    return _write_inject_artifacts(args, campaign, result, obs, out)


def _write_inject_artifacts(args, campaign, result, obs, out) -> int:
    """Flush ``inject``'s observability artifacts; ``-`` means stdout."""
    import json as json_module

    if args.metrics_out == "-" and obs is not None:
        payload = {"kind": "ipas-metrics", "metrics": obs.registry.as_dict()}
        json_module.dump(payload, sys.stdout, indent=1)
        sys.stdout.write("\n")
    elif args.metrics_out:
        _say(out, f"  metrics: {args.metrics_out}")
    if args.heatmap:
        from .obs import build_heatmap, write_heatmap

        heatmap = build_heatmap(
            result.records,
            campaign.interp.module,
            model=campaign.fault_model,
        )
        if args.heatmap == "-":
            json_module.dump(heatmap, sys.stdout, indent=1)
            sys.stdout.write("\n")
        else:
            write_heatmap(heatmap, args.heatmap)
            _say(out, f"  heatmap: {args.heatmap}")
    if args.trace:
        _say(out, f"  trace: {args.trace} (open in https://ui.perfetto.dev)")
    return 0


def _verify_checkpoint_report(args, campaign) -> int:
    """``inject --verify-checkpoint``: validate CRCs + fingerprint, report
    recoverable vs. lost trials.  Exit 0 iff the file belongs to this
    campaign and its header is sound."""
    from .faults import campaign_fingerprint, verify_checkpoint

    if not args.checkpoint:
        print("error: --verify-checkpoint requires --checkpoint PATH", file=sys.stderr)
        return 2
    fingerprint = campaign_fingerprint(campaign, args.trials, args.seed)
    report = verify_checkpoint(
        args.checkpoint,
        fingerprint=fingerprint,
        n_trials=args.trials,
        seed=args.seed,
    )
    print(f"checkpoint: {report['path']}")
    if report["error"]:
        print(f"  error: {report['error']}")
        return 1
    print(f"  version: {report['version']} (ok)")
    print(
        f"  fingerprint: {report['fingerprint']} "
        + ("(matches campaign)" if report["fingerprint_ok"] else "(MISMATCH)")
    )
    lost = report["lost"] if report["lost"] is not None else "?"
    print(
        f"  recoverable trials: {report['recoverable']}/{args.trials} "
        f"({lost} must re-run)"
    )
    print(f"  corrupted lines: {report['corrupted_lines']}")
    print(f"  torn tail: {'yes' if report['truncated_tail'] else 'no'}")
    for unknown in report["unknown_outcomes"]:
        print(
            f"  line {unknown['line']}: unknown outcome "
            f"{unknown['outcome']!r} (newer engine?); excluded from resume"
        )
    return 0 if report["fingerprint_ok"] else 1


def cmd_protect(args) -> int:
    from .core import IpasPipeline
    from .ir.verifier import VerificationError, verify_module
    from .workloads import get_workload

    workload = get_workload(args.workload)
    scale = _resolve_scale(args)
    # protect never emits JSON on stdout, so status stays there (stderr is
    # only for commands whose stdout carries a machine-readable payload)
    out = _status_stream(args)
    _say(out, f"scale: {scale!r}")
    pipeline = IpasPipeline(
        workload,
        scale,
        seed=args.seed,
        n_jobs=args.jobs,
        supervision=_resolve_supervision(args),
    )
    data = pipeline.collect_training_data()
    _say(out, f"training campaign: {data.campaign.counts}")
    _say(out, f"SOC-generating fraction: {data.positive_fraction:.1%}")
    try:
        variants = pipeline.protect_all()
        for variant in variants:
            verify_module(variant.module)
    except VerificationError as exc:
        print(f"error: protected module failed verification:\n{exc}", file=sys.stderr)
        return 1
    _say(out, f"training time: {pipeline.training_seconds:.1f}s")
    for i, variant in enumerate(variants):
        report = variant.report
        _say(
            out,
            f"cfg{i+1} {variant.config}: duplicated "
            f"{report.duplicated}/{report.eligible} "
            f"({report.duplicated_fraction:.1%}), {report.checks_inserted} checks, "
            f"{variant.duplication_seconds:.2f}s"
        )
    return 0


def cmd_evaluate(args) -> int:
    from .experiments import (
        best_by_ideal_point,
        format_table,
        outcome_row,
        run_full_evaluation,
    )
    from .ir.verifier import VerificationError

    scale = _resolve_scale(args)
    try:
        result = run_full_evaluation(
            args.workload,
            scale,
            seed=args.seed,
            n_jobs=args.jobs,
            supervision=_resolve_supervision(args),
        )
    except VerificationError as exc:
        print(f"error: protected module failed verification:\n{exc}", file=sys.stderr)
        return 1
    headers = ["variant", "symptom", "detected", "masked", "SOC", "slowdown"]
    rows = [
        ["unprotected", *outcome_row(result["unprotected"]["counts"]), "1.00"],
        [
            "full dup.",
            *outcome_row(result["full"]["counts"]),
            f"{result['full']['slowdown']:.2f}",
        ],
    ]
    static = result.get("static")  # absent in result dicts cached by older versions
    if static is not None:
        rows.append(
            [
                "static risk",
                *outcome_row(static["counts"]),
                f"{static['slowdown']:.2f}",
            ]
        )
    for bucket, title in (("ipas", "IPAS"), ("baseline", "Baseline")):
        for entry in result[bucket]:
            rows.append(
                [
                    f"{title} {entry['label']}",
                    *outcome_row(entry["counts"]),
                    f"{entry['slowdown']:.2f}",
                ]
            )
    print(format_table(headers, rows))
    best = best_by_ideal_point(result["ipas"])
    print(
        f"\nbest IPAS config ({best['label']}): "
        f"{best['soc_reduction']:.1f}% SOC reduction at {best['slowdown']:.2f}x"
    )
    return 0


def _load_analysis_module(target: str, optimize: bool):
    """A module for ``analyze``: a workload name or a ``.scil`` file path."""
    import os

    from . import compile_source
    from .workloads import get_workload
    from .workloads.registry import WORKLOAD_CLASSES

    if target.lower() in WORKLOAD_CLASSES:
        return get_workload(target).compile(optimize=optimize)
    if os.path.exists(target):
        with open(target) as fh:
            return compile_source(fh.read(), name=target, optimize=optimize)
    raise KeyError(
        f"unknown analyze target {target!r}: not a workload "
        f"({', '.join(WORKLOAD_CLASSES)}) and not a file"
    )


def cmd_analyze(args) -> int:
    """Exit codes: 0 — no findings at or above the ``--fail-on`` severity;
    1 — findings at or above it (default: errors); 2 — the target could not
    be loaded or compiled."""
    import json as json_module

    from .analysis import StaticRiskModel
    from .diag import (
        Diagnostic,
        DiagnosticReport,
        Severity,
        render_json,
        render_text,
        run_lints,
    )
    from .ir.verifier import VerificationError, verify_module

    try:
        module = _load_analysis_module(args.target, optimize=not args.no_opt)
    except (KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if getattr(args, "protect", "none") == "full":
        from .protect.duplication import duplicate_instructions
        from .protect.selectors import FullDuplicationSelector

        duplicate_instructions(module, FullDuplicationSelector().select(module))

    report = DiagnosticReport()
    try:
        verify_module(module)
    except VerificationError as exc:
        report.add(Diagnostic("VERIFY", Severity.ERROR, str(exc)))
    report.extend(run_lints(module, risk_threshold=args.risk_threshold))
    risk = StaticRiskModel(module).assess_module()

    coverage = None
    if args.coverage:
        from .analysis import coverage_report

        coverage = coverage_report(module)

    debug_lines = []
    if args.debug_passes:
        from .passes import standard_pipeline

        fresh = _load_analysis_module(args.target, optimize=False)
        pipeline = standard_pipeline(debug=True)
        pipeline.run(fresh)
        for record in pipeline.debug_records:
            debug_lines.append(record.format())

    if args.format == "json":
        payload = json_module.loads(render_json(report, risk, module_name=module.name))
        if coverage is not None:
            payload["coverage"] = coverage.to_dict()
        print(json_module.dumps(payload, indent=2))
    else:
        print(render_text(report, risk, risk_limit=args.top))
        if coverage is not None:
            print(_render_coverage(coverage, limit=args.top))
        if debug_lines:
            print("pass pipeline checkpoints:")
            print("\n".join(debug_lines))

    threshold = Severity.ERROR if args.fail_on == "error" else Severity.WARNING
    return 1 if len(report.filter(threshold)) else 0


def _render_coverage(coverage, limit: int) -> str:
    """Text block for ``analyze --coverage``."""
    from .analysis import Verdict
    from .experiments import format_table

    summary = coverage.summary()
    lines = [
        "",
        f"coverage prover: {summary['sites']} fault sites — "
        f"{summary['detected']} detected, {summary['masked']} masked, "
        f"{summary['escapes']} escape",
    ]
    escaping = coverage.with_verdict(Verdict.ESCAPES)
    if escaping:
        lines.append(f"escaping sites (first {min(limit, len(escaping))}):")
        headers = ["site", "opcode", "escapes via"]
        rows = [
            [
                f"{s.function}/{s.block}[{s.index}]",
                s.opcode,
                s.escapes[0] if s.escapes else "?",
            ]
            for s in escaping[:limit]
        ]
        lines.append(format_table(headers, rows))
    return "\n".join(lines)


def cmd_report(args) -> int:
    """Render an observability artifact written by ``inject``.

    Auto-detects the artifact kind: an ``ipas-metrics`` JSON dump, an
    ``ipas-heatmap`` JSON report, or a Chrome trace-event file.  Exit
    codes: 0 — rendered (and, for ``--validate``, the trace checked out);
    1 — trace validation failed; 2 — the file is not a known artifact.
    """
    import json as json_module

    try:
        with open(args.path) as fh:
            head = fh.read(64)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if head.lstrip().startswith("["):
        from .obs import validate_trace

        report = validate_trace(args.path)
        if args.format == "json":
            print(json_module.dumps(report, indent=1))
        else:
            phases = ", ".join(
                f"{ph}:{n}" for ph, n in sorted(report["phases"].items())
            )
            print(f"trace: {report['path']}")
            print(f"  events: {report['events']} ({phases})")
            print(f"  lanes: {report['lanes']}")
            for error in report["errors"]:
                print(f"  error: {error}")
            print(f"  spans nest: {'ok' if report['ok'] else 'BROKEN'}")
            print("  open in https://ui.perfetto.dev or chrome://tracing")
        if args.validate:
            return 0 if report["ok"] else 1
        return 0

    try:
        with open(args.path) as fh:
            payload = json_module.load(fh)
    except (OSError, json_module.JSONDecodeError) as exc:
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 2
    kind = payload.get("kind") if isinstance(payload, dict) else None
    if kind == "ipas-metrics":
        if args.format == "json":
            print(json_module.dumps(payload, indent=1))
        else:
            from .obs import render_metrics_text

            print(render_metrics_text(payload["metrics"]))
        return 0
    if kind == "ipas-heatmap":
        if args.format == "json":
            print(json_module.dumps(payload, indent=1))
        else:
            from .obs import render_heatmap_text

            print(render_heatmap_text(payload, limit=args.top))
        return 0
    print(
        f"error: {args.path}: not an ipas-metrics/ipas-heatmap/trace artifact",
        file=sys.stderr,
    )
    return 2


# -- campaign service ---------------------------------------------------------


def _chaos_spec(text: str) -> str:
    """argparse type for ``inject --chaos``: reject a bad spec at parse
    time, naming the offending token, instead of mid-campaign."""
    from .faults.chaos import validate_chaos_spec

    try:
        validate_chaos_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _fault_model_spec(text: str) -> str:
    """argparse type for ``inject --fault-model``: validate the
    ``NAME[:key=value,...]`` grammar eagerly, naming the bad token."""
    from .faults.models import validate_fault_model_spec

    try:
        validate_fault_model_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _service_chaos_spec(text: str) -> str:
    """argparse type for ``serve --chaos`` (the service-chaos grammar)."""
    from .faults.chaos import validate_service_chaos_spec

    try:
        validate_service_chaos_spec(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _add_connect_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="coordinator address (HOST:PORT, or a bare PORT on localhost)",
    )
    parser.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="read the coordinator's port from a file written by "
        "'serve --port-file' (polls until it appears)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request timeout (default: 30)",
    )


def _service_client(args):
    """A connected ServiceClient from --connect / --port-file."""
    from .service.client import ServiceClient, parse_connect, read_port_file

    if args.port_file:
        return ServiceClient(port=read_port_file(args.port_file), timeout=args.timeout)
    if args.connect:
        host, port = parse_connect(args.connect)
        return ServiceClient(host, port, timeout=args.timeout)
    raise ValueError("need --connect HOST:PORT or --port-file PATH")


def cmd_serve(args) -> int:
    """Run a campaign-service coordinator until shut down."""
    import asyncio
    import json as json_module
    import os
    import signal
    import subprocess

    from .service import CoordinatorServer

    chaos = None
    if args.chaos:
        from .faults.chaos import parse_service_chaos_spec

        # Chaos fire-once markers live next to the journal so a killed and
        # restarted coordinator does not re-fire the same event.
        chaos = parse_service_chaos_spec(
            args.chaos, state_dir=os.path.join(args.journal, "chaos-state")
        )
    obs = None
    if args.trace or (args.metrics_out and args.metrics_out != "-"):
        from .obs import Observation

        obs = Observation(
            trace_path=args.trace,
            metrics_path=args.metrics_out if args.metrics_out != "-" else None,
        )
    server = CoordinatorServer(
        args.journal,
        host=args.host,
        port=args.port,
        chunk_size=args.chunk,
        lease_timeout=args.lease_timeout,
        solo_grace=args.solo_grace,
        solo=not args.no_solo,
        chaos=chaos,
        registry=obs.registry if obs is not None else None,
        tracer=obs.open_trace() if obs is not None else None,
    )
    out = _status_stream(args)
    loop = asyncio.new_event_loop()
    workers = []
    try:
        loop.run_until_complete(server.start())
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(server.stop())
                )
            except (NotImplementedError, OSError):  # pragma: no cover
                pass
        if args.port_file:
            # Atomic write: a client polling the file never reads a torn
            # port, and its existence means the socket is already bound.
            tmp = args.port_file + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{server.port}\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, args.port_file)
        _say(
            out,
            f"coordinator listening on {server.host}:{server.port} "
            f"(journal: {args.journal})",
        )
        for _ in range(args.workers):
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        f"{server.host}:{server.port}",
                        "--quiet",
                    ]
                )
            )
        if workers:
            _say(out, f"spawned {len(workers)} worker process(es)")
        loop.run_until_complete(server.wait_closed())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        loop.run_until_complete(server.stop())
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=5)
            except Exception:  # pragma: no cover
                proc.kill()
        if obs is not None:
            obs.close()
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.run_until_complete(loop.shutdown_default_executor())
        loop.close()
    if args.metrics_out == "-":
        payload = {"kind": "ipas-metrics", "metrics": server.registry.as_dict()}
        json_module.dump(payload, sys.stdout, indent=1)
        sys.stdout.write("\n")
    _say(out, "coordinator stopped")
    return 0


def cmd_worker(args) -> int:
    """Run one socket worker against a coordinator."""
    from .service.client import parse_connect, read_port_file
    from .service.worker import run_worker

    if args.port_file:
        host, port = "127.0.0.1", read_port_file(args.port_file)
    elif args.connect:
        host, port = parse_connect(args.connect)
    else:
        print("error: need --connect HOST:PORT or --port-file PATH", file=sys.stderr)
        return 2
    log = None
    if not args.quiet:
        def log(text):
            print(f"worker: {text}", file=sys.stderr)
    return run_worker(
        host,
        port,
        ack_timeout=args.timeout,
        idle_exit=args.idle_exit,
        log=log,
    )


def cmd_submit(args) -> int:
    """Submit a campaign to a coordinator; by default wait and print the
    same outcome mix ``inject`` would."""
    from .faults import Outcome
    from .service.client import ServiceError

    spec = {
        "workload": args.workload,
        "input": args.input,
        "trials": args.trials,
        "seed": args.seed,
        "protect": args.protect,
    }
    if args.recover:
        spec["recover"] = True
        spec["max_rollbacks"] = args.max_rollbacks
        spec["snapshot_period"] = args.snapshot_period
    out = _status_stream(args)
    try:
        client = _service_client(args)
    except (ValueError, TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with client:
        try:
            reply = client.submit(spec)
            job = reply["job"]
            _say(
                out,
                f"job {job}: {reply.get('disposition')} "
                f"({reply.get('done', 0)}/{reply.get('n_trials')} trials done"
                + (f", {reply.get('resumed')} resumed" if reply.get("resumed") else "")
                + ")",
            )
            if args.no_wait:
                print(job)
                return 0
            if reply.get("state") not in ("done", "failed"):
                for event in client.watch(job):
                    if event.get("op") == "progress" and args.progress:
                        _say(
                            out,
                            f"  {event['done']}/{event['n_trials']} trials",
                        )
            status = client.status(job)
            if status.get("state") != "done":
                print(
                    f"error: job {job} {status.get('state')}: "
                    f"{status.get('error', 'unknown failure')}",
                    file=sys.stderr,
                )
                return 1
            entries = client.results(job)
        except (ServiceError, OSError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    counts = {}
    for entry in entries:
        counts[entry["outcome"]] = counts.get(entry["outcome"], 0) + 1
    _say(out, f"{len(entries)} single-bit faults injected into {args.workload}:")
    for outcome in Outcome:
        count = counts.get(outcome.value, 0)
        if outcome is Outcome.TRIAL_FAILURE and count == 0:
            continue
        _say(out, f"  {outcome.value:>9}: {count:5d}  ({100*count/len(entries):5.1f}%)")
    return 0


def cmd_status(args) -> int:
    """Show a coordinator's jobs (or one job) from the outside."""
    import json as json_module

    from .service.client import ServiceError

    try:
        client = _service_client(args)
    except (ValueError, TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with client:
        try:
            if args.shutdown:
                client.shutdown()
                print("coordinator shutting down")
                return 0
            status = client.status(args.job)
        except (ServiceError, OSError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    if args.json:
        status.pop("ok", None)
        json_module.dump(status, sys.stdout, indent=1)
        sys.stdout.write("\n")
        return 0
    if args.job is not None:
        line = (
            f"{status['job']}: {status['state']} "
            f"{status['done']}/{status['n_trials']} trials (seed {status['seed']}"
            + (f", {status['resumed']} resumed" if status.get("resumed") else "")
            + ")"
        )
        print(line)
        if status.get("error"):
            print(f"  error: {status['error']}")
        for outcome, count in sorted((status.get("counts") or {}).items()):
            print(f"  {outcome:>9}: {count}")
        return 0
    jobs = status.get("jobs", [])
    print(
        f"{len(jobs)} job(s), {status.get('workers', 0)} worker(s), "
        f"{status.get('leases', 0)} active lease(s)"
    )
    for job in jobs:
        print(
            f"  {job['job']}: {job['state']} {job['done']}/{job['n_trials']}"
            + (f" ({job['resumed']} resumed)" if job.get("resumed") else "")
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IPAS (CGO 2016) reproduction: ML-guided selective "
        "instruction duplication against silent output corruption",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in workloads")

    p_compile = sub.add_parser("compile", help="compile a scil file, print IR")
    p_compile.add_argument("file")
    p_compile.add_argument("--no-opt", action="store_true", help="skip passes")

    p_run = sub.add_parser("run", help="one golden run of a workload")
    p_run.add_argument("workload")
    p_run.add_argument("--input", type=int, default=1, choices=[1, 2, 3, 4])
    p_run.add_argument(
        "--block-profile",
        action="store_true",
        help="attribute wall time and cycles per basic block (timing "
        "wrappers perturb wall numbers, never simulated state)",
    )
    p_run.add_argument(
        "--top", type=int, default=20, help="hot blocks shown with --block-profile"
    )

    p_inject = sub.add_parser("inject", help="statistical fault injection")
    p_inject.add_argument("workload")
    p_inject.add_argument("--input", type=int, default=1, choices=[1, 2, 3, 4])
    p_inject.add_argument("--trials", type=int, default=100)
    p_inject.add_argument("--seed", type=int, default=0)
    p_inject.add_argument(
        "--protect",
        choices=["none", "full"],
        default="none",
        help="inject into the clean module (default) or one protected by "
        "full duplication (whose checks can fire)",
    )
    p_inject.add_argument(
        "--recover",
        action="store_true",
        help="arm the rollback runtime: a fired check re-executes from the "
        "last region snapshot instead of fail-stopping (needs --protect full)",
    )
    p_inject.add_argument(
        "--max-rollbacks",
        type=int,
        default=8,
        metavar="N",
        help="total rollbacks allowed per run before a detection escalates "
        "to fail-stop (default: 8)",
    )
    p_inject.add_argument(
        "--snapshot-period",
        type=int,
        default=0,
        metavar="CYCLES",
        help="minimum cycles between region snapshots; 0 snapshots at every "
        "region boundary (default: 0)",
    )
    p_inject.add_argument(
        "--warm-start",
        action="store_true",
        help="capture a snapshot ladder during the golden run and start each "
        "trial from the rung just before its injection point, executing only "
        "the suffix (bit-identical outcomes, same at any --jobs)",
    )
    p_inject.add_argument(
        "--snapshot-stride",
        type=int,
        default=0,
        metavar="CYCLES",
        help="cycles between warm-start ladder rungs; 0 picks an automatic "
        "stride of about golden_cycles/128 (default: 0)",
    )
    _add_jobs_arg(p_inject)
    p_inject.add_argument(
        "--progress",
        action="store_true",
        help="print live throughput / ETA to stderr",
    )
    p_inject.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="JSONL checkpoint file; an interrupted campaign resumes from it",
    )
    _add_supervision_args(p_inject)
    p_inject.add_argument(
        "--verify-checkpoint",
        action="store_true",
        help="validate the --checkpoint file (CRCs + fingerprint), report "
        "recoverable vs. lost trials, and exit without injecting",
    )
    p_inject.add_argument(
        "--fault-model",
        metavar="SPEC",
        default=None,
        type=_fault_model_spec,
        help="corruption model: NAME[:key=value,...] — transient-1bit "
        "(default), transient-multibit:k=K,adjacent=BOOL, pattern:kind=KIND, "
        "intermittent:p=P,window=W, persistent; a malformed spec is "
        "rejected before the campaign starts",
    )
    p_inject.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        type=_chaos_spec,
        help="failure-injection drill for the harness itself: "
        "kill@IDX[!] and hang@IDX:SECONDS events, comma-separated "
        "(e.g. 'kill@7,hang@12:3'); results must stay identical; "
        "a malformed spec is rejected before the campaign starts",
    )
    p_inject.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="emit a Chrome trace-event file of the campaign (phases, "
        "per-worker trial spans, recovery events); opens in Perfetto",
    )
    p_inject.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="dump the campaign's metrics registry as JSON ('-' = stdout; "
        "status lines then move to stderr)",
    )
    p_inject.add_argument(
        "--heatmap",
        metavar="PATH",
        default=None,
        help="write the per-fault-site outcome heatmap joined with the "
        "coverage prover's static verdicts ('-' = stdout)",
    )
    _add_quiet_arg(p_inject)

    p_protect = sub.add_parser("protect", help="run the IPAS pipeline")
    p_protect.add_argument("workload")
    _add_scale_args(p_protect)
    _add_jobs_arg(p_protect)
    _add_supervision_args(p_protect)
    _add_quiet_arg(p_protect)

    p_eval = sub.add_parser("evaluate", help="full technique comparison")
    p_eval.add_argument("workload")
    _add_scale_args(p_eval)
    _add_jobs_arg(p_eval)
    _add_supervision_args(p_eval)

    p_report = sub.add_parser(
        "report", help="render an observability artifact (metrics/heatmap/trace)"
    )
    p_report.add_argument("path", help="artifact file written by inject")
    p_report.add_argument("--format", choices=["text", "json"], default="text")
    p_report.add_argument(
        "--top", type=int, default=30, help="heatmap rows shown in text output"
    )
    p_report.add_argument(
        "--validate",
        action="store_true",
        help="for traces: exit 1 unless every event parses and spans nest",
    )

    p_analyze = sub.add_parser(
        "analyze", help="static SOC-risk scores and IR diagnostics (no injection)"
    )
    p_analyze.add_argument("target", help="workload name or .scil file path")
    p_analyze.add_argument("--format", choices=["text", "json"], default="text")
    p_analyze.add_argument(
        "--risk-threshold",
        type=float,
        default=0.7,
        help="static risk at which unprotected instructions are flagged",
    )
    p_analyze.add_argument(
        "--top", type=int, default=10, help="risk rows shown in text output"
    )
    p_analyze.add_argument(
        "--debug-passes",
        action="store_true",
        help="re-run the optimization pipeline with per-pass verifier+lint checkpoints",
    )
    p_analyze.add_argument("--no-opt", action="store_true", help="skip passes")
    p_analyze.add_argument(
        "--coverage",
        action="store_true",
        help="run the protection-coverage prover and report the static "
        "DETECTED/MASKED/ESCAPES verdict for every fault site",
    )
    p_analyze.add_argument(
        "--protect",
        choices=["none", "full"],
        default="none",
        help="analyze the clean module (default) or one protected by full "
        "duplication, so coverage and check lints see the protected IR",
    )
    p_analyze.add_argument(
        "--fail-on",
        choices=["error", "warning"],
        default="error",
        help="finding severity that makes the exit status 1 (default: "
        "error); exit 0 = clean, 1 = findings at/above threshold, "
        "2 = target failed to load",
    )

    p_serve = sub.add_parser(
        "serve", help="run a campaign-service coordinator (localhost sockets)"
    )
    p_serve.add_argument(
        "--journal",
        metavar="DIR",
        required=True,
        help="durable job-journal directory; a restarted coordinator "
        "resumes every in-flight campaign recorded here",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="listen port (default: 0 = ephemeral)"
    )
    p_serve.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound port here (atomically, after the socket "
        "binds) so clients and workers can discover an ephemeral port",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="worker subprocesses to spawn alongside the coordinator "
        "(default: 0 — serve existing workers, or degrade to in-process "
        "serial execution when none connect)",
    )
    p_serve.add_argument(
        "--chunk",
        type=int,
        default=8,
        metavar="N",
        help="trials per lease (default: 8)",
    )
    p_serve.add_argument(
        "--lease-timeout",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="heartbeat deadline before a lease's trials are requeued "
        "(default: 15)",
    )
    p_serve.add_argument(
        "--solo-grace",
        type=float,
        default=0.75,
        metavar="SECONDS",
        help="how long to wait for a worker before the coordinator runs "
        "trials itself (default: 0.75)",
    )
    p_serve.add_argument(
        "--no-solo",
        action="store_true",
        help="never execute trials in-process; jobs wait for workers",
    )
    p_serve.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        type=_service_chaos_spec,
        help="coordinator/network chaos drill: kill@N, drop-ack@N, "
        "delay@N:SECONDS, reset@N events, comma-separated; fire-once "
        "state persists in the journal so a restart does not re-fire",
    )
    p_serve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="emit a Chrome trace of the coordinator lane (job lifecycle, "
        "lease churn, chaos events)",
    )
    p_serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="dump the service metrics registry as JSON on shutdown "
        "('-' = stdout)",
    )
    _add_quiet_arg(p_serve)

    p_worker = sub.add_parser(
        "worker", help="run one socket worker against a coordinator"
    )
    _add_connect_args(p_worker)
    p_worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit 0 after this long with nothing to lease (default: "
        "idle forever)",
    )
    _add_quiet_arg(p_worker)

    p_submit = sub.add_parser(
        "submit", help="submit a campaign to a coordinator and wait"
    )
    p_submit.add_argument("workload")
    p_submit.add_argument("--input", type=int, default=1, choices=[1, 2, 3, 4])
    p_submit.add_argument("--trials", type=int, default=100)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--protect", choices=["none", "full"], default="none")
    p_submit.add_argument("--recover", action="store_true")
    p_submit.add_argument("--max-rollbacks", type=int, default=8, metavar="N")
    p_submit.add_argument("--snapshot-period", type=int, default=0, metavar="CYCLES")
    _add_connect_args(p_submit)
    p_submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return instead of streaming progress "
        "(resubmitting the same spec later attaches to the same job)",
    )
    p_submit.add_argument(
        "--progress", action="store_true", help="print per-commit progress lines"
    )
    _add_quiet_arg(p_submit)

    p_status = sub.add_parser("status", help="show a coordinator's jobs")
    p_status.add_argument("job", nargs="?", default=None, help="job id (fingerprint)")
    _add_connect_args(p_status)
    p_status.add_argument("--json", action="store_true", help="raw JSON output")
    p_status.add_argument(
        "--shutdown",
        action="store_true",
        help="ask the coordinator to shut down gracefully instead",
    )

    return parser


COMMANDS = {
    "list": cmd_list,
    "compile": cmd_compile,
    "run": cmd_run,
    "inject": cmd_inject,
    "protect": cmd_protect,
    "evaluate": cmd_evaluate,
    "analyze": cmd_analyze,
    "report": cmd_report,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "submit": cmd_submit,
    "status": cmd_status,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # e.g. `repro report metrics.json | head`: the consumer closed the
        # pipe — not an error.  Point stdout at devnull so the interpreter's
        # exit flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
