"""repro.experiments — reusable drivers behind each paper table/figure.

The benchmark files in ``benchmarks/`` are thin wrappers over these
drivers; results are cached on disk (see :mod:`repro.experiments.cache`),
so regenerating one figure after another over the same campaigns is cheap.
"""

from . import cache
from .fault_models import format_fault_model_table, run_fault_model_evaluation
from .full_eval import best_by_ideal_point, run_full_evaluation
from .scaling import DEFAULT_RANKS, run_scalability
from .inputs import run_input_variation
from .cross_workload import run_cross_workload, run_cross_workload_matrix
from .ablations import (
    run_classifier_ablation,
    run_feature_ablation,
    run_topn_ablation,
    run_training_size_ablation,
)
from .reporting import banner, format_table, outcome_row, percent
from .training import best_protected_variant, clear_memos, get_pipeline

__all__ = [
    "cache",
    "format_fault_model_table", "run_fault_model_evaluation",
    "best_by_ideal_point", "run_full_evaluation",
    "DEFAULT_RANKS", "run_scalability", "run_input_variation",
    "run_cross_workload", "run_cross_workload_matrix",
    "run_classifier_ablation", "run_feature_ablation", "run_topn_ablation",
    "run_training_size_ablation",
    "banner", "format_table", "outcome_row", "percent",
    "best_protected_variant", "clear_memos", "get_pipeline",
]
