"""Strong-scaling slowdown driver (paper Fig. 8 and §6.4).

For each workload: protect with the best IPAS configuration, then run the
protected and unprotected modules fault-free under the simulated MPI
runtime at increasing rank counts.  Slowdown is the ratio of job times
(max-over-ranks cycle counts).  The paper's expectation — reproduced here —
is that slowdown stays roughly constant with scale, because IPAS
instruments computation only, never the communication.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.scale import ExperimentScale
from ..parallel.mpi import MpiJob
from ..workloads.registry import get_workload
from . import cache
from .full_eval import best_by_ideal_point, run_full_evaluation
from .training import best_protected_variant

DEFAULT_RANKS = (1, 2, 4, 8)


def run_scalability(
    workload_name: str,
    ranks: tuple = DEFAULT_RANKS,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """Slowdown vs rank count for one workload's best IPAS configuration."""
    scale = scale or ExperimentScale.from_env()
    key = (
        f"fig8-{workload_name}-{scale.cache_key()}-s{seed}-"
        f"r{'x'.join(map(str, ranks))}"
    )
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit

    workload = get_workload(workload_name)
    # Pick the best configuration the full evaluation chose (Table 4).
    full = run_full_evaluation(
        workload_name, scale, seed, use_cache=use_cache, n_jobs=n_jobs,
        supervision=supervision,
    )
    best = best_by_ideal_point(full["ipas"])
    variant = best_protected_variant(
        workload_name, scale, seed, best_config=best.get("config"), n_jobs=n_jobs,
        supervision=supervision,
    )

    clean_module = workload.compile()
    points: List[Dict] = []
    for n_ranks in ranks:
        clean_job = MpiJob(clean_module, n_ranks, overrides=workload.inputs[1])
        clean_result = clean_job.run(entry=workload.entry)
        protected_job = MpiJob(
            variant.module, n_ranks, overrides=workload.inputs[1]
        )
        protected_result = protected_job.run(entry=workload.entry)
        if clean_result.status != "ok" or protected_result.status != "ok":
            raise RuntimeError(
                f"{workload_name} at {n_ranks} ranks: "
                f"{clean_result.status}/{protected_result.status}"
            )
        points.append(
            {
                "ranks": n_ranks,
                "clean_cycles": clean_result.job_cycles,
                "protected_cycles": protected_result.job_cycles,
                "slowdown": protected_result.job_cycles / clean_result.job_cycles,
            }
        )
    result = {
        "workload": workload_name,
        "config": best.get("config"),
        "duplicated_fraction": variant.report.duplicated_fraction,
        "points": points,
    }
    if use_cache:
        cache.store(key, result)
    return result
