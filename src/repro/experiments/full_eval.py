"""The per-workload full evaluation (paper §6.1–§6.3).

One call produces everything Figs. 5–7 and Table 4 need for a workload:

* unprotected campaign (reference SOC fraction and cycle baseline),
* full duplication (SWIFT-style),
* static risk: the injection-free :class:`StaticRiskSelector` baseline
  (no training campaign at all — pure static analysis),
* IPAS: top-N (C, γ) configurations, each protected and evaluated,
* Baseline: the Shoestring-style symptom-trained selector, same top-N —
  sharing the *same* training campaign (only the labels differ) and the
  same evaluation seed, so comparisons are paired.

Results are plain JSON-compatible dicts, cached on disk by
(workload, scale, seed).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.evaluation import evaluate_unprotected, evaluate_variant
from ..core.pipeline import (
    IpasPipeline,
    LABEL_SOC,
    LABEL_SYMPTOM,
    ProtectedVariant,
    collect_data,
)
from ..core.scale import ExperimentScale
from ..faults.outcomes import margin_of_error
from ..protect.duplication import duplicate_instructions
from ..protect.selectors import FullDuplicationSelector, StaticRiskSelector
from ..workloads.registry import get_workload
from . import cache

EVAL_SEED_OFFSET = 10_000


def _counts_dict(evaluation) -> Dict:
    data = {
        "counts": {k: v for k, v in evaluation.counts.as_dict().items()},
        "soc_fraction": evaluation.soc_fraction,
        "golden_cycles": evaluation.golden_cycles,
        "slowdown": evaluation.slowdown,
        "soc_reduction": evaluation.soc_reduction,
        "duplicated_fraction": evaluation.duplicated_fraction,
        "trials": evaluation.counts.total,
    }
    if getattr(evaluation, "recovery", None) is not None:
        data["recovery"] = evaluation.recovery
        data["corrected_fraction"] = evaluation.corrected_fraction
    return data


def _evaluate_protected(
    variant: ProtectedVariant,
    workload,
    unprotected,
    scale: ExperimentScale,
    seed: int,
    label: str,
    n_jobs: Optional[int] = None,
    supervision=None,
    recovery=None,
    obs=None,
) -> Dict:
    evaluation = evaluate_variant(
        variant.module,
        workload,
        unprotected.soc_fraction,
        unprotected.golden_cycles,
        variant.technique,
        label,
        scale.eval_trials,
        seed=seed + EVAL_SEED_OFFSET,
        duplicated_fraction=variant.report.duplicated_fraction,
        n_jobs=n_jobs,
        supervision=supervision,
        recovery=recovery,
        obs=obs,
    )
    record = _counts_dict(evaluation)
    record["duplication_seconds"] = variant.duplication_seconds
    # Static coverage verdict counts for the protected module, so the
    # dynamic SOC numbers above can be read against what the prover says
    # must be detected.  Readers use ``.get("coverage")``: result dicts
    # cached by older versions simply lack the key.
    record["coverage"] = _coverage_summary(variant.module)
    if variant.config is not None:
        record["config"] = {
            "C": variant.config.C,
            "gamma": variant.config.gamma,
            "fscore": variant.config.fscore,
        }
    return record


def _coverage_summary(module) -> Dict:
    from ..analysis.coverage import coverage_report

    return coverage_report(module).summary()


def run_full_evaluation(
    workload_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
    recovery=None,
    obs=None,
) -> Dict:
    """All techniques on one workload; returns (and caches) a result dict.

    ``n_jobs`` parallelises every fault-injection campaign; results (and
    the cache key) are identical for any worker count — including under
    worker failure, which ``supervision`` (a
    ``repro.faults.SupervisorPolicy``) recovers from.  ``recovery`` (a
    ``repro.recover.RecoveryPolicy``) arms rollback re-execution for the
    *protected* evaluation campaigns (the unprotected reference and the
    training campaign carry no checks, so they are unaffected); enabling
    it changes outcomes, so it becomes part of the cache key.  ``obs`` (a
    ``repro.obs.Observation``) traces every evaluation campaign into one
    file and accumulates their metrics in one shared registry; it never
    affects outcomes or the cache key.
    """
    scale = scale or ExperimentScale.from_env()
    key = f"fulleval-{workload_name}-{scale.cache_key()}-s{seed}"
    if recovery is not None:
        key += f"-{recovery.signature().replace('|', '_')}"
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit

    workload = get_workload(workload_name)
    started = time.perf_counter()

    # Reference campaign.
    unprotected = evaluate_unprotected(
        workload, scale.eval_trials, seed=seed + EVAL_SEED_OFFSET, n_jobs=n_jobs,
        supervision=supervision, obs=obs,
    )

    # Full duplication.
    full_module = workload.compile()
    t0 = time.perf_counter()
    full_report = duplicate_instructions(
        full_module, FullDuplicationSelector().select(full_module)
    )
    full_duplication_seconds = time.perf_counter() - t0
    full_variant = ProtectedVariant(
        full_module, full_report, "full", None, full_duplication_seconds
    )
    full_eval = _evaluate_protected(
        full_variant, workload, unprotected, scale, seed, "full", n_jobs=n_jobs,
        supervision=supervision, recovery=recovery, obs=obs,
    )

    # Injection-free static-risk baseline (same duplication machinery,
    # selection from the IR alone).
    static_module = workload.compile()
    t0 = time.perf_counter()
    static_selector = StaticRiskSelector()
    static_report = duplicate_instructions(
        static_module, static_selector.select(static_module)
    )
    static_duplication_seconds = time.perf_counter() - t0
    static_variant = ProtectedVariant(
        static_module, static_report, "static", None, static_duplication_seconds
    )
    static_eval = _evaluate_protected(
        static_variant, workload, unprotected, scale, seed, static_selector.name,
        n_jobs=n_jobs, supervision=supervision, recovery=recovery, obs=obs,
    )

    # Shared training campaign; IPAS and Baseline pipelines on top.
    collection_start = time.perf_counter()
    collected = collect_data(
        workload, scale.train_samples, seed=seed, n_jobs=n_jobs,
        supervision=supervision,
    )
    collection_seconds = time.perf_counter() - collection_start

    result: Dict = {
        "workload": workload_name,
        "scale": scale.cache_key(),
        "seed": seed,
        "static_instructions": collected.module.static_instruction_count,
        "lines_of_code": workload.lines_of_code,
        "collection_seconds": collection_seconds,
        "training_outcomes": collected.campaign.counts.as_dict(),
        "unprotected": _counts_dict(unprotected),
        "full": full_eval,
        "static": static_eval,
        "margin_of_error_95": margin_of_error(
            unprotected.soc_fraction, scale.eval_trials
        ),
    }

    for labeling, bucket in ((LABEL_SOC, "ipas"), (LABEL_SYMPTOM, "baseline")):
        pipeline = IpasPipeline(
            workload, scale, labeling, seed=seed, collected=collected,
            n_jobs=n_jobs, supervision=supervision,
        )
        variants = pipeline.protect_all()
        entries: List[Dict] = []
        for i, variant in enumerate(variants):
            label = f"cfg{i + 1}"
            entry = _evaluate_protected(
                variant, workload, unprotected, scale, seed, label, n_jobs=n_jobs,
                supervision=supervision, recovery=recovery, obs=obs,
            )
            entry["label"] = label
            entries.append(entry)
        result[bucket] = entries
        result[f"{bucket}_training_seconds"] = pipeline.training_seconds
        result[f"{bucket}_positive_fraction"] = (
            pipeline.collect_training_data().positive_fraction
        )

    result["total_seconds"] = time.perf_counter() - started
    if use_cache:
        cache.store(key, result)
    return result


def best_by_ideal_point(entries: List[Dict]) -> Dict:
    """Paper §6.3: the entry nearest (slowdown=1, SOC reduction=100)."""
    import math

    return min(
        entries,
        key=lambda e: math.hypot(e["slowdown"] - 1.0, e["soc_reduction"] - 100.0),
    )
