"""Input-variation driver (paper Fig. 9 and §6.5, Table 5).

IPAS is trained once, on input 1, and the protected binary is then tested
on the larger inputs 2–4: for each input, an unprotected and a protected
fault-injection campaign measure the SOC reduction the input-1-trained
protection still delivers.  The paper's expectation — SOC reduction mostly
transfers across inputs — is what the Fig. 9 bench reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.evaluation import evaluate_unprotected, evaluate_variant
from ..core.scale import ExperimentScale
from ..workloads.registry import get_workload
from . import cache
from .full_eval import EVAL_SEED_OFFSET, best_by_ideal_point, run_full_evaluation
from .training import best_protected_variant


def run_input_variation(
    workload_name: str,
    input_ids: tuple = (1, 2, 3, 4),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """SOC reduction per input for the input-1-trained best configuration."""
    scale = scale or ExperimentScale.from_env()
    key = (
        f"fig9-{workload_name}-{scale.cache_key()}-s{seed}-"
        f"i{'x'.join(map(str, input_ids))}"
    )
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit

    workload = get_workload(workload_name)
    full = run_full_evaluation(
        workload_name, scale, seed, use_cache=use_cache, n_jobs=n_jobs,
        supervision=supervision,
    )
    best = best_by_ideal_point(full["ipas"])
    variant = best_protected_variant(
        workload_name, scale, seed, best_config=best.get("config"), n_jobs=n_jobs,
        supervision=supervision,
    )

    points: List[Dict] = []
    for input_id in input_ids:
        unprotected = evaluate_unprotected(
            workload,
            scale.eval_trials,
            seed=seed + EVAL_SEED_OFFSET + input_id,
            input_id=input_id,
            n_jobs=n_jobs,
            supervision=supervision,
        )
        protected = evaluate_variant(
            variant.module,
            workload,
            unprotected.soc_fraction,
            unprotected.golden_cycles,
            "ipas",
            f"input{input_id}",
            scale.eval_trials,
            seed=seed + EVAL_SEED_OFFSET + input_id,
            duplicated_fraction=variant.report.duplicated_fraction,
            input_id=input_id,
            n_jobs=n_jobs,
            supervision=supervision,
        )
        points.append(
            {
                "input": input_id,
                "label": workload.input_labels.get(input_id, str(input_id)),
                "unprotected_soc": unprotected.soc_fraction,
                "protected_soc": protected.soc_fraction,
                "soc_reduction": protected.soc_reduction,
                "slowdown": protected.slowdown,
            }
        )
    reductions = [p["soc_reduction"] for p in points]
    result = {
        "workload": workload_name,
        "config": best.get("config"),
        "points": points,
        "mean_reduction": sum(reductions) / len(reductions) if reductions else 0.0,
    }
    if use_cache:
        cache.store(key, result)
    return result
