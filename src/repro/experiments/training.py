"""Shared, memoised training for the figure drivers.

Figures 8 and 9 need a *protected module with the best configuration*; this
helper trains once per (workload, scale, seed, labeling) per process and
hands out protected variants, so the scalability and input-variation
drivers don't repeat the campaign + grid search that the full evaluation
already describes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..core.pipeline import CollectedData, IpasPipeline, LABEL_SOC, collect_data
from ..core.scale import ExperimentScale
from ..workloads.base import Workload
from ..workloads.registry import get_workload

_PIPELINES: Dict[Tuple, IpasPipeline] = {}
_COLLECTIONS: Dict[Tuple, CollectedData] = {}


def get_collection(
    workload_name: str,
    scale: ExperimentScale,
    seed: int,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> CollectedData:
    key = (workload_name, scale.cache_key(), seed)
    if key not in _COLLECTIONS:
        workload = get_workload(workload_name)
        _COLLECTIONS[key] = collect_data(
            workload, scale.train_samples, seed=seed, n_jobs=n_jobs,
            supervision=supervision,
        )
    return _COLLECTIONS[key]


def get_pipeline(
    workload_name: str,
    scale: ExperimentScale,
    seed: int = 0,
    labeling: str = LABEL_SOC,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> IpasPipeline:
    key = (workload_name, scale.cache_key(), seed, labeling)
    if key not in _PIPELINES:
        workload = get_workload(workload_name)
        collected = get_collection(
            workload_name, scale, seed, n_jobs=n_jobs, supervision=supervision
        )
        pipeline = IpasPipeline(
            workload, scale, labeling, seed=seed, collected=collected
        )
        pipeline.train()
        _PIPELINES[key] = pipeline
    return _PIPELINES[key]


def best_protected_variant(
    workload_name: str,
    scale: ExperimentScale,
    seed: int = 0,
    labeling: str = LABEL_SOC,
    best_config: Optional[Dict] = None,
    n_jobs: Optional[int] = None,
    supervision=None,
):
    """Protect with the trained configuration matching ``best_config``
    (a ``{"C": ..., "gamma": ...}`` dict, e.g. from a cached full
    evaluation), or with the top-F-score configuration when not given."""
    pipeline = get_pipeline(
        workload_name, scale, seed, labeling, n_jobs=n_jobs, supervision=supervision
    )
    configs = pipeline.train()
    chosen = configs[0]
    if best_config is not None:
        for tc in configs:
            if math.isclose(tc.config.C, best_config["C"]) and math.isclose(
                tc.config.gamma, best_config["gamma"]
            ):
                chosen = tc
                break
    return pipeline.protect(chosen)


def clear_memos() -> None:
    """Drop the in-process training memos (tests use this)."""
    _PIPELINES.clear()
    _COLLECTIONS.clear()
