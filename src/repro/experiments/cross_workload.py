"""Cross-workload training (the paper's §8 SDCTune contrast).

IPAS trains on fault injections of the *target* code; the related SDCTune
approach trains on *different* codes and transfers the model.  Because the
Table-1 features are program-independent, both policies run on this
substrate — this driver quantifies what target-specific training buys by
protecting workload B with a classifier trained on workload A, for any
(A, B) pair.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.evaluation import evaluate_unprotected, evaluate_variant
from ..core.scale import ExperimentScale
from ..protect.duplication import duplicate_instructions
from ..protect.selectors import IpasSelector
from ..workloads.registry import get_workload
from . import cache
from .full_eval import EVAL_SEED_OFFSET
from .training import get_pipeline


def run_cross_workload(
    train_name: str,
    test_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """Protect ``test_name`` with a classifier trained on ``train_name``."""
    scale = scale or ExperimentScale.from_env()
    key = f"cross-{train_name}-to-{test_name}-{scale.cache_key()}-s{seed}"
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit

    pipeline = get_pipeline(
        train_name, scale, seed, "soc", n_jobs=n_jobs, supervision=supervision
    )
    trained = pipeline.train()[0]

    workload = get_workload(test_name)
    module = workload.compile()
    selector = IpasSelector(trained.model, trained.scaler)
    report = duplicate_instructions(module, selector.select(module))

    unprotected = evaluate_unprotected(
        workload, scale.eval_trials, seed=seed + EVAL_SEED_OFFSET, n_jobs=n_jobs,
        supervision=supervision,
    )
    evaluation = evaluate_variant(
        module,
        workload,
        unprotected.soc_fraction,
        unprotected.golden_cycles,
        "cross",
        f"{train_name}->{test_name}",
        scale.eval_trials,
        seed=seed + EVAL_SEED_OFFSET,
        duplicated_fraction=report.duplicated_fraction,
        n_jobs=n_jobs,
        supervision=supervision,
    )
    result = {
        "train": train_name,
        "test": test_name,
        "config": {"C": trained.config.C, "gamma": trained.config.gamma},
        "duplicated_fraction": report.duplicated_fraction,
        "unprotected_soc": unprotected.soc_fraction,
        "protected_soc": evaluation.soc_fraction,
        "soc_reduction": evaluation.soc_reduction,
        "slowdown": evaluation.slowdown,
    }
    if use_cache:
        cache.store(key, result)
    return result


def run_cross_workload_matrix(
    names: Sequence[str],
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """The full train×test SOC-reduction matrix over ``names``."""
    matrix = {}
    for train in names:
        row = {}
        for test in names:
            row[test] = run_cross_workload(
                train, test, scale, seed, use_cache, n_jobs=n_jobs,
                supervision=supervision,
            )
        matrix[train] = row
    diagonal = [matrix[n][n]["soc_reduction"] for n in names]
    off_diagonal = [
        matrix[a][b]["soc_reduction"] for a in names for b in names if a != b
    ]
    return {
        "names": list(names),
        "matrix": matrix,
        "mean_self_trained": sum(diagonal) / len(diagonal) if diagonal else 0.0,
        "mean_cross_trained": (
            sum(off_diagonal) / len(off_diagonal) if off_diagonal else 0.0
        ),
    }
