"""Cross-fault-model evaluation: how outcome mixes and protection
choices shift when the corruption model changes.

The paper's campaigns (and IPAS's training labels) assume a single
transient bit-flip.  This driver re-runs the same workload under every
registered :class:`~repro.faults.models.FaultModel` — unprotected and
under full duplication — and reports, per model:

* the outcome mix (symptom / detected / masked / SOC fractions),
* the duplication detection rate (how much of the single-bit safety net
  survives multi-bit, pattern, and multi-shot corruption),
* the set of static sites that produced an SOC — the labels an IPAS
  classifier would train on — and how that set shifts against the
  default model (sites gained/lost), i.e. how far a transient-1bit
  protection choice transfers to the other models.

``python -m repro.experiments.fault_models [workload]`` prints the
table; CI runs it as a smoke test.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..faults.campaign import Campaign
from ..faults.models import FAULT_MODELS, get_fault_model
from ..faults.outcomes import Outcome
from ..faults.parallel import run_campaign
from ..protect.duplication import duplicate_instructions
from ..protect.selectors import FullDuplicationSelector
from ..workloads.registry import get_workload
from .reporting import banner, format_table, outcome_row, percent

#: enough trials to see every outcome class without making CI crawl
DEFAULT_TRIALS = 80


def _site_key(inst) -> str:
    fn = inst.function
    block = inst.parent
    index = block.instructions.index(inst) if block is not None else -1
    return (
        f"{fn.name if fn else '?'}:"
        f"{block.name if block else '?'}[{index}]"
    )


def _run(workload, module, model, trials, seed, n_jobs):
    interp = workload.make_interpreter(1, module=module)
    campaign = Campaign(
        interp,
        verifier=workload.verifier(),
        budget_factor=workload.budget_factor,
        fault_model=model,
    )
    return run_campaign(campaign, trials, seed=seed, n_jobs=n_jobs)


def run_fault_model_evaluation(
    workload_name: str = "fft",
    model_specs: Optional[Sequence[str]] = None,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> Dict:
    """Outcome mixes and SOC-site shifts for every fault model.

    Returns a JSON-compatible dict; the per-model entries appear in
    registry order (``model_specs`` overrides the sweep).  Each entry
    carries the unprotected and full-duplication outcome fractions, the
    unprotected SOC-site keys, and the gained/lost site sets relative to
    the default ``transient-1bit`` model.
    """
    specs = list(model_specs) if model_specs is not None else list(FAULT_MODELS)
    workload = get_workload(workload_name)
    protected_module = workload.compile()
    duplicate_instructions(
        protected_module, FullDuplicationSelector().select(protected_module)
    )

    entries: List[Dict] = []
    for spec in specs:
        model = get_fault_model(spec)
        unprotected = _run(workload, None, model, trials, seed, n_jobs)
        protected = _run(
            workload, protected_module, get_fault_model(spec), trials, seed, n_jobs
        )
        soc_sites = sorted(
            {
                _site_key(r.site.instruction)
                for r in unprotected.records
                if r is not None and r.outcome is Outcome.SOC
            }
        )
        entries.append(
            {
                "spec": model.spec(),
                "multi_shot": model.multi_shot,
                "unprotected": unprotected.counts.as_dict(),
                "protected": protected.counts.as_dict(),
                "soc_sites": soc_sites,
            }
        )

    baseline_sites = set(entries[0]["soc_sites"]) if entries else set()
    for entry in entries:
        sites = set(entry["soc_sites"])
        entry["sites_gained"] = sorted(sites - baseline_sites)
        entry["sites_lost"] = sorted(baseline_sites - sites)

    return {
        "kind": "ipas-fault-models",
        "workload": workload_name,
        "trials": trials,
        "seed": seed,
        "models": entries,
    }


def format_fault_model_table(result: Dict) -> str:
    """The per-model outcome table plus the protection-choice shift list."""
    headers = [
        "model", "symptom", "detected", "masked", "soc",
        "soc(full-dup)", "soc sites", "+sites", "-sites",
    ]
    rows = []
    for entry in result["models"]:
        rows.append(
            [entry["spec"]]
            + outcome_row(entry["unprotected"])
            + [
                percent(entry["protected"].get("soc", 0.0)),
                len(entry["soc_sites"]),
                len(entry["sites_gained"]),
                len(entry["sites_lost"]),
            ]
        )
    lines = [
        banner(
            f"fault-model sweep — {result['workload']}, "
            f"{result['trials']} trials per campaign"
        ),
        format_table(headers, rows),
        "",
        "+sites/-sites: unprotected SOC sites gained/lost vs "
        "transient-1bit — the label shift an IPAS classifier would "
        "train on under that model.",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="per-fault-model outcome and protection-shift sweep"
    )
    parser.add_argument("workload", nargs="?", default="fft")
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--models", default=None,
        help="comma-separated model specs (default: the full registry)",
    )
    args = parser.parse_args(argv)
    specs = args.models.split(",") if args.models else None
    result = run_fault_model_evaluation(
        args.workload, specs, trials=args.trials, seed=args.seed, n_jobs=args.jobs
    )
    print(format_fault_model_table(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
