"""JSON disk cache for experiment results.

Full IPAS evaluations take minutes per workload; benchmarks and examples
share results through this cache so re-running a bench (or regenerating a
different figure over the same data) is instant.  Keys embed the experiment
name, workload, scale, seed, and a schema version; bump
:data:`SCHEMA_VERSION` when result shapes change.

Set ``IPAS_CACHE_DIR`` to relocate the cache; ``IPAS_NO_CACHE=1`` disables
reads (results are still written).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Callable, Dict, Optional

SCHEMA_VERSION = 3


def cache_dir() -> Path:
    root = os.environ.get("IPAS_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / ".ipas_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _path_for(key: str) -> Path:
    safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in key)
    if safe != key:
        # Sanitization is lossy ('a/b' and 'a:b' both map to 'a_b'); a short
        # digest of the raw key keeps distinct keys in distinct files.  Keys
        # that are already filesystem-safe keep their historical paths.
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
        safe = f"{safe}-{digest}"
    return cache_dir() / f"v{SCHEMA_VERSION}-{safe}.json"


def load(key: str) -> Optional[Dict]:
    if os.environ.get("IPAS_NO_CACHE"):
        return None
    path = _path_for(key)
    if not path.exists():
        return None
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def store(key: str, value: Dict) -> None:
    path = _path_for(key)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        json.dump(value, fh, indent=1)
    tmp.replace(path)


def cached(key: str, compute: Callable[[], Dict]) -> Dict:
    """Return the cached value for ``key`` or compute-and-store it."""
    hit = load(key)
    if hit is not None:
        return hit
    value = compute()
    store(key, value)
    return value
