"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal and in the captured ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def percent(fraction: float, digits: int = 1) -> str:
    return f"{100.0 * fraction:.{digits}f}%"


def outcome_row(counts: Dict[str, float]) -> List[str]:
    """symptom / detected / masked / soc percentages from a counts dict."""
    symptom = counts.get("crash", 0.0) + counts.get("hang", 0.0)
    return [
        percent(symptom),
        percent(counts.get("detected", 0.0)),
        percent(counts.get("masked", 0.0)),
        percent(counts.get("soc", 0.0)),
    ]


def banner(title: str) -> str:
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
