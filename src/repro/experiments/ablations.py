"""Ablation studies for the design choices the paper calls out.

* **Classifier choice** (§4.3.1): SVM vs decision tree vs k-NN on the same
  labeled fault-injection data, scored by held-out Eq.-1 F-score.
* **Training-set size** (§4.1, §6.3): learning curve of the CV F-score as
  the number of fault-injection samples grows.
* **Feature categories** (Table 1): CV F-score with each category removed,
  and with each category alone.
* **Top-N configurations** (§6.1): how the ideal-point best changes when
  only the top 3 instead of the top 5 configurations are considered.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.scale import ExperimentScale
from ..features.extract import FEATURE_CATEGORIES, NUM_FEATURES
from ..ml.crossval import GridSearch, paper_grid, stratified_kfold
from ..ml.dtree import DecisionTreeClassifier, KNeighborsClassifier
from ..ml.metrics import fscore_eq1
from ..ml.scaling import StandardScaler
from ..ml.svm import SVC
from . import cache
from .full_eval import best_by_ideal_point, run_full_evaluation
from .training import get_collection, get_pipeline


def _labeled_data(
    workload_name: str,
    scale: ExperimentScale,
    seed: int,
    n_jobs: Optional[int] = None,
    supervision=None,
):
    pipeline = get_pipeline(
        workload_name, scale, seed, "soc", n_jobs=n_jobs, supervision=supervision
    )
    data = pipeline.collect_training_data()
    return data.X, data.y


def _holdout_fscore(model_factory, X, y, seed: int = 0) -> float:
    """Mean Eq.-1 F-score over stratified 5-fold held-out splits."""
    scores = []
    for train, test in stratified_kfold(y, k=5, seed=seed):
        scaler = StandardScaler().fit(X[train])
        model = model_factory()
        model.fit(scaler.transform(X[train]), y[train])
        pred = model.predict(scaler.transform(X[test]))
        scores.append(fscore_eq1(y[test], pred))
    return float(np.mean(scores)) if scores else 0.0


def run_classifier_ablation(
    workload_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """SVM vs decision tree vs k-NN on identical data (§4.3.1)."""
    scale = scale or ExperimentScale.from_env()
    key = f"abl-classifier-{workload_name}-{scale.cache_key()}-s{seed}"
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit
    X, y = _labeled_data(
        workload_name, scale, seed, n_jobs=n_jobs, supervision=supervision
    )
    # Give the SVM its tuned hyper-parameters, the comparators reasonable ones.
    best = GridSearch(grid=paper_grid(min(scale.grid_configs, 30)), k=3).top_configs(
        StandardScaler().fit_transform(X), y, n=1
    )[0]
    classifiers = {
        "svm": lambda: SVC(C=best.C, gamma=best.gamma),
        "decision_tree": lambda: DecisionTreeClassifier(max_depth=8),
        "knn": lambda: KNeighborsClassifier(k=5),
    }
    result = {
        "workload": workload_name,
        "positive_fraction": float(np.mean(y)),
        "scores": {
            name: _holdout_fscore(factory, X, y, seed)
            for name, factory in classifiers.items()
        },
    }
    if use_cache:
        cache.store(key, result)
    return result


def run_training_size_ablation(
    workload_name: str,
    sizes: tuple = (50, 100, 200, 400),
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """Learning curve over the number of fault-injection samples."""
    scale = scale or ExperimentScale.from_env()
    key = (
        f"abl-trainsize-{workload_name}-{scale.cache_key()}-s{seed}-"
        f"{'x'.join(map(str, sizes))}"
    )
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit
    X, y = _labeled_data(
        workload_name, scale, seed, n_jobs=n_jobs, supervision=supervision
    )
    rng = np.random.RandomState(seed)
    points: List[Dict] = []
    for size in sizes:
        size = min(size, len(y))
        # Stratified subsample: keep the class ratio of the full set.
        pos = np.nonzero(y == 1)[0]
        neg = np.nonzero(y == 0)[0]
        n_pos = max(int(round(size * len(pos) / len(y))), min(2, len(pos)))
        n_neg = size - n_pos
        idx = np.concatenate(
            [
                rng.choice(pos, size=min(n_pos, len(pos)), replace=False),
                rng.choice(neg, size=min(n_neg, len(neg)), replace=False),
            ]
        )
        Xs, ys = X[idx], y[idx]
        if len(np.unique(ys)) < 2:
            points.append({"size": int(size), "fscore": 0.0})
            continue
        best = GridSearch(grid=paper_grid(12), k=3).top_configs(
            StandardScaler().fit_transform(Xs), ys, n=1
        )[0]
        score = _holdout_fscore(lambda: SVC(C=best.C, gamma=best.gamma), Xs, ys, seed)
        points.append({"size": int(size), "fscore": score})
    result = {"workload": workload_name, "points": points}
    if use_cache:
        cache.store(key, result)
    return result


def run_feature_ablation(
    workload_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """CV F-score with each Table-1 category removed / used alone."""
    scale = scale or ExperimentScale.from_env()
    key = f"abl-features-{workload_name}-{scale.cache_key()}-s{seed}"
    if use_cache:
        hit = cache.load(key)
        if hit is not None:
            return hit
    X, y = _labeled_data(
        workload_name, scale, seed, n_jobs=n_jobs, supervision=supervision
    )

    def score_with(columns: List[int]) -> float:
        Xm = X[:, columns]
        best = GridSearch(grid=paper_grid(12), k=3).top_configs(
            StandardScaler().fit_transform(Xm), y, n=1
        )[0]
        return _holdout_fscore(lambda: SVC(C=best.C, gamma=best.gamma), Xm, y, seed)

    all_columns = list(range(NUM_FEATURES))
    result: Dict = {
        "workload": workload_name,
        "all_features": score_with(all_columns),
        "without": {},
        "only": {},
    }
    for category, columns in FEATURE_CATEGORIES.items():
        remaining = [c for c in all_columns if c not in columns]
        result["without"][category] = score_with(remaining)
        result["only"][category] = score_with(list(columns))
    if use_cache:
        cache.store(key, result)
    return result


def run_topn_ablation(
    workload_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    use_cache: bool = True,
    n_jobs: Optional[int] = None,
    supervision=None,
) -> Dict:
    """§6.1: does top-3 already contain the ideal-point best of top-5?"""
    scale = scale or ExperimentScale.from_env()
    full = run_full_evaluation(
        workload_name, scale, seed, use_cache=use_cache, n_jobs=n_jobs,
        supervision=supervision,
    )
    entries = full["ipas"]
    best5 = best_by_ideal_point(entries)
    best3 = best_by_ideal_point(entries[: min(3, len(entries))])
    return {
        "workload": workload_name,
        "top5_best": {
            "label": best5.get("label"),
            "soc_reduction": best5["soc_reduction"],
            "slowdown": best5["slowdown"],
        },
        "top3_best": {
            "label": best3.get("label"),
            "soc_reduction": best3["soc_reduction"],
            "slowdown": best3["slowdown"],
        },
        "same_choice": best5.get("label") == best3.get("label"),
    }
