"""Classic dataflow analyses: liveness and reaching block distances.

Liveness backs dead-code elimination sanity checks and tests; the
"distance to return" analysis computes feature 20 of Table 1 (remaining
instructions to reach a return), defined here as the minimum number of
instructions executed from a given instruction to any ``ret``, assuming each
block on the path executes once (a static shortest-path measure).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction, PhiNode, RetInst
from ..ir.values import Value
from .cfg import postorder, predecessor_map


def block_liveness(fn: Function) -> Tuple[Dict[BasicBlock, Set[Value]], Dict[BasicBlock, Set[Value]]]:
    """Backward liveness: per-block (live_in, live_out) sets of SSA values."""
    use: Dict[BasicBlock, Set[Value]] = {}
    defs: Dict[BasicBlock, Set[Value]] = {}
    for block in fn.blocks:
        u: Set[Value] = set()
        d: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, PhiNode):
                # Phi operands are live at the end of the predecessor, not
                # here; treat the phi result as a def at block entry.
                d.add(inst)
                continue
            for op in inst.operands:
                if isinstance(op, Instruction) and op not in d:
                    u.add(op)
            if inst.produces_value():
                d.add(inst)
        # Values feeding *successor* phis are live-out of this block.
        use[block] = u
        defs[block] = d

    phi_uses: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}
    for block in fn.blocks:
        for phi in block.phis():
            for value, pred in phi.incoming():
                if isinstance(value, Instruction):
                    phi_uses[pred].add(value)

    live_in: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}
    live_out: Dict[BasicBlock, Set[Value]] = {b: set() for b in fn.blocks}
    order = postorder(fn)
    changed = True
    while changed:
        changed = False
        for block in order:
            out: Set[Value] = set(phi_uses[block])
            for succ in block.successors():
                out |= live_in[succ]
            new_in = use[block] | (out - defs[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True
    return live_in, live_out


def distance_to_return(fn: Function) -> Dict[BasicBlock, int]:
    """For every block, the minimum number of instructions executed from the
    *end* of the block to (and including) the nearest ``ret``.

    Computed as a shortest path on the reversed CFG with block instruction
    counts as edge weights (Dijkstra; all weights non-negative).  Blocks that
    cannot reach a return get a large sentinel distance.
    """
    INF = 10**9
    dist: Dict[BasicBlock, int] = {b: INF for b in fn.blocks}
    heap: List[Tuple[int, int, BasicBlock]] = []
    counter = 0
    for block in fn.blocks:
        if isinstance(block.terminator, RetInst):
            dist[block] = 0
            heapq.heappush(heap, (0, counter, block))
            counter += 1
    preds = predecessor_map(fn)
    while heap:
        d, _, block = heapq.heappop(heap)
        if d > dist[block]:
            continue
        for pred in preds[block]:
            # From the end of `pred` we execute all of `block`'s instructions
            # (then continue toward the return).
            nd = d + len(block.instructions)
            if nd < dist[pred]:
                dist[pred] = nd
                heapq.heappush(heap, (nd, counter, pred))
                counter += 1
    return dist


def instructions_to_return(inst: Instruction) -> int:
    """Feature 20: minimum instructions from ``inst`` to reach a return."""
    block = inst.parent
    if block is None or block.parent is None:
        raise ValueError("instruction is not attached to a function")
    fn = block.parent
    dist = distance_to_return(fn)
    remaining_in_block = len(block.instructions) - block.index_of(inst) - 1
    if isinstance(block.terminator, RetInst):
        return remaining_in_block
    d = dist.get(block, 10**9)
    if d >= 10**9:
        return remaining_in_block  # no path to a return (infinite loop)
    return remaining_in_block + d
