"""Injection-free static SOC-risk estimation.

IPAS labels instructions as SOC-generating by running statistical fault
injection per workload (paper §3, Fig. 1) — accurate but expensive.  This
module derives a per-instruction **static risk score** from the IR alone,
combining two ingredients:

* **observability** — the max-product, over all def-use paths from the
  instruction to an observable effect (a store into an ``output`` global, a
  ``print_*`` intrinsic argument, an MPI data-movement buffer), of the
  per-edge bit-masking transfer coefficients of
  :mod:`repro.analysis.masking`.  A value that funnels through comparisons
  or truncations before reaching the output carries little risk; a value
  stored verbatim into an output array carries a lot.  The propagation
  crosses calls (actual → formal, return → call site) and memory
  (store → loads of the same object, the slicer's object-granular model).
* **execution weight** — instructions inside (nested) loops execute more
  dynamic instances, so a static fault-site there is proportionally more
  likely to be hit and to matter.

``risk = observability × (1 − 2^−(1 + loop_depth))`` keeps both factors in
``[0, 1]``.  The absolute values are heuristic; what the selector and the
diagnostics consume is the *ordering*, which matches what the injection
campaigns find: output-store feeders in hot loops first, dead-end and
compare-bound values last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..ir.instructions import (
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    RetInst,
    SelectInst,
    StoreInst,
)
from ..ir.function import Function
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, Value
from .loops import LoopInfo
from .masking import local_absorption, operand_transfer
from .slicing import SliceContext, underlying_object

#: Instruction classes the duplication pass can clone (kept in sync with
#: :func:`repro.protect.duplication.is_duplicable`; duplicated here to keep
#: the analysis layer import-independent of the protection layer).
DUPLICABLE_TYPES = (
    BinaryOperator,
    GEPInst,
    CastInst,
    ICmpInst,
    FCmpInst,
    SelectInst,
)

#: Intrinsics that move data between ranks or buffers; a corrupted value
#: entering them is treated as (nearly) observable.
_DATA_MOVEMENT_PREFIXES = ("mpi_allreduce", "mpi_bcast", "mpi_sendrecv")
_DATA_MOVEMENT_TRANSFER = 0.8

#: Observability of a store whose target object cannot be resolved
#: statically: it may or may not be (aliased with) an output.
_UNKNOWN_STORE_SCORE = 0.5


class ObservabilityAnalysis:
    """Max-product reachability from every value to an observable effect.

    ``score(v)`` estimates the probability that a single flipped bit in
    value ``v`` survives, through the masking model's transfer
    coefficients, into the program's observable output.  Computed as a
    monotone fixpoint over the module's def-use graph (plus the memory and
    interprocedural channels); converges because scores only grow and are
    bounded by 1.
    """

    #: fixpoint controls: scores move monotonically, so a round cap is a
    #: safety net, not a precision knob.
    MAX_ROUNDS = 100
    EPSILON = 1e-9

    def __init__(self, module: Module, context: Optional[SliceContext] = None):
        self.module = module
        self.context = context if context is not None else SliceContext(module)
        self._score: Dict[int, float] = {}
        self._values: List[Value] = []
        for fn in module.defined_functions():
            for arg in fn.args:
                self._register(arg)
            for inst in fn.instructions():
                if inst.produces_value():
                    self._register(inst)
        self._branch_ceiling: Dict[int, float] = {}
        self._solve()

    def _register(self, value: Value) -> None:
        if id(value) not in self._score:
            self._score[id(value)] = 0.0
            self._values.append(value)

    # -- public API -----------------------------------------------------------

    def score(self, value: Value) -> float:
        """Observability of ``value`` in [0, 1]; 0 for unknown values."""
        return self._score.get(id(value), 0.0)

    # -- fixpoint -------------------------------------------------------------

    def _solve(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            self._branch_ceiling = self._store_ceilings()
            changed = False
            for value in self._values:
                updated = self._evaluate(value)
                if updated > self._score[id(value)] + self.EPSILON:
                    self._score[id(value)] = updated
                    changed = True
            if not changed:
                return

    def _store_ceilings(self) -> Dict[int, float]:
        """Per function, the strongest store observability inside it — the
        budget a corrupted branch condition can unlock by re-steering
        control flow."""
        ceilings: Dict[int, float] = {}
        for fn in self.module.defined_functions():
            best = 0.0
            for inst in fn.instructions():
                if isinstance(inst, StoreInst):
                    best = max(best, self._store_out(inst))
            ceilings[id(fn)] = best
        return ceilings

    def _evaluate(self, value: Value) -> float:
        best = self._score[id(value)]
        for user, index in value.uses:
            flow = operand_transfer(user, index) * self._out(user, index)
            if flow > best:
                best = flow
            if best >= 1.0:
                break
        return best

    def _out(self, user: Instruction, index: int) -> float:
        """Observability downstream of ``user`` once a corrupted bit has
        reached its result (or, for void users, its side effect)."""
        if isinstance(user, StoreInst):
            return self._store_out(user)
        if isinstance(user, RetInst):
            fn = user.function
            if fn is None:
                return 0.0
            return max(
                (
                    self._score[id(call)]
                    for call in self.context.call_sites(fn)
                    if call.produces_value()
                ),
                default=0.0,
            )
        if isinstance(user, CallInst):
            return self._call_out(user, index)
        if isinstance(user, BranchInst):
            fn = user.function
            return self._branch_ceiling.get(id(fn), 0.0) if fn is not None else 0.0
        if user.produces_value():
            return self._score[id(user)]
        return 0.0

    def _store_out(self, store: StoreInst) -> float:
        obj = underlying_object(store.pointer)
        return self._object_out(obj)

    def _object_out(self, obj, depth: int = 0) -> float:
        if obj is None:
            return _UNKNOWN_STORE_SCORE
        if isinstance(obj, GlobalVariable) and obj.is_output:
            return 1.0
        if isinstance(obj, Argument) and depth < 4:
            # The formal aliases each call site's actual buffer; a write
            # through it lands in whatever object the caller passed.
            fn = obj.parent
            best = 0.0
            for call in self.context.call_sites(fn):
                actual = underlying_object(call.operands[obj.index])
                best = max(best, self._object_out(actual, depth + 1))
                if best >= 1.0:
                    return best
            aliased = best
        else:
            aliased = 0.0
        loads = max(
            (self._score[id(load)] for load in self.context.loads_of(obj)),
            default=0.0,
        )
        return max(aliased, loads)

    def _call_out(self, call: CallInst, index: int) -> float:
        callee = call.callee
        if not callee.is_declaration:
            return self._score.get(id(callee.args[index]), 0.0)
        name = callee.name
        if name.startswith("print_"):
            return 1.0
        if name.startswith(_DATA_MOVEMENT_PREFIXES):
            # Data shipped across ranks: observable through the remote
            # side, plus whatever the returned value feeds locally.
            local = self._score[id(call)] if call.produces_value() else 0.0
            return max(_DATA_MOVEMENT_TRANSFER, local)
        if call.produces_value():
            return self._score[id(call)]
        return 0.0


@dataclass
class RiskAssessment:
    """Static risk verdict for one instruction."""

    instruction: Instruction
    function: str
    block: str
    index: int
    opcode: str
    observability: float
    absorption: float
    loop_depth: int
    risk: float
    name: str = ""

    def to_dict(self) -> Dict:
        return {
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "opcode": self.opcode,
            "name": self.name,
            "observability": round(self.observability, 6),
            "absorption": round(self.absorption, 6),
            "loop_depth": self.loop_depth,
            "risk": round(self.risk, 6),
        }


@dataclass
class StaticRiskReport:
    """All assessments of one module, with ranking helpers."""

    module: Module
    assessments: List[RiskAssessment] = field(default_factory=list)

    def ranked(self) -> List[RiskAssessment]:
        """Assessments sorted by descending risk (stable on ties)."""
        return sorted(self.assessments, key=lambda a: -a.risk)

    def above(self, threshold: float) -> List[RiskAssessment]:
        return [a for a in self.assessments if a.risk >= threshold]

    def top_fraction(self, fraction: float) -> List[RiskAssessment]:
        """The highest-risk ``fraction`` of assessments (rounded up)."""
        if not self.assessments or fraction <= 0.0:
            return []
        count = max(1, round(fraction * len(self.assessments)))
        return self.ranked()[:count]

    def score_of(self, inst: Instruction) -> float:
        for a in self.assessments:
            if a.instruction is inst:
                return a.risk
        return 0.0


class StaticRiskModel:
    """Computes :class:`RiskAssessment`s for a module's instructions.

    Shares one :class:`ObservabilityAnalysis` and per-function
    :class:`LoopInfo` across all queries, so assessing every duplicable
    instruction of a module is a single fixpoint plus linear work.
    """

    def __init__(
        self,
        module: Module,
        observability: Optional[ObservabilityAnalysis] = None,
    ):
        self.module = module
        self.observability = observability or ObservabilityAnalysis(module)
        self._loops: Dict[int, LoopInfo] = {}

    def _loop_info(self, fn: Function) -> LoopInfo:
        cached = self._loops.get(id(fn))
        if cached is None:
            cached = LoopInfo(fn)
            self._loops[id(fn)] = cached
        return cached

    def assess(self, inst: Instruction) -> RiskAssessment:
        block = inst.parent
        if block is None or block.parent is None:
            raise ValueError(f"{inst!r} is not attached to a function")
        fn = block.parent
        depth = self._loop_info(fn).loop_nest_depth(block)
        observability = self.observability.score(inst)
        # Deeper loops execute more dynamic instances of the fault site:
        # weight 1 − 2^−(1+depth) rises from 0.5 toward 1 with nesting.
        exec_weight = 1.0 - 2.0 ** -(1 + depth)
        return RiskAssessment(
            instruction=inst,
            function=fn.name,
            block=block.name,
            index=block.index_of(inst),
            opcode=inst.opcode,
            observability=observability,
            absorption=local_absorption(inst),
            loop_depth=depth,
            risk=observability * exec_weight,
            name=inst.name,
        )

    def assess_many(self, instructions: Iterable[Instruction]) -> StaticRiskReport:
        report = StaticRiskReport(self.module)
        report.assessments = [self.assess(inst) for inst in instructions]
        return report

    def assess_module(self) -> StaticRiskReport:
        """Assessments for every duplicable instruction, in module order."""
        return self.assess_many(
            inst
            for inst in self.module.instructions()
            if isinstance(inst, DUPLICABLE_TYPES)
        )


def static_risk_report(module: Module) -> StaticRiskReport:
    """Convenience wrapper: the full static-risk report of ``module``."""
    return StaticRiskModel(module).assess_module()
