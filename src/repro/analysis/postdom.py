"""Post-dominator tree and control dependence.

Weiser's slicing algorithm includes *control dependence*: an instruction is
in the slice when a tainted value decides whether it executes.  Control
dependence is computed the classic way (Ferrante–Ottenstein–Warren): block B
is control-dependent on branch block A when B lies on the post-dominator
tree path from a successor of A up to (but excluding) A's immediate
post-dominator.

The post-dominator tree is the Cooper–Harvey–Kennedy iteration run on the
reversed CFG, rooted at a *virtual exit* (represented as ``None``) that all
``ret``/``unreachable`` blocks feed.  Blocks that cannot reach any exit
(infinite loops) conservatively get the virtual exit as their immediate
post-dominator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import predecessor_map, reachable_blocks

_VIRTUAL_INDEX = 1 << 30  # the virtual exit orders above every real block


class PostDominatorTree:
    """Immediate post-dominators; ``None`` is the virtual exit (the root)."""

    def __init__(self, fn: Function):
        self.function = fn
        self._blocks = reachable_blocks(fn)
        self._exits = {b for b in self._blocks if not b.successors()}
        self.ipdom: Dict[int, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        preds = predecessor_map(self.function)
        # Postorder of the reverse CFG from the exits (reverse-CFG roots
        # appear last, mirroring CHK's ordering requirement).
        seen: Set[BasicBlock] = set(self._exits)
        order: List[BasicBlock] = []
        stack = [(b, 0) for b in self._exits]
        while stack:
            block, index = stack[-1]
            nexts = preds[block]
            if index < len(nexts):
                stack[-1] = (block, index + 1)
                nxt = nexts[index]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(block)
        self._post_index: Dict[int, int] = {id(b): i for i, b in enumerate(order)}

        # Exits (and exit-unreachable blocks) hang directly off the root.
        for block in self._blocks:
            if block in self._exits or block not in seen:
                self.ipdom[id(block)] = None
        rpo = list(reversed(order))
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block in self._exits:
                    continue
                candidates = [
                    s
                    for s in block.successors()
                    if id(s) in self.ipdom or s in self._exits
                ]
                if not candidates:
                    continue
                new = candidates[0]
                for succ in candidates[1:]:
                    new = self._intersect(new, succ)
                if id(block) not in self.ipdom or self.ipdom[id(block)] is not new:
                    self.ipdom[id(block)] = new
                    changed = True

    def _index(self, block: Optional[BasicBlock]) -> int:
        if block is None:
            return _VIRTUAL_INDEX
        return self._post_index.get(id(block), _VIRTUAL_INDEX - 1)

    def _parent(self, block: Optional[BasicBlock]) -> Optional[BasicBlock]:
        if block is None:
            return None
        return self.ipdom.get(id(block))

    def _intersect(
        self, b1: Optional[BasicBlock], b2: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        while b1 is not b2:
            while self._index(b1) < self._index(b2):
                b1 = self._parent(b1)
            while self._index(b2) < self._index(b1):
                b2 = self._parent(b2)
        return b1

    # -- queries -------------------------------------------------------------------

    def immediate_post_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The parent in the post-dominator tree; None = virtual exit."""
        return self.ipdom.get(id(block))

    def post_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True when every path from ``b`` to the exit passes through ``a``
        (reflexive)."""
        node: Optional[BasicBlock] = b
        for _ in range(len(self._blocks) + 1):
            if node is a:
                return True
            if node is None:
                return False
            node = self._parent(node)
        return False


def control_dependence(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """controller block -> blocks control-dependent on its branch.

    For each CFG edge (A -> C): every block on the post-dominator-tree path
    from C up to, but excluding, ipdom(A) is control-dependent on A.
    """
    pdt = PostDominatorTree(fn)
    result: Dict[BasicBlock, Set[BasicBlock]] = {b: set() for b in fn.blocks}
    for a in fn.blocks:
        successors = a.successors()
        if len(successors) < 2:
            continue
        stop = pdt.immediate_post_dominator(a)
        for c in successors:
            runner: Optional[BasicBlock] = c
            guard = 0
            while runner is not None and runner is not stop:
                result[a].add(runner)
                runner = pdt.immediate_post_dominator(runner)
                guard += 1
                if guard > len(fn.blocks) + 2:
                    break
    return result
