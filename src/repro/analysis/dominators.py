"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy "engineered" iterative algorithm
("A Simple, Fast Dominance Algorithm") — the same algorithm LLVM's original
dominator construction was based on.  Used by the verifier (SSA dominance),
mem2reg (phi placement via dominance frontiers), and loop detection (back
edges).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import postorder, predecessor_map


class DominatorTree:
    """Immediate-dominator tree for the reachable CFG of one function."""

    def __init__(self, fn: Function):
        self.function = fn
        self._post = postorder(fn)
        self._post_index: Dict[BasicBlock, int] = {
            b: i for i, b in enumerate(self._post)
        }
        self.reachable_blocks: List[BasicBlock] = list(reversed(self._post))
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        self._children: Dict[BasicBlock, List[BasicBlock]] = {}
        self._compute()

    # -- construction (Cooper-Harvey-Kennedy) -----------------------------------

    def _compute(self) -> None:
        if not self.reachable_blocks:
            return
        entry = self.reachable_blocks[0]
        preds = predecessor_map(self.function)
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        rpo = self.reachable_blocks
        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                candidates = [
                    p for p in preds[block] if p in idom and p in self._post_index
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = self._intersect(new_idom, p, idom)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        idom[entry] = None
        self.idom = idom
        self._children = {b: [] for b in self.reachable_blocks}
        for block, parent in idom.items():
            if parent is not None:
                self._children[parent].append(block)

    def _intersect(
        self,
        b1: BasicBlock,
        b2: BasicBlock,
        idom: Dict[BasicBlock, Optional[BasicBlock]],
    ) -> BasicBlock:
        index = self._post_index
        f1, f2 = b1, b2
        while f1 is not f2:
            while index[f1] < index[f2]:
                f1 = idom[f1]  # type: ignore[assignment]
            while index[f2] < index[f1]:
                f2 = idom[f2]  # type: ignore[assignment]
        return f1

    # -- queries ------------------------------------------------------------------

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self._children.get(block, []))

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        node: Optional[BasicBlock] = b
        while node is not None:
            if node is a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominance_frontiers(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Dominance frontier of every reachable block (for phi placement)."""
        frontiers: Dict[BasicBlock, Set[BasicBlock]] = {
            b: set() for b in self.reachable_blocks
        }
        preds = predecessor_map(self.function)
        for block in self.reachable_blocks:
            block_preds = [p for p in preds[block] if p in self._post_index]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner: Optional[BasicBlock] = pred
                while runner is not None and runner is not self.idom[block]:
                    frontiers[runner].add(block)
                    runner = self.idom.get(runner)
        return frontiers

    def dfs_preorder(self) -> List[BasicBlock]:
        """Dominator-tree preorder (used by mem2reg's renaming walk)."""
        if not self.reachable_blocks:
            return []
        order: List[BasicBlock] = []
        stack = [self.reachable_blocks[0]]
        while stack:
            block = stack.pop()
            order.append(block)
            stack.extend(reversed(self._children.get(block, [])))
        return order
