"""Protection-coverage prover: sound per-site SOC-escape classification.

IPAS discovers which instructions produce silent output corruptions by
*injecting* faults (paper §3) and PR 1's static risk model *estimates* the
same probabilistically.  This module gives the third, qualitatively
different answer: a **sound verdict** per static fault site.  For every
injectable instruction it decides whether a transient single-bit flip in
the result register is

* ``DETECTED`` — every execution in which the flip changes observable
  output first runs an ``ipas.check.*`` comparison that must fire (the
  run aborts as detected; a flip may still be benign and complete
  cleanly, but it can never complete *silently corrupted*);
* ``MASKED``  — the flip provably never reaches observable output (dead
  value, bits killed on every first def-use hop, or a propagation cone
  that touches neither an output channel nor a check);
* ``ESCAPES`` — neither proof holds: some def-use path may carry the
  corruption to output without crossing a must-fire check.

The lattice is ``MASKED < DETECTED < ESCAPES`` in badness; only
``ESCAPES`` admits a dynamic SOC outcome, which is exactly the contract
the campaign sanitizer (:mod:`repro.faults.sanitizer`) enforces against
every real injection result.

Soundness argument (why DETECTED is a proof, not a heuristic)
-------------------------------------------------------------

The taint cone computed here is a *may-differ* over-approximation: a value
outside the cone equals its golden (fault-free) value in **every**
execution.  An ``ipas.check.*`` call compares an original ``x`` against
its shadow clone ``x.dup``; the interpreter fires on any difference
(both-NaN exempt).  If exactly one of the two operands lies inside the
cone, then on any execution where that operand differs from golden the
other operand is bit-identical to golden, the comparison must fire, and
the run aborts as detected.  The duplication pass places the check
immediately after ``x.dup`` (itself immediately after ``x``) in the same
block, and basic blocks execute atomically in the interpreter, so no
consumer of ``x`` runs before the check: every execution that survives
past the check has ``x`` equal to golden.  A *guarded* value therefore
propagates nothing — the escape analysis cuts the cone there.  Guards are
judged against the **uncut** cone (if the clone is clean even when taint
spreads maximally, it is clean under any cut), which keeps the two-pass
scheme conservative.

Escape sinks mirror the observability model of :mod:`repro.analysis.risk`
but collapse it to a boolean must/may distinction: stores into globals
(all globals by default — the output verifier's capture set is not known
statically), stores through corrupted or unresolvable addresses,
``print_*`` and MPI data-movement arguments, returns from the entry
function, and corrupted branch conditions (control divergence can skip or
re-steer stores) all count as escapes.  First-hop bit masks reuse the
provable-kill patterns of :mod:`repro.analysis.masking` (``trunc``,
constant ``and``/``or`` masks, constant shifts) to prove per-bit masking
without simulating arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..ir.instructions import (
    AtomicRMWInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
)
from ..ir.intrinsics import is_check_intrinsic
from ..ir.module import Module
from ..ir.values import Argument, Constant, GlobalVariable, Value
from .slicing import SliceContext, underlying_object

#: Instruction classes whose result register the fault model may flip
#: (kept in sync with :func:`repro.faults.model.is_injectable`; the
#: analysis layer stays import-independent of the faults layer).
INJECTABLE_TYPES = (
    BinaryOperator,
    GEPInst,
    CastInst,
    ICmpInst,
    FCmpInst,
    SelectInst,
)

#: Declared intrinsics whose arguments reach an observable channel.
_OBSERVABLE_CALL_PREFIXES = ("print_", "mpi_allreduce", "mpi_bcast", "mpi_sendrecv")

#: Alias-resolution depth for stores through pointer formals (matches the
#: observability analysis).
_ALIAS_DEPTH = 4


class Verdict(Enum):
    """Per-site classification; ordered by badness."""

    MASKED = "masked"
    DETECTED = "detected"
    ESCAPES = "escapes"


def is_coverage_site(inst: Instruction) -> bool:
    """Whether the prover classifies this instruction (= fault-model eligible)."""
    if not inst.produces_value():
        return False
    if isinstance(inst, INJECTABLE_TYPES):
        return True
    if isinstance(inst, CallInst):
        return not is_check_intrinsic(inst.callee)
    return False


def _value_bits(inst: Instruction) -> int:
    t = inst.type
    if t.is_pointer():
        return 64
    return t.bits  # type: ignore[attr-defined]


def _surviving_mask(user: Instruction, index: int, bits: int) -> int:
    """Bit positions of operand ``index`` that can still change ``user``'s
    result — the provable-kill patterns of the masking model, exact.

    Anything not provably killed survives (conservative all-ones)."""
    full = (1 << bits) - 1
    if isinstance(user, CastInst) and user.opcode == "trunc":
        dst = user.type.bits  # type: ignore[attr-defined]
        return (1 << dst) - 1
    if isinstance(user, BinaryOperator):
        op = user.opcode
        other = user.operands[1 - index] if op in ("and", "or") else None
        if op == "and" and isinstance(other, Constant) and other.type.is_integer():
            return other.value & full
        if op == "or" and isinstance(other, Constant) and other.type.is_integer():
            return ~other.value & full
        if op in ("shl", "lshr", "ashr") and index == 0:
            amount = user.rhs
            if isinstance(amount, Constant) and bits:
                s = amount.value % bits
                if op == "shl":
                    # Bit i lands at i + s; the top s bits fall off.
                    return (1 << (bits - s)) - 1
                kept = (full >> s) << s  # bits >= s survive the right shift
                if op == "ashr":
                    kept |= 1 << (bits - 1)  # the sign bit replicates
                return kept
    return full


@dataclass
class SiteCoverage:
    """The prover's verdict for one static fault site."""

    instruction: Instruction
    function: str
    block: str
    index: int
    opcode: str
    name: str
    verdict: Verdict
    #: result bits provably killed on every first def-use hop
    masked_bits: int
    total_bits: int
    #: number of must-fire checks the (cut) cone reaches
    guards: int
    #: human-readable escape-sink descriptions (capped)
    escapes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "opcode": self.opcode,
            "name": self.name,
            "verdict": self.verdict.value,
            "masked_bits": self.masked_bits,
            "total_bits": self.total_bits,
            "guards": self.guards,
            "escapes": list(self.escapes),
        }


@dataclass
class CoverageReport:
    """All site verdicts of one module."""

    module: Module
    sites: List[SiteCoverage] = field(default_factory=list)

    def verdict_of(self, inst: Instruction) -> Optional[Verdict]:
        for s in self.sites:
            if s.instruction is inst:
                return s.verdict
        return None

    def with_verdict(self, verdict: Verdict) -> List[SiteCoverage]:
        return [s for s in self.sites if s.verdict is verdict]

    def summary(self) -> Dict[str, int]:
        counts = {v.value: 0 for v in Verdict}
        for s in self.sites:
            counts[s.verdict.value] += 1
        counts["sites"] = len(self.sites)
        return counts

    def to_dict(self) -> Dict:
        return {
            "module": self.module.name,
            "summary": self.summary(),
            "sites": [s.to_dict() for s in self.sites],
        }


class _Cone:
    """One may-differ propagation cone (a single BFS)."""

    __slots__ = ("values", "objects", "escapes", "guards_hit")

    def __init__(self):
        self.values: Set[int] = set()
        self.objects: Set[int] = set()
        self.escapes: List[str] = []
        self.guards_hit = 0


class CoverageAnalysis:
    """Classifies every fault site of a module (typically a protected one).

    ``observable_globals`` restricts which globals count as output; the
    default (``None``) treats **every** global store as observable, which
    is sound for any output verifier.  Check/duplicate pairing comes from
    the duplication pass's module metadata (``module.check_sites``) when
    present and is recovered structurally from the IR otherwise, so the
    prover also works on modules protected out-of-process and round-
    tripped through the printer.
    """

    #: cap on recorded escape descriptions per site (the set, not the
    #: verdict, is truncated)
    MAX_ESCAPES = 8

    def __init__(
        self,
        module: Module,
        context: Optional[SliceContext] = None,
        observable_globals: Optional[Iterable[str]] = None,
        entry: str = "main",
    ):
        self.module = module
        self.context = context if context is not None else SliceContext(module)
        self.observable_globals = (
            frozenset(observable_globals) if observable_globals is not None else None
        )
        self.entry = entry
        #: (original, duplicate) value pair per check call
        self.check_pairs: List[Tuple[Value, Value, CallInst]] = self._check_pairs()
        self._verdicts: Dict[int, SiteCoverage] = {}

    # -- check discovery ---------------------------------------------------------

    def _check_pairs(self) -> List[Tuple[Value, Value, CallInst]]:
        sites = getattr(self.module, "check_sites", None)
        if sites:
            pairs = []
            for site in sites:
                check = site.check
                # Metadata can outlive the IR it describes (a later pass
                # may erase the check); trust only attached calls.
                if check.parent is not None:
                    pairs.append((site.original, site.duplicate, check))
            return pairs
        pairs = []
        for inst in self.module.instructions():
            if (
                isinstance(inst, CallInst)
                and is_check_intrinsic(inst.callee)
                and len(inst.operands) == 2
            ):
                pairs.append((inst.operands[0], inst.operands[1], inst))
        return pairs

    # -- public API --------------------------------------------------------------

    def classify(self, inst: Instruction) -> SiteCoverage:
        cached = self._verdicts.get(id(inst))
        if cached is None:
            cached = self._classify(inst)
            self._verdicts[id(inst)] = cached
        return cached

    def analyze_module(self) -> CoverageReport:
        report = CoverageReport(self.module)
        for inst in self.module.instructions():
            if is_coverage_site(inst):
                report.sites.append(self.classify(inst))
        return report

    # -- classification ----------------------------------------------------------

    def _classify(self, inst: Instruction) -> SiteCoverage:
        block = inst.parent
        fn = inst.function
        bits = _value_bits(inst)
        meta = dict(
            instruction=inst,
            function=fn.name if fn else "?",
            block=block.name if block else "?",
            index=block.index_of(inst) if block else -1,
            opcode=inst.opcode,
            name=inst.name,
            total_bits=bits,
        )

        # First hop, per bit: a flipped bit matters only if some consumer
        # lets it through.  Check calls compare the full value, so a
        # directly-checked site keeps every bit alive (toward detection).
        surviving = 0
        has_user = False
        for user, index in inst.uses:
            has_user = True
            if isinstance(user, CallInst) and is_check_intrinsic(user.callee):
                surviving = (1 << bits) - 1
                break
            surviving |= _surviving_mask(user, index, bits)
        masked_bits = bits - bin(surviving).count("1")
        if not has_user or surviving == 0:
            return SiteCoverage(
                verdict=Verdict.MASKED,
                masked_bits=bits,
                guards=0,
                **meta,
            )

        # Pass 1: the uncut may-differ cone decides which checks are
        # one-sided (clean duplicate) and therefore must-fire guards.
        uncut = self._cone(inst, guarded=frozenset())
        guarded: Set[int] = set()
        for orig, dup, _check in self.check_pairs:
            orig_in = id(orig) in uncut.values
            dup_in = id(dup) in uncut.values
            if orig_in != dup_in:
                guarded.add(id(orig) if orig_in else id(dup))

        # Pass 2: guarded values are cut — every surviving execution has
        # them equal to golden, so they propagate nothing.
        cone = self._cone(inst, guarded=frozenset(guarded))
        if cone.escapes:
            verdict = Verdict.ESCAPES
        elif cone.guards_hit:
            verdict = Verdict.DETECTED
        else:
            verdict = Verdict.MASKED
        return SiteCoverage(
            verdict=verdict,
            masked_bits=masked_bits,
            guards=cone.guards_hit,
            escapes=cone.escapes[: self.MAX_ESCAPES],
            **meta,
        )

    # -- cone construction -------------------------------------------------------

    def _cone(self, root: Instruction, guarded: frozenset) -> _Cone:
        cone = _Cone()
        worklist: List[Value] = []

        def taint(value: Value) -> None:
            if id(value) in cone.values:
                return
            cone.values.add(id(value))
            if id(value) in guarded:
                cone.guards_hit += 1
                return  # cut: survivors carry the golden value past the check
            worklist.append(value)

        def escape(what: str) -> None:
            if len(cone.escapes) < self.MAX_ESCAPES:
                cone.escapes.append(what)

        taint(root)
        while worklist:
            value = worklist.pop()
            for user, index in value.uses:
                self._flow(value, user, index, cone, taint, escape)
        return cone

    def _flow(self, value, user, index, cone, taint, escape) -> None:
        if isinstance(user, StoreInst):
            if user.pointer is value:
                # A corrupted address writes some cell of some object —
                # statically unresolvable, so observable memory may change.
                escape(f"wild store in {self._where(user)}")
            if user.value is value:
                self._taint_object(
                    underlying_object(user.pointer), user, cone, taint, escape
                )
            return
        if isinstance(user, AtomicRMWInst):
            if index == 0:  # pointer operand
                escape(f"wild atomic in {self._where(user)}")
            else:
                self._taint_object(
                    underlying_object(user.operands[0]), user, cone, taint, escape
                )
            taint(user)
            return
        if isinstance(user, CallInst):
            if is_check_intrinsic(user.callee):
                return  # void; must-fire guards are handled by the cut
            callee = user.callee
            if callee.is_declaration:
                if callee.name.startswith(_OBSERVABLE_CALL_PREFIXES):
                    escape(f"{callee.name} argument in {self._where(user)}")
                if user.produces_value():
                    taint(user)
                return
            taint(callee.args[index])
            if user.produces_value():
                taint(user)
            return
        if isinstance(user, RetInst):
            fn = user.function
            if fn is None:
                return
            call_sites = self.context.call_sites(fn)
            if fn.name == self.entry or not call_sites:
                escape(f"return from {fn.name}")
            for call in call_sites:
                if call.produces_value():
                    taint(call)
            return
        if isinstance(user, BranchInst):
            # Control divergence can skip, repeat, or re-steer stores; the
            # prover does not model path sensitivity, so a corrupted
            # condition is an escape.
            escape(f"branch condition in {self._where(user)}")
            return
        if user.produces_value():
            taint(user)

    def _taint_object(self, obj, store, cone, taint, escape, depth: int = 0) -> None:
        if obj is None:
            escape(f"store to unresolved address in {self._where(store)}")
            return
        if isinstance(obj, GlobalVariable):
            observable = (
                self.observable_globals is None
                or obj.name in self.observable_globals
                or getattr(obj, "is_output", False)
            )
            if observable:
                escape(f"store to global {obj.name} in {self._where(store)}")
                return
        if isinstance(obj, Argument):
            if depth >= _ALIAS_DEPTH:
                escape(f"store through deep pointer formal in {self._where(store)}")
                return
            # The formal aliases each caller's actual buffer.
            for call in self.context.call_sites(obj.parent):
                actual = underlying_object(call.operands[obj.index])
                self._taint_object(actual, store, cone, taint, escape, depth + 1)
        if id(obj) in cone.objects:
            return
        cone.objects.add(id(obj))
        for load in self.context.loads_of(obj):
            taint(load)

    @staticmethod
    def _where(inst: Instruction) -> str:
        fn = inst.function
        block = inst.parent
        return f"{fn.name if fn else '?'}/{block.name if block else '?'}"


def coverage_report(
    module: Module,
    observable_globals: Optional[Iterable[str]] = None,
    entry: str = "main",
) -> CoverageReport:
    """Convenience wrapper: the full coverage report of ``module``."""
    return CoverageAnalysis(
        module, observable_globals=observable_globals, entry=entry
    ).analyze_module()
