"""Natural-loop detection (feature 17: "basic block is within a loop").

A back edge is a CFG edge ``t -> h`` where ``h`` dominates ``t``; the natural
loop of that edge is ``h`` plus every block that can reach ``t`` without
passing through ``h``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from ..ir.block import BasicBlock
from ..ir.function import Function
from .cfg import predecessor_map
from .dominators import DominatorTree


class Loop:
    """One natural loop: header plus body blocks."""

    __slots__ = ("header", "blocks", "back_edge_sources")

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock], latches: Set[BasicBlock]):
        self.header = header
        self.blocks: FrozenSet[BasicBlock] = frozenset(blocks)
        self.back_edge_sources: FrozenSet[BasicBlock] = frozenset(latches)

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    @property
    def depth_proxy(self) -> int:
        return len(self.blocks)

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)}>"


class LoopInfo:
    """All natural loops of one function, with a block->loops index."""

    def __init__(self, fn: Function, dom: DominatorTree = None):
        self.function = fn
        dom = dom or DominatorTree(fn)
        preds = predecessor_map(fn)
        reachable = set(dom.reachable_blocks)

        # Collect back edges and merge loops that share a header.
        loops_by_header: Dict[BasicBlock, Dict[str, Set[BasicBlock]]] = {}
        for block in dom.reachable_blocks:
            for succ in block.successors():
                if succ in reachable and dom.dominates(succ, block):
                    entry = loops_by_header.setdefault(
                        succ, {"blocks": {succ}, "latches": set()}
                    )
                    entry["latches"].add(block)
                    # Walk backwards from the latch collecting the body.
                    stack = [block]
                    while stack:
                        b = stack.pop()
                        if b in entry["blocks"]:
                            continue
                        entry["blocks"].add(b)
                        stack.extend(p for p in preds[b] if p in reachable)

        self.loops: List[Loop] = [
            Loop(header, parts["blocks"], parts["latches"])
            for header, parts in loops_by_header.items()
        ]
        self._membership: Dict[BasicBlock, List[Loop]] = {}
        for loop in self.loops:
            for block in loop.blocks:
                self._membership.setdefault(block, []).append(loop)

    def loops_containing(self, block: BasicBlock) -> List[Loop]:
        return list(self._membership.get(block, []))

    def in_loop(self, block: BasicBlock) -> bool:
        """Whether the block belongs to any natural loop (Table 1, feature 17)."""
        return block in self._membership

    def loop_nest_depth(self, block: BasicBlock) -> int:
        """Number of distinct loops containing the block (a nesting proxy)."""
        return len(self._membership.get(block, []))

    def __len__(self) -> int:
        return len(self.loops)
