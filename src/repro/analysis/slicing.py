"""Program slicing (paper §4.2, features 25–31).

IPAS characterises error propagation with the *forward slice* of an
instruction: the set of instructions its value can influence, computed with
Weiser's dataflow-closure algorithm.  Our implementation propagates taint
through four channels:

* **register dataflow** — def-use edges of the SSA graph;
* **memory dataflow** — a tainted value stored to memory taints the
  underlying object (alloca or global, found by chasing ``gep`` bases);
  every load from a tainted object joins the slice.  This is a
  flow-insensitive, object-granular approximation of Weiser's memory
  treatment — sound for slice *features* (it can only over-approximate);
* **interprocedural flow** — a tainted actual argument taints the callee's
  formal; a tainted returned value taints every call site's result;
* **control dependence** (optional, off by default for feature extraction) —
  if a tainted value decides a branch, the instructions in blocks
  control-dependent on that branch (Ferrante–Ottenstein–Warren, via the
  post-dominator tree — see :mod:`repro.analysis.postdom`) join the slice.

Backward slices (the dual closure over use-def edges) are provided for
completeness and for tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    BranchInst,
    CallInst,
    GEPInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable, Value

#: A memory "object": an alloca, a global, or a pointer argument.
MemObject = Union[AllocaInst, GlobalVariable, Argument]


def underlying_object(pointer: Value) -> Optional[MemObject]:
    """Chase ``gep`` chains to the allocation site of a pointer, if static."""
    seen = 0
    while isinstance(pointer, GEPInst):
        pointer = pointer.base
        seen += 1
        if seen > 1000:  # defensive: malformed cyclic IR
            return None
    if isinstance(pointer, (AllocaInst, GlobalVariable)):
        return pointer
    if isinstance(pointer, Argument) and pointer.type.is_pointer():
        return pointer
    return None


class SliceContext:
    """Precomputed module-level indexes shared across many slice queries.

    Feature extraction computes a slice per instruction, so the per-module
    indexes (loads by object, call sites by callee) are built once; the
    per-function control-dependence maps are built lazily on first use.
    """

    def __init__(self, module: Module):
        self.module = module
        self.loads_by_object: Dict[int, List[LoadInst]] = {}
        self.calls_by_callee: Dict[int, List[CallInst]] = {}
        self._object_of: Dict[int, Optional[MemObject]] = {}
        self._control_deps: Dict[int, Dict] = {}
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, LoadInst):
                    obj = underlying_object(inst.pointer)
                    self._object_of[id(inst)] = obj
                    if obj is not None:
                        self.loads_by_object.setdefault(id(obj), []).append(inst)
                elif isinstance(inst, CallInst):
                    self.calls_by_callee.setdefault(id(inst.callee), []).append(inst)

    def loads_of(self, obj: MemObject) -> List[LoadInst]:
        return self.loads_by_object.get(id(obj), [])

    def call_sites(self, fn: Function) -> List[CallInst]:
        return self.calls_by_callee.get(id(fn), [])

    def control_dependence_of(self, fn: Function) -> Dict:
        cached = self._control_deps.get(id(fn))
        if cached is None:
            from .postdom import control_dependence

            cached = control_dependence(fn)
            self._control_deps[id(fn)] = cached
        return cached


def forward_slice(
    inst: Instruction,
    context: Optional[SliceContext] = None,
    include_control: bool = False,
    max_size: Optional[int] = None,
) -> Set[Instruction]:
    """Weiser-style forward slice of ``inst`` (excluding ``inst`` itself).

    ``max_size`` bounds the closure for very hot feature-extraction loops;
    ``None`` computes the full slice.
    """
    fn = inst.function
    if fn is None:
        raise ValueError("instruction is not attached to a function")
    module = fn.parent
    if context is None and module is not None:
        context = SliceContext(module)

    sliced: Set[Instruction] = set()
    tainted_values: Set[int] = set()
    tainted_objects: Set[int] = set()
    worklist: List[Value] = []

    def taint_value(value: Value) -> None:
        if id(value) not in tainted_values:
            tainted_values.add(id(value))
            worklist.append(value)

    def add_instruction(user: Instruction) -> None:
        if user is not inst and user not in sliced:
            sliced.add(user)

    taint_value(inst)
    while worklist:
        if max_size is not None and len(sliced) >= max_size:
            break
        value = worklist.pop()
        for user in value.users:
            add_instruction(user)
            if isinstance(user, StoreInst):
                # Taint through memory only when the *stored value* or the
                # *address* is tainted (a corrupt address corrupts some cell).
                obj = underlying_object(user.pointer)
                if obj is not None and id(obj) not in tainted_objects:
                    tainted_objects.add(id(obj))
                    if context is not None:
                        for load in context.loads_of(obj):
                            add_instruction(load)
                            taint_value(load)
                continue
            if isinstance(user, CallInst) and context is not None:
                callee = user.callee
                if not callee.is_declaration:
                    for idx, arg in enumerate(user.operands):
                        if id(arg) in tainted_values:
                            taint_value(callee.args[idx])
                if user.produces_value():
                    taint_value(user)
                continue
            if isinstance(user, RetInst) and context is not None:
                for call in context.call_sites(user.function):
                    if call.produces_value():
                        add_instruction(call)
                        taint_value(call)
                continue
            if isinstance(user, BranchInst):
                if include_control:
                    for controlled in _controlled_instructions(user, context):
                        add_instruction(controlled)
                        if controlled.produces_value():
                            taint_value(controlled)
                continue
            if user.produces_value():
                taint_value(user)
    return sliced


def _controlled_instructions(
    branch: BranchInst, context: Optional[SliceContext]
) -> List[Instruction]:
    """Instructions control-dependent on ``branch``.

    With a context, uses exact Ferrante–Ottenstein–Warren control dependence
    (post-dominator based); without one, falls back to the branch's
    immediate successor blocks.
    """
    fn = branch.function
    if context is not None and fn is not None and branch.parent is not None:
        deps = context.control_dependence_of(fn)
        result: List[Instruction] = []
        for block in deps.get(branch.parent, ()):
            result.extend(block.instructions)
        return result
    result = []
    for succ in branch.successors():
        result.extend(succ.instructions)
    return result


def backward_slice(
    inst: Instruction,
    context: Optional[SliceContext] = None,
    max_size: Optional[int] = None,
) -> Set[Instruction]:
    """Use-def closure: the instructions whose values can affect ``inst``."""
    fn = inst.function
    if fn is None:
        raise ValueError("instruction is not attached to a function")
    sliced: Set[Instruction] = set()
    worklist: List[Instruction] = [inst]
    seen: Set[int] = {id(inst)}
    while worklist:
        if max_size is not None and len(sliced) >= max_size:
            break
        current = worklist.pop()
        for op in current.operands:
            if isinstance(op, Instruction) and id(op) not in seen:
                seen.add(id(op))
                sliced.add(op)
                worklist.append(op)
            elif isinstance(op, (GlobalVariable,)):
                continue
        if isinstance(current, LoadInst):
            obj = underlying_object(current.pointer)
            if obj is not None and current.function is not None:
                for other in current.function.instructions():
                    if (
                        isinstance(other, StoreInst)
                        and underlying_object(other.pointer) is obj
                        and id(other) not in seen
                    ):
                        seen.add(id(other))
                        sliced.add(other)
                        worklist.append(other)
    return sliced


class SliceStatistics:
    """The Table-1 slice features (25–31) of one forward slice."""

    __slots__ = (
        "size",
        "loads",
        "stores",
        "calls",
        "binary_ops",
        "allocas",
        "geps",
    )

    def __init__(self, sliced: Set[Instruction]):
        self.size = len(sliced)
        self.loads = 0
        self.stores = 0
        self.calls = 0
        self.binary_ops = 0
        self.allocas = 0
        self.geps = 0
        for s in sliced:
            if isinstance(s, LoadInst):
                self.loads += 1
            elif isinstance(s, StoreInst):
                self.stores += 1
            elif isinstance(s, CallInst):
                self.calls += 1
            elif s.is_binary_op():
                self.binary_ops += 1
            elif isinstance(s, AllocaInst):
                self.allocas += 1
            elif isinstance(s, GEPInst):
                self.geps += 1
