"""Control-flow-graph utilities over :class:`~repro.ir.function.Function`.

The IR stores successor edges on terminators; this module derives the rest:
predecessor maps, reachability, and the traversal orders that dominator
construction and the dataflow analyses need.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.block import BasicBlock
from ..ir.function import Function


def successor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    return {block: block.successors() for block in fn.blocks}


def predecessor_map(fn: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reachable_blocks(fn: Function) -> List[BasicBlock]:
    """Blocks reachable from the entry, in DFS discovery order."""
    if not fn.blocks:
        return []
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    stack = [fn.entry]
    while stack:
        block = stack.pop()
        if block in seen:
            continue
        seen.add(block)
        order.append(block)
        for succ in reversed(block.successors()):
            if succ not in seen:
                stack.append(succ)
    return order


def postorder(fn: Function) -> List[BasicBlock]:
    """Postorder DFS over reachable blocks (iterative, cycle-safe)."""
    if not fn.blocks:
        return []
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []
    # (block, successor iterator index) stack
    stack = [(fn.entry, 0)]
    seen.add(fn.entry)
    while stack:
        block, idx = stack[-1]
        succs = block.successors()
        if idx < len(succs):
            stack[-1] = (block, idx + 1)
            succ = succs[idx]
            if succ not in seen:
                seen.add(succ)
                stack.append((succ, 0))
        else:
            stack.pop()
            order.append(block)
    return order


def reverse_postorder(fn: Function) -> List[BasicBlock]:
    """Reverse postorder — the canonical forward-dataflow iteration order."""
    return list(reversed(postorder(fn)))


def remove_unreachable_blocks(fn: Function) -> int:
    """Delete blocks not reachable from the entry.  Returns count removed.

    Phi nodes in surviving blocks are updated to drop incoming entries from
    deleted predecessors.
    """
    reach = set(reachable_blocks(fn))
    dead = [b for b in fn.blocks if b not in reach]
    if not dead:
        return 0
    dead_set = set(dead)
    for block in fn.blocks:
        if block in dead_set:
            continue
        for phi in block.phis():
            for pred in list(phi.incoming_blocks):
                if pred in dead_set:
                    phi.remove_incoming(pred)
    for block in dead:
        # Sever all edges and operands so use-lists stay consistent.
        for inst in list(block.instructions):
            if inst.is_used():
                # Uses can only come from other dead blocks or phis already
                # cleaned; replace with undef to break the links.
                from ..ir.values import UndefValue

                inst.replace_all_uses_with(UndefValue(inst.type))
            inst.drop_operands()
            block.remove(inst)
        fn.remove_block(block)
    return len(dead)


def edges(fn: Function) -> List[tuple]:
    """All CFG edges as (from_block, to_block) pairs."""
    result = []
    for block in fn.blocks:
        for succ in block.successors():
            result.append((block, succ))
    return result
