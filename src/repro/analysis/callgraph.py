"""Call graph construction (direct calls only — the IR has no indirect calls)."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.function import Function
from ..ir.instructions import CallInst
from ..ir.module import Module


class CallGraph:
    """Caller→callee edges of a module, plus simple reachability queries."""

    def __init__(self, module: Module):
        self.module = module
        self.callees: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}
        for fn in module.functions.values():
            self.callees.setdefault(fn.name, set())
            self.callers.setdefault(fn.name, set())
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if isinstance(inst, CallInst):
                    self.callees[fn.name].add(inst.callee.name)
                    self.callers[inst.callee.name].add(fn.name)

    def callees_of(self, fn: Function) -> Set[str]:
        return set(self.callees.get(fn.name, set()))

    def callers_of(self, fn: Function) -> Set[str]:
        return set(self.callers.get(fn.name, set()))

    def reachable_from(self, root: str) -> Set[str]:
        """Function names transitively callable from ``root``."""
        seen: Set[str] = set()
        stack: List[str] = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.callees.get(name, ()))
        return seen

    def is_recursive(self, fn: Function) -> bool:
        """Whether ``fn`` can (transitively) call itself."""
        for callee in self.callees.get(fn.name, ()):
            if fn.name in {callee} | self.reachable_from(callee):
                return True
        return False

    def topological_order(self) -> List[str]:
        """Bottom-up order (callees before callers); cycles broken arbitrarily."""
        order: List[str] = []
        visited: Set[str] = set()
        in_stack: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            in_stack.add(name)
            for callee in sorted(self.callees.get(name, ())):
                if callee not in in_stack:
                    visit(callee)
            in_stack.discard(name)
            order.append(name)

        for name in sorted(self.callees):
            visit(name)
        return order
