"""repro.analysis — CFG, dominance, loops, slicing, dataflow, and static
SOC-risk analyses.

This module is the public surface of the analysis layer: import
``LoopInfo``, ``forward_slice``, ``StaticRiskModel`` and friends from here
rather than deep-importing the submodules."""

from .cfg import (
    edges,
    postorder,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
    successor_map,
)
from .dominators import DominatorTree
from .postdom import PostDominatorTree, control_dependence
from .loops import Loop, LoopInfo
from .callgraph import CallGraph
from .dataflow import block_liveness, distance_to_return, instructions_to_return
from .slicing import (
    SliceContext,
    SliceStatistics,
    backward_slice,
    forward_slice,
    underlying_object,
)
from .masking import local_absorption, operand_transfer
from .coverage import (
    CoverageAnalysis,
    CoverageReport,
    SiteCoverage,
    Verdict,
    coverage_report,
)
from .risk import (
    ObservabilityAnalysis,
    RiskAssessment,
    StaticRiskModel,
    StaticRiskReport,
    static_risk_report,
)

__all__ = [
    "edges", "postorder", "predecessor_map", "reachable_blocks",
    "remove_unreachable_blocks", "reverse_postorder", "successor_map",
    "DominatorTree", "PostDominatorTree", "control_dependence",
    "Loop", "LoopInfo", "CallGraph",
    "block_liveness", "distance_to_return", "instructions_to_return",
    "SliceContext", "SliceStatistics", "backward_slice", "forward_slice",
    "underlying_object",
    "local_absorption", "operand_transfer",
    "CoverageAnalysis", "CoverageReport", "SiteCoverage", "Verdict",
    "coverage_report",
    "ObservabilityAnalysis", "RiskAssessment", "StaticRiskModel",
    "StaticRiskReport", "static_risk_report",
]
