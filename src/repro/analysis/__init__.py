"""repro.analysis — CFG, dominance, loops, slicing, and dataflow analyses."""

from .cfg import (
    edges,
    postorder,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
    successor_map,
)
from .dominators import DominatorTree
from .postdom import PostDominatorTree, control_dependence
from .loops import Loop, LoopInfo
from .callgraph import CallGraph
from .dataflow import block_liveness, distance_to_return, instructions_to_return
from .slicing import (
    SliceContext,
    SliceStatistics,
    backward_slice,
    forward_slice,
    underlying_object,
)

__all__ = [
    "edges", "postorder", "predecessor_map", "reachable_blocks",
    "remove_unreachable_blocks", "reverse_postorder", "successor_map",
    "DominatorTree", "PostDominatorTree", "control_dependence",
    "Loop", "LoopInfo", "CallGraph",
    "block_liveness", "distance_to_return", "instructions_to_return",
    "SliceContext", "SliceStatistics", "backward_slice", "forward_slice",
    "underlying_object",
]
