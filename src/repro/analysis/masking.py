"""Abstract bit-masking transfer model for static SOC-risk estimation.

A single-bit flip injected into an instruction's result only becomes a
silent output corruption if it *survives* the dataflow between the faulty
value and an observable output.  Much of that survival probability is
statically derivable from the opcodes along the way (FastFlip; Meijer et
al., "Are We Lost in the Woods?"): a ``trunc`` discards high bits, an
``and`` with a sparse constant mask kills most bit positions, a comparison
collapses 64 bits into one, floating-point rounding absorbs low-order
mantissa bits, and so on.

This module assigns every (instruction, operand) edge a **transfer
coefficient** in ``[0, 1]``: the estimated probability that a uniformly
chosen flipped bit in that operand still changes the instruction's result.
The coefficients are deliberately coarse — they are an abstract domain, not
a bit-accurate simulation — but they order instructions the same way the
paper's injection campaigns do: values funnelling through comparisons and
truncations carry far less corruption risk than values flowing straight
into stores of output arrays.

:func:`operand_transfer` is the single entry point the observability
fixpoint in :mod:`repro.analysis.risk` builds on; :func:`local_absorption`
summarises, per instruction, how strongly its *consumers* attenuate a
corrupted result (a feature-friendly scalar).
"""

from __future__ import annotations

from typing import Optional

from ..ir.instructions import (
    AtomicRMWInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
)
from ..ir.values import Constant, Value

#: Transfer through a comparison: one flipped input bit rarely moves the
#: operand across the predicate boundary, so the ``i1`` result usually
#: stays put.  (Empirically, campaigns see ~90% masking on cmp operands.)
CMP_TRANSFER = 0.10

#: Floating-point arithmetic rounds: low-order mantissa flips of the
#: smaller addend are absorbed during alignment, so transfer < 1.
FP_ADD_TRANSFER = 0.85
FP_MUL_TRANSFER = 0.90
FP_REM_TRANSFER = 0.50

#: Transfer of a flipped bit through an intrinsic call (sqrt, sin, ...):
#: monotone libm functions propagate most of the perturbation, but
#: rounding and range compression absorb some of it.
INTRINSIC_TRANSFER = 0.80

#: A corrupted *address* operand (load/store/gep base) usually produces a
#: wild access and a symptom, not a silent corruption; the probability
#: that it lands on a valid cell and silently corrupts data is low.
ADDRESS_TRANSFER = 0.30


def _popcount_fraction(value: Value, ones: bool) -> Optional[float]:
    """Fraction of bit positions an ``and``/``or`` constant mask lets through."""
    if not isinstance(value, Constant) or not value.type.is_integer():
        return None
    bits = value.type.bits
    mask = value.value & ((1 << bits) - 1)
    passing = bin(mask).count("1") if ones else bits - bin(mask).count("1")
    return passing / bits


def _shift_fraction(inst: BinaryOperator) -> float:
    """Fraction of the value operand's bits a constant shift keeps."""
    bits = inst.type.bits  # type: ignore[attr-defined]
    amount = inst.rhs
    if isinstance(amount, Constant):
        kept = max(0, bits - (amount.value % bits if bits else 0))
        return kept / bits if bits else 0.0
    return 0.5  # unknown shift: half the bits survive in expectation


def _binary_transfer(inst: BinaryOperator, index: int) -> float:
    op = inst.opcode
    if op in ("add", "sub", "xor"):
        return 1.0
    if op == "mul":
        return 1.0
    if op in ("sdiv", "srem"):
        # Quotient truncation / modulus absorbs low dividend bits; a
        # corrupted divisor almost always changes the result.
        return 0.5 if index == 0 else 0.9
    if op == "and":
        other = inst.operands[1 - index]
        fraction = _popcount_fraction(other, ones=True)
        return fraction if fraction is not None else 0.5
    if op == "or":
        other = inst.operands[1 - index]
        fraction = _popcount_fraction(other, ones=False)
        return fraction if fraction is not None else 0.5
    if op in ("shl", "lshr", "ashr"):
        if index == 0:
            return _shift_fraction(inst)
        # Only the low log2(bits) bits of the shift amount matter.
        bits = inst.type.bits  # type: ignore[attr-defined]
        return max(1, bits.bit_length() - 1) / bits
    if op in ("fadd", "fsub"):
        return FP_ADD_TRANSFER
    if op in ("fmul", "fdiv"):
        return FP_MUL_TRANSFER
    if op == "frem":
        return FP_REM_TRANSFER
    return 1.0


def _cast_transfer(inst: CastInst) -> float:
    op = inst.opcode
    src = inst.value.type
    dst = inst.type
    if op == "trunc":
        return dst.bits / src.bits  # type: ignore[attr-defined]
    if op in ("zext", "sext", "bitcast"):
        return 1.0
    if op == "sitofp":
        # Ints up to 2^52 round-trip exactly into f64; call it near-lossless.
        return 0.95
    if op == "fptosi":
        # The fraction bits of the float are discarded entirely.
        return 0.60
    return 1.0


def operand_transfer(inst: Instruction, index: int) -> float:
    """Probability that a flipped bit in operand ``index`` of ``inst``
    survives into the instruction's result (or, for void instructions,
    into its side effect)."""
    if isinstance(inst, BinaryOperator):
        return _binary_transfer(inst, index)
    if isinstance(inst, (ICmpInst, FCmpInst)):
        return CMP_TRANSFER
    if isinstance(inst, CastInst):
        return _cast_transfer(inst)
    if isinstance(inst, SelectInst):
        # The condition picks an arm (full swing, but only if the arms
        # differ); each arm is forwarded roughly half the time.
        return 0.5
    if isinstance(inst, PhiNode):
        # A phi is a move along one incoming edge; the more edges, the
        # less often any particular one is the live producer.
        return 1.0 / max(1, len(inst.incoming_blocks))
    if isinstance(inst, GEPInst):
        # Both base and index flips fully corrupt the computed address.
        return 1.0
    if isinstance(inst, LoadInst):
        return ADDRESS_TRANSFER  # corrupted address: likely trap, not SOC
    if isinstance(inst, StoreInst):
        return 1.0 if index == 0 else ADDRESS_TRANSFER
    if isinstance(inst, AtomicRMWInst):
        return 1.0 if index == 1 else ADDRESS_TRANSFER
    if isinstance(inst, CallInst):
        callee = inst.callee
        if callee.is_declaration:
            return INTRINSIC_TRANSFER
        return 1.0  # defined callee: the formal carries the bits verbatim
    if isinstance(inst, RetInst):
        return 1.0
    if isinstance(inst, BranchInst):
        # Control-flow faults are out of the paper's scope (§3); a wrong
        # branch usually produces a detectable symptom, not a SOC.
        return CMP_TRANSFER
    return 1.0


def local_absorption(inst: Instruction) -> float:
    """How strongly ``inst``'s direct consumers attenuate a corrupted
    result: ``1 - max`` transfer over all uses (1.0 when unused).

    A value feeding only comparisons is almost fully absorbed (≈0.9);
    a value stored verbatim is not absorbed at all (0.0).
    """
    best = 0.0
    for user, index in inst.uses:
        best = max(best, operand_transfer(user, index))
        if best >= 1.0:
            break
    return 1.0 - best
