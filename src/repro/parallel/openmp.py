"""Simulated OpenMP: outlined parallel regions on shared memory.

The paper (§4.4.1) supports OpenMP through the standard lowering: the
compiler *outlines* each parallel region into a function that the runtime
invokes once per thread.  This module is that runtime, simulated: the user
(or a frontend) writes the outlined function explicitly —

    void region(int tid, int nthreads) { ... }    // an "outlined" region

— and :class:`OmpRegion` invokes it for every thread id against **shared**
memory (the same interpreter state), with per-thread cycle accounting.

Threads execute sequentially in tid order, which is semantically equivalent
to any interleaving for data-race-free regions (the only kind OpenMP
guarantees anything about) and keeps the simulation deterministic; for
cross-thread reductions the region should use ``atomicrmw`` (exposed by the
IR) or per-thread slots combined after the region, exactly as real OpenMP
code does.

Timing model: the region's wall time is the *maximum* of the per-thread
cycle counts (threads run concurrently on real hardware), plus a fixed
fork/join overhead; everything outside regions is serial.  Because IPAS
never instruments the runtime itself (paper §4.4.1), protected and
unprotected programs pay identical fork/join costs and the slowdown ratio
reflects computation only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..interp.compiler import CompiledModule
from ..interp.errors import ExecutionError
from ..interp.interpreter import Interpreter, RunResult
from ..ir.module import Module

#: fixed fork/join cost per parallel region (cycles)
FORK_JOIN_COST = 400


class OmpRegionResult:
    """Outcome of one parallel region execution."""

    def __init__(self, thread_cycles: List[int], status: str, error: str = ""):
        self.thread_cycles = thread_cycles
        self.status = status
        self.error = error

    @property
    def region_cycles(self) -> int:
        """Critical-path time: the slowest thread plus fork/join."""
        return max(self.thread_cycles, default=0) + FORK_JOIN_COST

    def __repr__(self) -> str:
        return f"<OmpRegionResult {self.status} threads={len(self.thread_cycles)}>"


class OmpRuntime:
    """Runs outlined parallel regions of one module on shared memory.

    The outlined function must take ``(int tid, int nthreads)`` (more
    arguments may follow; they are forwarded from ``run_region``).
    """

    def __init__(
        self,
        module_or_compiled: Union[Module, CompiledModule],
        nthreads: int,
    ):
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.interp = Interpreter(module_or_compiled)
        self.nthreads = nthreads
        self.serial_cycles = 0
        self.parallel_cycles = 0
        self._started = False

    def set_global_override(self, name: str, value) -> None:
        self.interp.set_global_override(name, value)

    def start(self) -> None:
        """Initialise shared memory (globals); call before the first region."""
        self.interp.reset()
        self.interp.budget = Interpreter.NO_BUDGET
        self._started = True

    def run_serial(self, entry: str, args: Tuple = ()) -> object:
        """Run a function serially on the shared state (setup/teardown)."""
        if not self._started:
            self.start()
        before = self.interp.cycles
        result = self.interp.call(self.interp.cm.get_function_index(entry), args)
        self.serial_cycles += self.interp.cycles - before
        return result

    def run_region(self, outlined: str, extra_args: Tuple = ()) -> OmpRegionResult:
        """Invoke ``outlined(tid, nthreads, *extra_args)`` for every thread.

        Threads share the interpreter's memory; each thread's cycles are
        measured separately and the region contributes the maximum (plus
        fork/join) to the job clock.
        """
        if not self._started:
            self.start()
        index = self.interp.cm.get_function_index(outlined)
        fn = self.interp.cm.cfuncs[index].fn
        if len(fn.args) < 2:
            raise ValueError(
                f"outlined function {outlined} must take (tid, nthreads, ...)"
            )
        thread_cycles: List[int] = []
        for tid in range(self.nthreads):
            before = self.interp.cycles
            try:
                self.interp.call(index, (tid, self.nthreads) + tuple(extra_args))
            except ExecutionError as exc:
                # A thread failing takes the whole region (and team) down.
                thread_cycles.append(self.interp.cycles - before)
                self.parallel_cycles += max(thread_cycles) + FORK_JOIN_COST
                return OmpRegionResult(
                    thread_cycles, "failed", f"{type(exc).__name__}: {exc}"
                )
            thread_cycles.append(self.interp.cycles - before)
        self.parallel_cycles += max(thread_cycles, default=0) + FORK_JOIN_COST
        return OmpRegionResult(thread_cycles, "ok")

    @property
    def job_cycles(self) -> int:
        """Serial time plus the accumulated critical paths of all regions."""
        return self.serial_cycles + self.parallel_cycles

    def read_global(self, name: str):
        return self.interp.read_global(name)
