"""Simulated MPI: SPMD ranks on threads with real collective semantics.

An :class:`MpiJob` runs one interpreter per rank (same compiled module,
private memory per rank), each on its own thread.  The ``mpi_*`` intrinsics
of a rank's program reach its :class:`RankMpi` context, which synchronises
through an abortable generation-counted rendezvous.

Failure semantics follow the paper (§4.4.1): when one rank dies — trap,
detected fault, hang — the rest of the job aborts, which surfaces as an
observable system-level symptom.  A rank that *finishes* while others still
wait in a collective also aborts the job (a real MPI run would deadlock and
be killed).

Timing: each rank accumulates its own deterministic cycle count; the job's
time is the maximum over ranks, which is how strong-scaling slowdown
(paper Fig. 8) is measured.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..interp.compiler import CompiledModule
from ..interp.errors import MpiAbort
from ..interp.interpreter import Interpreter, RunResult
from ..ir.module import Module


class _Rendezvous:
    """One reusable, abortable all-ranks synchronisation point with data."""

    def __init__(self, n_ranks: int, timeout: float):
        self.n = n_ranks
        self.timeout = timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        self._slots: List = [None] * n_ranks
        self._result = None
        self._aborted = False
        self._finished_ranks = 0

    def abort(self) -> None:
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def rank_finished(self) -> None:
        """A rank's main() returned; it will never arrive at a collective."""
        with self._cond:
            self._finished_ranks += 1
            self._cond.notify_all()

    def exchange(self, rank: int, value, reduce: Callable[[List], object]):
        """Deposit ``value``, wait for all ranks, return ``reduce(slots)``.

        The reduction runs exactly once per generation (by the last
        arriver), over slots in rank order — deterministic regardless of
        thread scheduling.
        """
        with self._cond:
            if self._aborted:
                raise MpiAbort("job aborted")
            generation = self._generation
            self._slots[rank] = value
            self._arrived += 1
            if self._arrived == self.n:
                self._result = reduce(list(self._slots))
                self._arrived = 0
                self._slots = [None] * self.n
                self._generation += 1
                self._cond.notify_all()
                return self._result
            deadline = self.timeout
            while self._generation == generation:
                if self._aborted:
                    raise MpiAbort("job aborted")
                if self._arrived + self._finished_ranks >= self.n:
                    # Someone finished instead of arriving: deadlock.
                    self._aborted = True
                    self._cond.notify_all()
                    raise MpiAbort("collective deadlock: a rank exited early")
                if not self._cond.wait(timeout=0.05):
                    deadline -= 0.05
                    if deadline <= 0:
                        self._aborted = True
                        self._cond.notify_all()
                        raise MpiAbort("collective timed out")
            return self._result


class RankMpi:
    """The per-rank MPI context handed to an Interpreter."""

    def __init__(self, job: "MpiJob", rank: int):
        self.job = job
        self.rank = rank
        self.size = job.n_ranks

    def _exchange(self, interp: Interpreter, value, reduce):
        # Collectives are irreversible: data left this rank.  Pin every
        # live recovery snapshot so a later rollback can never replay the
        # exchange (it would desynchronise the rendezvous generations).
        interp.recovery_pin()
        return self.job.rendezvous.exchange(self.rank, value, reduce)

    # -- scalar collectives ------------------------------------------------------

    def barrier(self, interp: Interpreter) -> None:
        self._exchange(interp, None, lambda slots: None)

    def allreduce_sum(self, interp: Interpreter, value):
        return self._exchange(interp, value, lambda s: sum(s))

    def allreduce_min(self, interp: Interpreter, value):
        return self._exchange(interp, value, lambda s: min(s))

    def allreduce_max(self, interp: Interpreter, value):
        return self._exchange(interp, value, lambda s: max(s))

    def bcast(self, interp: Interpreter, value, root: int):
        if not 0 <= root < self.size:
            interp.trap_mem(root)  # corrupt root rank id -> observable fault
        return self._exchange(interp, value, lambda s: s[root])

    # -- array collectives ----------------------------------------------------------

    def allreduce_array(self, interp: Interpreter, addr: int, count: int) -> None:
        if count < 0 or count > (1 << 24):
            interp.trap_mem(count)
        local = [interp.checked_load(addr + i) for i in range(count)]

        def reduce(slots: List) -> List:
            total = list(slots[0])
            for other in slots[1:]:
                for i in range(len(total)):
                    total[i] += other[i]
            return total

        result = self._exchange(interp, local, reduce)
        for i in range(count):
            interp.checked_store(addr + i, result[i])

    def sendrecv(
        self, interp: Interpreter, send_addr: int, recv_addr: int, count: int, peer: int
    ) -> None:
        if not 0 <= peer < self.size:
            interp.trap_mem(peer)
        if count < 0 or count > (1 << 24):
            interp.trap_mem(count)
        payload = [interp.checked_load(send_addr + i) for i in range(count)]

        def route(slots: List) -> List:
            # slots[r] = (peer, payload) sent by rank r; result indexed by
            # receiver: receiver r gets the payload whose sender addressed r.
            inbox: List = [None] * self.size
            for sender, (to, data) in enumerate(slots):
                inbox[to] = data
            return inbox

        inbox = self._exchange(interp, (peer, payload), route)
        received = inbox[self.rank]
        if received is None:
            raise MpiAbort(f"rank {self.rank}: no matching send")
        for i in range(min(count, len(received))):
            interp.checked_store(recv_addr + i, received[i])


class JobResult:
    """Aggregated outcome of one SPMD run."""

    def __init__(self, rank_results: List[Optional[RunResult]]):
        self.rank_results = rank_results
        self.statuses = [r.status if r else "abort" for r in rank_results]

    @property
    def status(self) -> str:
        """Job-level status with the paper's precedence: a duplication
        detection anywhere dominates, then crash symptoms, then hangs."""
        if any(s == "detected" for s in self.statuses):
            return "detected"
        if any(s == "trap" for s in self.statuses):
            return "trap"
        if any(s == "hang" for s in self.statuses):
            return "hang"
        if any(s == "abort" for s in self.statuses):
            return "abort"
        return "ok"

    @property
    def job_cycles(self) -> int:
        """Critical-path time: the slowest rank."""
        return max((r.cycles for r in self.rank_results if r is not None), default=0)

    def __repr__(self) -> str:
        return f"<JobResult {self.status} ranks={self.statuses}>"


class MpiJob:
    """Runs a module SPMD across ``n_ranks`` simulated MPI ranks."""

    def __init__(
        self,
        module_or_compiled: Union[Module, CompiledModule],
        n_ranks: int,
        overrides: Optional[Dict[str, object]] = None,
        collective_timeout: float = 30.0,
    ):
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if isinstance(module_or_compiled, CompiledModule):
            self.cm = module_or_compiled
        else:
            self.cm = CompiledModule(module_or_compiled)
        self.n_ranks = n_ranks
        self.overrides = dict(overrides or {})
        self.collective_timeout = collective_timeout
        self.rendezvous = _Rendezvous(n_ranks, collective_timeout)
        self.interpreters: List[Interpreter] = []
        for rank in range(n_ranks):
            interp = Interpreter(self.cm, mpi=RankMpi(self, rank))
            for name, value in self.overrides.items():
                interp.set_global_override(name, value)
            self.interpreters.append(interp)

    def run(
        self,
        entry: str = "main",
        cycle_budget: Optional[int] = None,
        injection: Optional[Tuple[Tuple, int]] = None,
        profile: bool = False,
        recovery=None,
    ) -> JobResult:
        """Run all ranks to completion.

        ``injection`` is an optional ``((instruction, occurrence, bit),
        rank)`` pair: the fault is injected into exactly one rank, as FlipIt
        does when it picks a random MPI rank.  ``profile=True`` collects
        per-rank block-execution profiles (``JobResult.rank_results[r].profile``),
        which parallel fault campaigns use to enumerate each rank's dynamic
        fault population.  ``recovery`` (a
        :class:`~repro.recover.RecoveryPolicy`) arms per-rank rollback
        re-execution; snapshots are pinned at every collective, so rollback
        never crosses communication — detections past the last collective
        recover, earlier ones escalate to the fail-stop detected status.
        """
        # Fresh rendezvous per run (previous runs may have aborted it).
        self.rendezvous = _Rendezvous(self.n_ranks, self.collective_timeout)
        for interp in self.interpreters:
            interp.mpi.job = self  # type: ignore[attr-defined]
        results: List[Optional[RunResult]] = [None] * self.n_ranks

        def worker(rank: int) -> None:
            interp = self.interpreters[rank]
            inj = None
            if injection is not None and injection[1] == rank:
                inj = injection[0]
            result = interp.run(
                entry, injection=inj, cycle_budget=cycle_budget, profile=profile,
                recovery=recovery,
            )
            results[rank] = result
            if result.status == "ok":
                self.rendezvous.rank_finished()
            else:
                # A failing rank takes the whole job down (paper §4.4.1).
                self.rendezvous.abort()

        threads = [
            threading.Thread(target=worker, args=(rank,), daemon=True)
            for rank in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.collective_timeout * 4)
        return JobResult(results)

    def read_global(self, name: str, rank: int = 0):
        return self.interpreters[rank].read_global(name)
