"""repro.parallel — simulated MPI (SPMD ranks, collectives, abort
semantics) and simulated OpenMP (outlined regions on shared memory)."""

from .mpi import JobResult, MpiJob, RankMpi
from .openmp import FORK_JOIN_COST, OmpRegionResult, OmpRuntime

__all__ = [
    "JobResult", "MpiJob", "RankMpi",
    "FORK_JOIN_COST", "OmpRegionResult", "OmpRuntime",
]
