"""repro — a reproduction of IPAS (Laguna et al., CGO 2016).

IPAS protects scientific applications against *silent output corruption*
(SOC) by learning, from fault-injection experiments, which instructions must
be duplicated — and duplicating only those.

Top-level convenience API::

    from repro import compile_source
    from repro.workloads import get_workload
    from repro.core import IpasPipeline

The heavy lifting lives in the subpackages:

=================  ==========================================================
``repro.ir``       typed SSA IR (the LLVM substitute)
``repro.frontend`` the scil language: lexer, parser, sema, IR codegen
``repro.analysis`` dominators, loops, call graph, Weiser slicing, liveness
``repro.passes``   mem2reg, constant folding, DCE, CFG simplification
``repro.interp``   IR interpreter, memory model, cycle cost model, traps
``repro.faults``   FlipIt-style statistical fault injection
``repro.features`` the 31 Table-1 instruction features
``repro.ml``       from-scratch SVM (SMO), decision tree, k-NN, CV, grids
``repro.protect``  instruction selectors + the duplication pass
``repro.recover``  rollback re-execution: fired checks become corrected runs
``repro.parallel`` simulated MPI (SPMD ranks, collectives, abort semantics)
``repro.workloads`` CoMD / HPCCG / AMG / FFT / IS in scil, with verification
``repro.core``     the IPAS pipeline (paper Fig. 1 steps 1-4) and evaluation
=================  ==========================================================
"""

__version__ = "1.0.0"

__all__ = ["__version__", "compile_source"]


def compile_source(source: str, name: str = "module", optimize: bool = True):
    """Compile scil source text to an optimized, verified IR module."""
    from .frontend import compile_to_ir

    return compile_to_ir(source, name=name, optimize=optimize)
