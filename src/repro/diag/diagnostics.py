"""Structured diagnostics for the IR tooling layer.

A :class:`Diagnostic` pins a finding to a (function, block, instruction)
location with a stable rule code and a severity; a
:class:`DiagnosticReport` aggregates them with the filtering and delta
operations the pass-manager debug mode and the ``repro analyze`` CLI need.

Severities:

* ``note`` — advisory; expected on healthy modules (e.g. unprotected
  high-risk instructions on a selectively protected module).
* ``warning`` — something is almost certainly wasted or wrong (dead
  store, unreachable block) but the module still runs correctly.
* ``error`` — a structural integrity violation (broken duplication path);
  ``repro analyze`` exits non-zero iff one of these is present.
"""

from __future__ import annotations

import enum
import json
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Ordered severity levels (comparisons follow the int ordering)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


class Diagnostic:
    """One finding of one lint rule, anchored to an IR location."""

    __slots__ = ("code", "severity", "message", "function", "block", "index", "name")

    def __init__(
        self,
        code: str,
        severity: Severity,
        message: str,
        function: str = "",
        block: str = "",
        index: Optional[int] = None,
        name: str = "",
    ):
        self.code = code
        self.severity = severity
        self.message = message
        self.function = function
        self.block = block
        self.index = index
        self.name = name

    @property
    def key(self) -> Tuple:
        """Identity used for delta comparison across pipeline stages."""
        return (self.code, self.function, self.block, self.name or self.index)

    def location(self) -> str:
        parts = self.function or "<module>"
        if self.block:
            parts += f"/{self.block}"
        if self.index is not None:
            parts += f"[{self.index}]"
        return parts

    def format(self) -> str:
        suffix = f" (%{self.name})" if self.name else ""
        return f"{self.severity.label}[{self.code}] {self.location()}: {self.message}{suffix}"

    def to_dict(self) -> Dict:
        return {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "name": self.name,
        }

    def __repr__(self) -> str:
        return f"<Diagnostic {self.format()}>"


class DiagnosticReport:
    """An ordered collection of diagnostics plus summary queries."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None):
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def sorted(self) -> "DiagnosticReport":
        """Most severe first, then by location for stable output."""
        return DiagnosticReport(
            sorted(
                self.diagnostics,
                key=lambda d: (-int(d.severity), d.function, d.block, d.index or 0, d.code),
            )
        )

    def filter(self, min_severity: Severity) -> "DiagnosticReport":
        return DiagnosticReport(
            d for d in self.diagnostics if d.severity >= min_severity
        )

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    @property
    def has_findings(self) -> bool:
        """Warnings or errors present (notes are advisory)."""
        return any(d.severity >= Severity.WARNING for d in self.diagnostics)

    def counts_by_severity(self) -> Dict[str, int]:
        counts = {s.label: 0 for s in Severity}
        for d in self.diagnostics:
            counts[d.severity.label] += 1
        return counts

    def delta(self, baseline: "DiagnosticReport") -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """``(introduced, fixed)`` relative to ``baseline`` by diagnostic key."""
        before = {d.key for d in baseline.diagnostics}
        after = {d.key for d in self.diagnostics}
        introduced = [d for d in self.diagnostics if d.key not in before]
        fixed = [d for d in baseline.diagnostics if d.key not in after]
        return introduced, fixed

    def summary(self) -> str:
        counts = self.counts_by_severity()
        parts = [
            f"{counts[s.label]} {s.label}{'s' if counts[s.label] != 1 else ''}"
            for s in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
        ]
        return ", ".join(parts)

    def to_dicts(self) -> List[Dict]:
        return [d.to_dict() for d in self.sorted()]

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dicts(), **kwargs)
