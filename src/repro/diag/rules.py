"""IR lint rules and the rule registry.

Each rule is a function from a shared :class:`LintContext` to an iterable
of :class:`~repro.diag.diagnostics.Diagnostic`; :func:`lint_rule` registers
it under a stable code.  :func:`run_lints` is the engine entry point used
by ``repro analyze`` and the pass-manager debug mode.

Codes:

* ``DS01`` (warning) — dead store: the stored-to object is never loaded
  and never escapes into a call, and it is not an ``output`` global.
* ``CF01`` (warning) — basic block unreachable from the function entry.
* ``DV01`` (note)    — dead value: a pure instruction whose result is
  never used (DCE fodder; expected mid-pipeline, gone after it).
* ``RISK01`` (note)  — on *protected* modules only: a duplicable
  instruction with static risk above the threshold was left unprotected.
* ``DUP01`` (error)  — duplication-path integrity: a duplicate either
  leaks into the original dataflow or never reaches an ``ipas.check``.
* ``DUP02`` (error)  — malformed check: an ``ipas.check`` call whose two
  operands cannot be an (original, duplicate) pair.
* ``COV01`` (warning) — redundant check: a post-dominating check on a
  difference-preserving chain subsumes it (check-redundancy elimination,
  :mod:`repro.passes.check_elim`, would remove it).
* ``COV02`` (warning) — check that can never fire: its block is
  unreachable, or its function is never called from the entry point.
* ``COV03`` (warning) — on protected modules: a high-risk fault site the
  coverage prover classifies as ``ESCAPES`` — protection was applied but
  this site can still corrupt output silently.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..analysis.cfg import reachable_blocks
from ..analysis.coverage import CoverageAnalysis, Verdict
from ..analysis.risk import DUPLICABLE_TYPES, StaticRiskModel, StaticRiskReport
from ..analysis.slicing import SliceContext, underlying_object
from ..ir.instructions import (
    AllocaInst,
    AtomicRMWInst,
    CallInst,
    GEPInst,
    Instruction,
    StoreInst,
)
from ..ir.intrinsics import is_check_intrinsic
from ..ir.module import Module
from ..ir.values import Argument, GlobalVariable
from .diagnostics import Diagnostic, DiagnosticReport, Severity

#: RISK01 fires for unprotected instructions at or above this static risk.
DEFAULT_RISK_THRESHOLD = 0.7


class LintContext:
    """Shared, lazily built analyses for one lint run over one module."""

    def __init__(self, module: Module, risk_threshold: float = DEFAULT_RISK_THRESHOLD):
        self.module = module
        self.risk_threshold = risk_threshold
        self._slice_context: Optional[SliceContext] = None
        self._risk_report: Optional[StaticRiskReport] = None
        self._checks: Optional[List[CallInst]] = None
        self._dups: Optional[List[Instruction]] = None
        self._coverage: Optional[CoverageAnalysis] = None

    @property
    def slice_context(self) -> SliceContext:
        if self._slice_context is None:
            self._slice_context = SliceContext(self.module)
        return self._slice_context

    @property
    def coverage(self) -> CoverageAnalysis:
        if self._coverage is None:
            self._coverage = CoverageAnalysis(
                self.module, context=self.slice_context
            )
        return self._coverage

    @property
    def risk_report(self) -> StaticRiskReport:
        if self._risk_report is None:
            self._risk_report = StaticRiskModel(self.module).assess_module()
        return self._risk_report

    @property
    def is_protected(self) -> bool:
        """Whether the duplication pass has run on this module."""
        return any(
            is_check_intrinsic(fn) for fn in self.module.functions.values()
        )

    @property
    def checks(self) -> List[CallInst]:
        if self._checks is None:
            self._checks = [
                inst
                for inst in self.module.instructions()
                if isinstance(inst, CallInst) and is_check_intrinsic(inst.callee)
            ]
        return self._checks

    @property
    def duplicates(self) -> List[Instruction]:
        """Clones created by the duplication pass (``*.dup`` names)."""
        if self._dups is None:
            self._dups = [
                inst
                for inst in self.module.instructions()
                if inst.name.endswith(".dup")
            ]
        return self._dups

    def locate(self, inst: Instruction) -> Dict:
        block = inst.parent
        fn = block.parent if block is not None else None
        return {
            "function": fn.name if fn is not None else "",
            "block": block.name if block is not None else "",
            "index": block.index_of(inst) if block is not None else None,
            "name": inst.name,
        }


#: code -> (description, rule function)
LintRule = Callable[[LintContext], Iterable[Diagnostic]]
_RULES: Dict[str, Tuple[str, LintRule]] = {}


def lint_rule(code: str, description: str):
    """Register a lint rule under ``code`` (codes are unique)."""

    def decorate(fn: LintRule) -> LintRule:
        if code in _RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        _RULES[code] = (description, fn)
        return fn

    return decorate


def registered_rules() -> List[Tuple[str, str]]:
    """``(code, description)`` pairs of every registered rule."""
    return [(code, desc) for code, (desc, _) in _RULES.items()]


def run_lints(
    module: Module,
    codes: Optional[Iterable[str]] = None,
    risk_threshold: float = DEFAULT_RISK_THRESHOLD,
) -> DiagnosticReport:
    """Run all (or the selected) lint rules over ``module``."""
    context = LintContext(module, risk_threshold=risk_threshold)
    wanted = set(codes) if codes is not None else None
    report = DiagnosticReport()
    for code, (_, rule) in _RULES.items():
        if wanted is not None and code not in wanted:
            continue
        report.extend(rule(context))
    return report.sorted()


# -- rules --------------------------------------------------------------------


def _escapes_into_call(obj) -> bool:
    """Whether the object's address (or a gep off it) reaches a call."""
    frontier = [obj]
    seen = set()
    while frontier:
        pointer = frontier.pop()
        if id(pointer) in seen:
            continue
        seen.add(id(pointer))
        for user, _ in pointer.uses:
            if isinstance(user, CallInst):
                return True
            if isinstance(user, GEPInst):
                frontier.append(user)
    return False


@lint_rule("DS01", "store to an object that is never read")
def dead_store(context: LintContext) -> Iterable[Diagnostic]:
    for inst in context.module.instructions():
        if not isinstance(inst, (StoreInst, AtomicRMWInst)):
            continue
        obj = underlying_object(inst.pointer)
        if obj is None or isinstance(obj, Argument):
            continue  # unknown or caller-owned memory: assume read
        if isinstance(obj, GlobalVariable) and obj.is_output:
            continue
        if context.slice_context.loads_of(obj) or _escapes_into_call(obj):
            continue
        target = obj.ref() if isinstance(obj, GlobalVariable) else f"%{obj.name}"
        yield Diagnostic(
            "DS01",
            Severity.WARNING,
            f"store to {target}, which is never read",
            **context.locate(inst),
        )


@lint_rule("CF01", "basic block unreachable from the function entry")
def unreachable_block(context: LintContext) -> Iterable[Diagnostic]:
    for fn in context.module.defined_functions():
        reachable = reachable_blocks(fn)
        for block in fn.blocks:
            if block not in reachable:
                yield Diagnostic(
                    "CF01",
                    Severity.WARNING,
                    "block is unreachable from the entry block",
                    function=fn.name,
                    block=block.name,
                )


@lint_rule("DV01", "pure instruction whose result is never used")
def dead_value(context: LintContext) -> Iterable[Diagnostic]:
    for inst in context.module.instructions():
        if not inst.produces_value() or inst.is_used():
            continue
        if isinstance(inst, (CallInst, AtomicRMWInst, AllocaInst)):
            continue  # side effects / address-taken storage have their own rules
        yield Diagnostic(
            "DV01",
            Severity.NOTE,
            f"result of {inst.opcode} is never used (dead code)",
            **context.locate(inst),
        )


@lint_rule("RISK01", "high-risk instruction left unprotected")
def unprotected_high_risk(context: LintContext) -> Iterable[Diagnostic]:
    if not context.is_protected:
        return  # advisory only once a protection policy has been applied
    # A clone sits immediately after its original (see DuplicationPass),
    # so the protected originals are the predecessors of the clones.
    protected = set()
    for dup in context.duplicates:
        block = dup.parent
        if block is None:
            continue
        position = block.index_of(dup)
        if position > 0:
            protected.add(id(block.instructions[position - 1]))
    dup_ids = {id(d) for d in context.duplicates}
    for assessment in context.risk_report.ranked():
        if assessment.risk < context.risk_threshold:
            break
        inst = assessment.instruction
        if id(inst) in protected or id(inst) in dup_ids:
            continue
        yield Diagnostic(
            "RISK01",
            Severity.NOTE,
            f"static risk {assessment.risk:.2f} >= "
            f"{context.risk_threshold:.2f} but not duplicated",
            **context.locate(inst),
        )


@lint_rule("DUP01", "duplicate not terminated by a check or leaking")
def duplication_path_integrity(context: LintContext) -> Iterable[Diagnostic]:
    dup_ids = {id(d) for d in context.duplicates}
    for dup in context.duplicates:
        reaches_check = False
        leaks: Optional[Instruction] = None
        frontier = [dup]
        seen = set()
        while frontier:
            current = frontier.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            for user in current.users:
                if isinstance(user, CallInst) and is_check_intrinsic(user.callee):
                    reaches_check = True
                elif id(user) in dup_ids:
                    frontier.append(user)
                else:
                    leaks = user
        if leaks is not None:
            yield Diagnostic(
                "DUP01",
                Severity.ERROR,
                f"duplicate value leaks into original dataflow via {leaks.opcode}",
                **context.locate(dup),
            )
        elif not reaches_check:
            yield Diagnostic(
                "DUP01",
                Severity.ERROR,
                "duplicate is not compared by any ipas.check",
                **context.locate(dup),
            )


@lint_rule("DUP02", "malformed ipas.check operand pair")
def malformed_check(context: LintContext) -> Iterable[Diagnostic]:
    for check in context.checks:
        operands = check.operands
        if len(operands) != 2:
            yield Diagnostic(
                "DUP02",
                Severity.ERROR,
                f"check takes {len(operands)} operands, expected 2",
                **context.locate(check),
            )
            continue
        original, duplicate = operands
        if original is duplicate:
            yield Diagnostic(
                "DUP02",
                Severity.ERROR,
                "check compares a value against itself",
                **context.locate(check),
            )
        elif (
            isinstance(original, Instruction)
            and isinstance(duplicate, Instruction)
            and original.opcode != duplicate.opcode
        ):
            yield Diagnostic(
                "DUP02",
                Severity.ERROR,
                f"check compares {original.opcode} against {duplicate.opcode}",
                **context.locate(check),
            )


@lint_rule("COV01", "check subsumed by a post-dominating check")
def redundant_check(context: LintContext) -> Iterable[Diagnostic]:
    if not context.is_protected:
        return
    from ..passes.check_elim import CheckEliminationPass

    # Dry run of the elimination pass: same subsumption search, no edits.
    elim = CheckEliminationPass(context.module)
    checks = elim._checks()
    if not elim.clone_map:
        for orig, dup, _check in checks:
            elim.clone_map[id(orig)] = dup
    pair_index = {(id(o), id(d)): c for o, d, c in checks}
    for orig, dup, check in checks:
        subsumer = elim._find_subsumer(orig, dup, check, pair_index)
        if subsumer is not None:
            yield Diagnostic(
                "COV01",
                Severity.WARNING,
                f"check on {orig.name or orig.opcode} is subsumed by the "
                f"post-dominating check in {elim._where(subsumer)}; "
                "check-redundancy elimination would remove it",
                **context.locate(check),
            )


@lint_rule("COV02", "check that can never fire")
def unreachable_check(context: LintContext) -> Iterable[Diagnostic]:
    if not context.checks:
        return
    # A check never fires if its block is unreachable from the function
    # entry, or its whole function has no call sites and is not itself an
    # entry point (no callers + not "main" = dead protection weight).
    called = set()
    for fn in context.module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, CallInst) and not inst.callee.is_declaration:
                called.add(id(inst.callee))
    reachable_cache: Dict[int, set] = {}
    for check in context.checks:
        fn = check.function
        if fn is None or check.parent is None:
            continue
        blocks = reachable_cache.get(id(fn))
        if blocks is None:
            blocks = reachable_blocks(fn)
            reachable_cache[id(fn)] = blocks
        if check.parent not in blocks:
            yield Diagnostic(
                "COV02",
                Severity.WARNING,
                "check sits in a block unreachable from the function entry",
                **context.locate(check),
            )
        elif id(fn) not in called and fn.name != "main":
            yield Diagnostic(
                "COV02",
                Severity.WARNING,
                f"check sits in {fn.name}, which has no callers and is not "
                "an entry point — it can never fire",
                **context.locate(check),
            )


@lint_rule("COV03", "protected module still has escaping high-risk sites")
def escaping_high_risk(context: LintContext) -> Iterable[Diagnostic]:
    if not context.is_protected:
        return  # nothing was promised; RISK01 covers unprotected modules
    for assessment in context.risk_report.ranked():
        if assessment.risk < context.risk_threshold:
            break
        site = context.coverage.classify(assessment.instruction)
        if site.verdict is Verdict.ESCAPES:
            reason = site.escapes[0] if site.escapes else "unguarded dataflow"
            yield Diagnostic(
                "COV03",
                Severity.WARNING,
                f"static risk {assessment.risk:.2f} and the coverage prover "
                f"classifies this site ESCAPES ({reason})",
                **context.locate(assessment.instruction),
            )
