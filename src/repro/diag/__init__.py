"""repro.diag — structured IR diagnostics: lint rules, reports, renderers.

The first correctness-tooling layer of the codebase: :func:`run_lints`
checks a module against the registered rules (duplication-path integrity,
dead stores, unreachable blocks, unprotected high-risk instructions) and
returns a :class:`DiagnosticReport` that the ``repro analyze`` CLI and the
pass-manager debug mode render or diff.
"""

from .diagnostics import Diagnostic, DiagnosticReport, Severity
from .render import render_json, render_text, severity_filter
from .rules import (
    DEFAULT_RISK_THRESHOLD,
    LintContext,
    lint_rule,
    registered_rules,
    run_lints,
)

__all__ = [
    "Diagnostic", "DiagnosticReport", "Severity",
    "render_json", "render_text", "severity_filter",
    "DEFAULT_RISK_THRESHOLD", "LintContext", "lint_rule",
    "registered_rules", "run_lints",
]
