"""Text and JSON renderers for diagnostics and static-risk reports."""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..analysis.risk import StaticRiskReport
from .diagnostics import DiagnosticReport, Severity


def render_text(
    report: DiagnosticReport,
    risk: Optional[StaticRiskReport] = None,
    risk_limit: int = 10,
) -> str:
    """Human-readable rendering: diagnostics first, then the top risks."""
    lines: List[str] = []
    ordered = report.sorted()
    for diagnostic in ordered:
        lines.append(diagnostic.format())
    lines.append(f"diagnostics: {ordered.summary()}")
    if risk is not None:
        ranked = risk.ranked()
        shown = ranked[:risk_limit] if risk_limit else ranked
        lines.append(
            f"static risk: {len(ranked)} duplicable instructions"
            + (f", top {len(shown)}:" if shown else "")
        )
        for a in shown:
            name = f" %{a.name}" if a.name else ""
            lines.append(
                f"  {a.risk:6.3f}  {a.opcode:<8} "
                f"{a.function}/{a.block}[{a.index}]{name}  "
                f"(obs {a.observability:.3f}, depth {a.loop_depth})"
            )
    return "\n".join(lines)


def render_json(
    report: DiagnosticReport,
    risk: Optional[StaticRiskReport] = None,
    module_name: str = "",
    indent: Optional[int] = 2,
) -> str:
    """Machine-readable rendering of one analysis run."""
    payload: Dict = {
        "module": module_name,
        "diagnostics": report.to_dicts(),
        "summary": report.counts_by_severity(),
        "exit_ok": not report.has_errors,
    }
    if risk is not None:
        payload["risk"] = [a.to_dict() for a in risk.ranked()]
    return json.dumps(payload, indent=indent)


def severity_filter(report: DiagnosticReport, min_severity: str) -> DiagnosticReport:
    """Filter helper for CLI ``--min-severity`` style options."""
    return report.filter(Severity.parse(min_severity))
