"""Campaign job specifications: the service's unit of submission.

A *spec* is a plain JSON dict naming what to run.  Two forms:

* registry form — ``{"workload": "fft", "input": 1, "trials": 60,
  "seed": 3}`` plus optional ``protect``/``recover`` knobs, resolving
  through :mod:`repro.workloads`;
* inline form — ``{"source": "<scil text>", "name": "kernel", ...}``,
  compiling the given program directly (hermetic tests, ad-hoc kernels).

``canonical_spec`` is the submission dedup key *before* the campaign is
built; the job id proper is the campaign fingerprint, computed after the
golden run, so two textually different specs that build the same plan
still collapse onto one job.
"""

from __future__ import annotations

import json
from typing import Dict

SPEC_KEYS = frozenset(
    {
        "workload",
        "input",
        "source",
        "name",
        "entry",
        "trials",
        "seed",
        "budget_factor",
        "protect",
        "recover",
        "max_rollbacks",
        "snapshot_period",
    }
)

SPEC_DEFAULTS: Dict = {
    "input": 1,
    "name": "kernel",
    "seed": 0,
    "protect": "none",
    "recover": False,
    "max_rollbacks": 8,
    "snapshot_period": 0,
}


def validate_spec(spec: Dict) -> None:
    """Reject a malformed spec with a message the submitter can act on."""
    if not isinstance(spec, dict):
        raise ValueError(f"spec must be an object, got {type(spec).__name__}")
    unknown = sorted(set(spec) - SPEC_KEYS)
    if unknown:
        raise ValueError(f"unknown spec key(s): {', '.join(unknown)}")
    has_workload = bool(spec.get("workload"))
    has_source = bool(spec.get("source"))
    if has_workload == has_source:
        raise ValueError("spec needs exactly one of 'workload' or 'source'")
    trials = spec.get("trials")
    if not isinstance(trials, int) or trials <= 0:
        raise ValueError(f"spec 'trials' must be a positive integer, got {trials!r}")
    seed = spec.get("seed", 0)
    if not isinstance(seed, int):
        raise ValueError(f"spec 'seed' must be an integer, got {seed!r}")
    protect = spec.get("protect", "none")
    if protect not in ("none", "full"):
        raise ValueError(f"spec 'protect' must be 'none' or 'full', got {protect!r}")


def canonical_spec(spec: Dict) -> str:
    """Stable text form: defaults filled in, keys sorted.

    Identical submissions from different clients serialize identically,
    so one string-keyed map dedups them before any build work happens.
    """
    validate_spec(spec)
    filled = dict(SPEC_DEFAULTS)
    filled.update({k: v for k, v in spec.items() if v is not None})
    return json.dumps(filled, sort_keys=True, separators=(",", ":"))


def build_campaign(spec: Dict):
    """Construct (but do not run) the Campaign a spec describes.

    Deterministic by construction: the same spec always yields a
    campaign with the same fingerprint, which is what makes journal
    replay after a coordinator crash — rebuild from spec, resume from
    checkpoint — sound.
    """
    from ..faults.campaign import Campaign, OutputVerifier
    from ..recover.runtime import RecoveryPolicy

    validate_spec(spec)
    recovery = None
    if spec.get("recover"):
        recovery = RecoveryPolicy(
            max_rollbacks=spec.get("max_rollbacks", 8),
            snapshot_period=spec.get("snapshot_period", 0),
        )
    if spec.get("source"):
        from .. import compile_source
        from ..interp import Interpreter

        module = compile_source(spec["source"], name=spec.get("name", "kernel"))
        if spec.get("protect") == "full":
            from ..protect import FullDuplicationSelector, duplicate_instructions

            duplicate_instructions(module, FullDuplicationSelector().select(module))
        return Campaign(
            Interpreter(module),
            verifier=OutputVerifier(),
            entry=spec.get("entry", "main"),
            budget_factor=spec.get("budget_factor", 20.0),
            recovery=recovery,
        )
    from ..workloads import get_workload

    workload = get_workload(spec["workload"])
    module = workload.compile()
    if spec.get("protect") == "full":
        from ..protect import FullDuplicationSelector, duplicate_instructions

        duplicate_instructions(module, FullDuplicationSelector().select(module))
    return Campaign(
        workload.make_interpreter(input_id=spec.get("input", 1), module=module),
        verifier=workload.verifier(),
        entry=spec.get("entry", workload.entry),
        budget_factor=spec.get("budget_factor", workload.budget_factor),
        recovery=recovery,
    )
