"""Blocking client for the campaign service (used by the CLI and tests)."""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional

from .protocol import Channel


class ServiceError(RuntimeError):
    """The coordinator refused a request (``{"ok": false}`` reply)."""


def read_port_file(path: str, timeout: float = 10.0) -> int:
    """Poll a coordinator's ``--port-file`` until it appears.

    The file is written atomically after the socket binds, so a
    readable integer means the service is accepting connections.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            with open(path) as fh:
                text = fh.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(f"no coordinator port in {path!r} after {timeout}s")
        time.sleep(0.05)


class ServiceClient:
    """One connection to a coordinator; methods are simple RPCs.

    ``watch`` temporarily dedicates the connection to the job's event
    stream; it hands the connection back once the job reaches a terminal
    state, so a single client can submit → watch → fetch results.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 30.0):
        self.timeout = timeout
        self.channel = Channel(host, port, timeout=timeout)

    @classmethod
    def from_port_file(cls, path: str, timeout: float = 30.0) -> "ServiceClient":
        return cls(port=read_port_file(path), timeout=timeout)

    def _request(self, message: Dict) -> Dict:
        reply = self.channel.request(message, timeout=self.timeout)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error") or f"request {message.get('op')!r} failed")
        return reply

    def submit(self, spec: Dict) -> Dict:
        """Submit a campaign spec; idempotent on the campaign fingerprint.

        The reply's ``disposition`` says how this submission was treated:
        ``submitted`` (new job), ``attached`` (identical job already
        running), or ``cached`` (already done); ``state`` is the job's
        own lifecycle state.
        """
        return self._request({"op": "submit", "spec": spec})

    def status(self, job: Optional[str] = None) -> Dict:
        message: Dict = {"op": "status"}
        if job is not None:
            message["job"] = job
        return self._request(message)

    def watch(self, job: str) -> Iterator[Dict]:
        """Yield progress events until the job is done or failed."""
        snapshot = self._request({"op": "watch", "job": job})
        yield snapshot
        if snapshot.get("state") in ("done", "failed"):
            return
        while True:
            event = self.channel.recv(timeout=self.timeout)
            if event is None:
                raise ServiceError(f"connection lost while watching {job}")
            yield event
            if event.get("op") in ("done", "failed"):
                return

    def wait(self, job: str, poll: float = 0.1, timeout: float = 120.0) -> Dict:
        """Poll ``status`` until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job)
            if status.get("state") in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job} still {status.get('state')} after {timeout}s")
            time.sleep(poll)

    def results(self, job: str) -> List[Dict]:
        """Canonical trial entries in trial order (the bit-identity unit)."""
        return self._request({"op": "results", "job": job})["entries"]

    def metrics(self) -> Dict:
        return self._request({"op": "metrics"})["metrics"]

    def ping(self) -> bool:
        try:
            return self._request({"op": "ping"}).get("op") == "pong"
        except (OSError, ServiceError):
            return False

    def shutdown(self) -> None:
        self._request({"op": "shutdown"})

    def close(self) -> None:
        self.channel.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_connect(text: str) -> "tuple[str, int]":
    """``HOST:PORT`` or bare ``PORT`` → ``(host, port)``."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    try:
        return host or "127.0.0.1", int(port_text)
    except ValueError:
        raise ValueError(f"bad service address {text!r}: expected HOST:PORT")
