"""Socket worker: leases trial-chunks from a coordinator and runs them.

Deliberately synchronous — the worker's job is CPU-bound interpretation,
not concurrency.  Per connection it handshakes (``hello``), then loops
``lease → run → ack``, stamping every outbound message with an in-order
sequence number.  Campaigns are built from the lease's spec and cached
per job id, so one golden run serves a worker's whole share of a job;
the rebuilt fingerprint is checked against the job id, making version
skew between coordinator and worker a loud error instead of a silent
plan mismatch.

Failure behavior mirrors the supervised fork pool's, from the other
side: a connection loss or an ack that was sent but never confirmed
triggers reconnect with a fresh handshake, and the unconfirmed ack is
*resent once* on the new connection.  If the coordinator already
committed or requeued the chunk, that resend is discarded as stale —
the worker does not care which; it just keeps leasing.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, Optional

from ..faults.parallel import trial_entry
from .jobs import build_campaign
from .protocol import Channel, ProtocolError


class _JobContext:
    """Per-job state a worker caches across leases."""

    __slots__ = ("campaign", "sites", "site_index")

    def __init__(self, spec: Dict, job_id: str):
        self.campaign = build_campaign(spec)
        self.campaign.prepare()
        n_trials = spec["trials"]
        seed = spec.get("seed", 0)
        fingerprint = self.campaign.fingerprint(n_trials, seed)
        if fingerprint != job_id:
            raise RuntimeError(
                f"worker built fingerprint {fingerprint} for job {job_id}: "
                f"coordinator/worker version skew"
            )
        self.sites = self.campaign.sample_trials(n_trials, seed)
        index_of = {
            id(inst): k
            for k, (inst, _count) in enumerate(self.campaign._sites)
        }
        self.site_index = [index_of[id(s.instruction)] for s in self.sites]


def run_worker(
    host: str,
    port: int,
    ack_timeout: float = 30.0,
    reconnect_attempts: int = 8,
    idle_exit: Optional[float] = None,
    log=None,
) -> int:
    """Serve one coordinator until shutdown; returns a process exit code.

    ``ack_timeout`` bounds every wait for a coordinator reply.
    ``reconnect_attempts`` bounds *consecutive* failed connections —
    any successful handshake resets the budget.  ``idle_exit`` (seconds)
    makes a worker with nothing to lease exit 0, for drain-and-stop
    deployments; ``None`` idles forever.
    """
    contexts: Dict[str, _JobContext] = {}
    pending_ack: Optional[Dict] = None
    failures = 0
    idle_since: Optional[float] = None

    def say(text: str) -> None:
        if log is not None:
            log(text)

    while True:
        try:
            channel = Channel(host, port, timeout=ack_timeout)
        except OSError:
            failures += 1
            if failures > reconnect_attempts:
                say(f"giving up after {failures} failed connections")
                return 1
            time.sleep(min(0.1 * (2 ** (failures - 1)), 2.0))
            continue
        seq = 0

        def send(message: Dict) -> None:
            nonlocal seq
            seq += 1
            message["seq"] = seq
            channel.send(message)

        try:
            hello = None
            send({"op": "hello", "role": "worker"})
            hello = channel.recv(timeout=ack_timeout)
            if hello is None or not hello.get("ok"):
                raise ConnectionError(f"handshake refused: {hello!r}")
            failures = 0
            say(f"connected as {hello.get('worker')}")
            if pending_ack is not None:
                # The previous connection died between our ack and the
                # coordinator's confirmation.  Resend once; ``ack-stale``
                # (the expected reply — our lease died with the
                # connection) and ``ack-ok`` both mean we can move on.
                send(
                    {
                        "op": "ack",
                        "lease": pending_ack["lease"],
                        "records": pending_ack["records"],
                    }
                )
                reply = channel.recv(timeout=ack_timeout)
                if reply is None:
                    raise ConnectionError("connection lost resending ack")
                say(f"resent unconfirmed ack: {reply.get('op')}")
                pending_ack = None

            while True:
                send({"op": "lease"})
                grant = channel.recv(timeout=ack_timeout)
                if grant is None:
                    raise ConnectionError("connection lost awaiting lease")
                if not grant.get("ok"):
                    raise ConnectionError(f"lease refused: {grant.get('error')}")
                if grant.get("op") == "idle":
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    elif idle_exit is not None and now - idle_since >= idle_exit:
                        say("idle limit reached, exiting")
                        return 0
                    time.sleep(grant.get("backoff", 0.1))
                    continue
                idle_since = None
                job_id = grant["job"]
                context = contexts.get(job_id)
                if context is None:
                    context = _JobContext(grant["spec"], job_id)
                    contexts[job_id] = context
                heartbeat_every = max(grant.get("timeout", 15.0) / 3.0, 0.05)
                last_beat = time.monotonic()
                records = []
                error: Optional[str] = None
                try:
                    for i in grant["indexes"]:
                        record = context.campaign.run_site(context.sites[i])
                        records.append(
                            trial_entry(
                                i,
                                context.sites[i],
                                context.site_index[i],
                                record,
                            )
                        )
                        now = time.monotonic()
                        if now - last_beat >= heartbeat_every:
                            last_beat = now
                            send({"op": "heartbeat", "lease": grant["lease"]})
                except Exception as exc:
                    # A trial raising is an engine bug, not a fault-model
                    # outcome; report it so the job fails loudly instead
                    # of the lease cycling forever.
                    error = f"{type(exc).__name__}: {exc}"
                ack = {"op": "ack", "lease": grant["lease"], "records": records}
                if error is not None:
                    ack["error"] = error
                send(ack)
                try:
                    confirm = channel.recv(timeout=ack_timeout)
                except OSError:
                    confirm = None
                if confirm is None:
                    pending_ack = {"lease": grant["lease"], "records": records}
                    raise ConnectionError("ack unconfirmed")
        except (OSError, ConnectionError, ProtocolError, socket.timeout) as exc:
            say(f"connection lost: {exc}")
            channel.close()
            if hello is None:
                failures += 1
                if failures > reconnect_attempts:
                    say(f"giving up after {failures} failed handshakes")
                    return 1
            time.sleep(0.05)
            continue
        except KeyError as exc:
            say(f"malformed grant (missing {exc}); disconnecting")
            channel.close()
            return 1
