"""Durable write-ahead job journal for the coordinator.

Two layers of durability, both in the checkpoint-v2 line format
(canonical JSON sealed with a CRC32, torn-tail tolerant):

* ``jobs.jsonl`` — the *job* journal this module owns.  A ``job`` line
  is appended (and fsynced, file and directory) before a submission is
  acknowledged; a ``done`` line marks completion.  Replaying it after a
  coordinator crash yields every job that must resume.
* ``<job>.jsonl`` — one :class:`repro.faults.parallel.CampaignCheckpoint`
  per job, written by the coordinator's commit path.  Trial-level resume
  is literally checkpoint resume; no new format, no new reader.

Append-only with per-line CRCs rather than rewrite-on-flush: the job
stream is tiny and strictly monotone, so ``O_APPEND`` + fsync is both
simpler and cheaper than the checkpoint's whole-file atomic rename.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..faults.parallel import checked_line, fsync_directory, sealed_line


class JobJournal:
    """The coordinator's crash-recovery log of submitted jobs."""

    FILENAME = "jobs.jsonl"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, self.FILENAME)
        self._fh = None

    def job_path(self, job_id: str) -> str:
        """Where the job's trial checkpoint lives."""
        return os.path.join(self.directory, f"{job_id}.jsonl")

    def load(self) -> Dict[str, Dict]:
        """Replay the journal → ``{job_id: {"spec": ..., "done": bool}}``.

        Torn or CRC-damaged lines are skipped; a job whose ``job`` line
        was lost mid-write was never acknowledged, so dropping it is
        correct (the client retries, and retries are idempotent).
        """
        jobs: Dict[str, Dict] = {}
        try:
            with open(self.path) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return jobs
        for raw in lines:
            if not raw:
                continue
            entry, _error = checked_line(raw)
            if entry is None:
                continue
            job_id = entry.get("job")
            if not isinstance(job_id, str):
                continue
            if entry.get("op") == "job" and isinstance(entry.get("spec"), dict):
                jobs.setdefault(job_id, {"spec": entry["spec"], "done": False})
            elif entry.get("op") == "done" and job_id in jobs:
                jobs[job_id]["done"] = True
        return jobs

    def open(self) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a")
            fsync_directory(self.path)

    def _append(self, entry: Dict) -> None:
        assert self._fh is not None, "journal not opened"
        self._fh.write(sealed_line(entry) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_job(self, job_id: str, spec: Dict) -> None:
        """WAL the submission — must complete before the submit ack."""
        self._append({"op": "job", "job": job_id, "spec": spec})

    def record_done(self, job_id: str) -> None:
        self._append({"op": "done", "job": job_id})

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None
