"""repro.service — campaign-as-a-service.

A fault-tolerant asyncio coordinator (:mod:`.coordinator`) exposes a
line-delimited JSON API over localhost sockets: submit a campaign,
stream its progress, fetch its results.  Durability rides on the
checkpoint-v2 format (a write-ahead job journal plus one campaign
checkpoint per job, :mod:`.journal`); work is distributed to socket
workers (:mod:`.worker`) as leased trial-chunks with heartbeat deadlines
and at-most-once commit; submission is idempotent on the campaign
fingerprint; and with no workers reachable the coordinator degrades to
the in-process serial engine.  :class:`.client.ServiceClient` is the
blocking client the CLI uses.

The service contract is the campaign contract, promoted one level:
outcome records served by the service are bit-identical to a cold
in-process ``Campaign.run`` — including under coordinator kill/restart,
dropped acks, delayed replies, and worker connection resets
(:class:`repro.faults.chaos.ServiceChaos` injects all four).
"""

from .client import ServiceClient, ServiceError
from .coordinator import CoordinatorServer
from .jobs import build_campaign, canonical_spec, validate_spec
from .journal import JobJournal
from .worker import run_worker

__all__ = [
    "CoordinatorServer",
    "JobJournal",
    "ServiceClient",
    "ServiceError",
    "build_campaign",
    "canonical_spec",
    "run_worker",
    "validate_spec",
]
