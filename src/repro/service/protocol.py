"""Line-delimited JSON framing for the campaign service.

One message per line, UTF-8 JSON, ``\\n``-terminated — trivially
inspectable with ``nc`` and immune to partial-read ambiguity: a line
without its terminator is by definition torn and the connection is
treated as dead.  The coordinator side is asyncio
(:func:`read_message` / :func:`send_message`); workers and clients use
the blocking :class:`Channel`.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, Optional

#: refuse pathological frames (a campaign ack for a whole chunk of trials
#: with recovery telemetry is a few KB; 32 MiB is three orders past any
#: legitimate message).
MAX_MESSAGE_BYTES = 32 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent something that is not a framed JSON object."""


def encode(message: Dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode(line: bytes) -> Dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {len(line)} bytes exceeds protocol limit")
    try:
        message = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"frame is {type(message).__name__}, expected object")
    return message


async def read_message(reader) -> Optional[Dict]:
    """Next message from an asyncio stream; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if not line.endswith(b"\n"):
        # EOF mid-line: the peer died while writing; the torn frame is
        # discarded exactly like a torn checkpoint line.
        return None
    return decode(line)


def send_message(writer, message: Dict) -> None:
    """Queue one message on an asyncio stream writer (drain separately)."""
    writer.write(encode(message))


class Channel:
    """Blocking LDJSON channel over one TCP connection (worker/client side).

    All reads honour a timeout; a timeout or EOF surfaces as ``OSError``
    family exceptions the callers' reconnect loops handle uniformly.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self.sock.makefile("rb")

    def send(self, message: Dict) -> None:
        self.sock.sendall(encode(message))

    def recv(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Next message; ``None`` on EOF; ``socket.timeout`` on deadline."""
        if timeout is not None:
            self.sock.settimeout(timeout)
        line = self._rfile.readline(MAX_MESSAGE_BYTES + 1)
        if not line:
            return None
        if not line.endswith(b"\n"):
            return None
        return decode(line)

    def request(self, message: Dict, timeout: Optional[float] = None) -> Dict:
        """Send and await the single reply; raises on EOF."""
        self.send(message)
        reply = self.recv(timeout)
        if reply is None:
            raise ConnectionError("connection closed before reply")
        return reply

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
