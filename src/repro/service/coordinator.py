"""The campaign service coordinator: an asyncio lease-based scheduler.

One coordinator process owns the journal directory and the truth about
every job.  The control flow per job:

1. **Submit.**  A spec is canonicalized and deduped; the campaign is
   built (golden run + trial plan) in an executor thread; the job id is
   the campaign fingerprint.  The spec is write-ahead journaled before
   the submit is acknowledged, and the job's trial checkpoint is loaded
   so a resubmitted or crash-recovered job starts from what is already
   durable.  A second submit of the same fingerprint *attaches* to the
   running job (or returns cached results) — it never re-executes trials.
2. **Lease.**  Pending trials are handed to socket workers as leased
   chunks with a heartbeat deadline.  An expired lease, a worker
   disconnect, or a dropped ack returns the chunk to the queue with
   capped exponential backoff (shared shape with worker respawn,
   :func:`repro.faults.supervisor.backoff_delay`).
3. **Commit.**  Worker acks carry canonical trial entries
   (:func:`repro.faults.parallel.trial_entry`).  Commit is at-most-once:
   per-connection in-order sequence numbers, lease ownership, and the
   already-committed record table all gate the write; stale or duplicate
   acks from a resurrected worker are discarded.  Accepted entries are
   appended to the job's checkpoint and flushed *before* the ack-ok, so
   an acknowledged trial is durable by definition.
4. **Degrade.**  With no workers connected past a grace period the
   coordinator runs chunks itself through the same commit path — the
   in-process serial engine as a fallback backend, mirroring the
   supervisor's ``PoolCollapse`` behavior.

Because trial plans are pre-sampled deterministically and every commit
is validated against the local plan, the records a job accumulates are
bit-identical to a cold in-process ``Campaign.run`` no matter how many
leases expired, acks were lost, or coordinators died along the way —
the chaos suite (``tests/test_service.py``) asserts exactly that.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Tuple

from ..faults.parallel import (
    CampaignCheckpoint,
    entry_matches_site,
    record_from_entry,
    trial_entry,
)
from ..faults.sanitizer import sanitize_records
from ..faults.supervisor import backoff_delay
from ..obs.registry import MetricsRegistry
from . import protocol
from .jobs import build_campaign, canonical_spec
from .journal import JobJournal

#: trials per lease; smaller than the fork engine's chunk so lease churn
#: under chaos stays cheap (a lost chunk re-runs at most this many trials).
DEFAULT_CHUNK = 8
DEFAULT_LEASE_TIMEOUT = 15.0
#: seconds without any worker before the solo (in-process) path engages.
DEFAULT_SOLO_GRACE = 0.75


class _Chunk:
    """Pending work: trial indexes plus their retry state."""

    __slots__ = ("indexes", "attempt", "available_at")

    def __init__(self, indexes: List[int], attempt: int = 0, available_at: float = 0.0):
        self.indexes = indexes
        self.attempt = attempt
        self.available_at = available_at


class _Lease:
    """A chunk out with one worker, until acked or the deadline passes."""

    __slots__ = ("id", "job_id", "wid", "indexes", "deadline", "attempt")

    def __init__(
        self,
        lease_id: str,
        job_id: str,
        wid: str,
        indexes: List[int],
        deadline: float,
        attempt: int,
    ):
        self.id = lease_id
        self.job_id = job_id
        self.wid = wid
        self.indexes = indexes
        self.deadline = deadline
        self.attempt = attempt


class Job:
    """One campaign under service management."""

    __slots__ = (
        "id",
        "spec",
        "n_trials",
        "seed",
        "campaign",
        "sites",
        "site_index",
        "checkpoint",
        "records",
        "done_count",
        "resumed",
        "pending",
        "watchers",
        "state",
        "error",
        "result_entries",
    )

    def __init__(self, job_id: str, spec: Dict, n_trials: int, seed: int):
        self.id = job_id
        self.spec = spec
        self.n_trials = n_trials
        self.seed = seed
        self.campaign = None
        self.sites = None
        self.site_index: List[int] = []
        self.checkpoint: Optional[CampaignCheckpoint] = None
        self.records: Optional[List] = None
        self.done_count = 0
        self.resumed = 0
        self.pending: List[_Chunk] = []
        self.watchers: List[asyncio.Queue] = []
        self.state = "running"  # running | finalizing | done | failed
        self.error: Optional[str] = None
        #: canonical entries in trial order, set when the job completes
        self.result_entries: Optional[List[Dict]] = None

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        if self.result_entries is not None:
            for entry in self.result_entries:
                counts[entry["outcome"]] = counts.get(entry["outcome"], 0) + 1
        elif self.records is not None:
            for record in self.records:
                if record is not None:
                    value = record.outcome.value
                    counts[value] = counts.get(value, 0) + 1
        return counts

    def summary(self) -> Dict:
        data = {
            "job": self.id,
            "state": self.state,
            "n_trials": self.n_trials,
            "seed": self.seed,
            "done": self.done_count,
            "resumed": self.resumed,
            "counts": self.outcome_counts(),
        }
        if self.error:
            data["error"] = self.error
        return data


class CoordinatorServer:
    """The asyncio coordinator; one instance per journal directory."""

    def __init__(
        self,
        journal_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_size: int = DEFAULT_CHUNK,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        solo_grace: float = DEFAULT_SOLO_GRACE,
        solo: bool = True,
        chaos=None,
        registry: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.journal = JobJournal(journal_dir)
        self.host = host
        self.port = port
        self.chunk_size = max(1, chunk_size)
        self.lease_timeout = lease_timeout
        self.solo_grace = solo_grace
        self.solo = solo
        self.chaos = chaos
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.jobs: Dict[str, Job] = {}
        self.leases: Dict[str, _Lease] = {}
        self.workers: Dict[str, asyncio.StreamWriter] = {}
        self._spec_to_job: Dict[str, str] = {}
        self._builds: Dict[str, asyncio.Future] = {}
        self._journaled: set = set()
        self._worker_counter = 0
        self._lease_counter = 0
        self._last_worker_seen = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._stopping = False
        # Created inside start(): pre-3.10 asyncio primitives bind their
        # loop at construction, and the server object is built before it.
        self._closed: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket, replay the journal, start background tasks."""
        self._closed = asyncio.Event()
        self.journal.open()
        recovered = self.journal.load()
        self._journaled = set(recovered)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for job_id, info in recovered.items():
            if info["done"] and self._load_cached_job(job_id, info["spec"]):
                continue
            # An in-flight job: rebuild from its journaled spec, resume
            # from its checkpoint, and put the remainder back on the queue.
            job, created = await self._get_or_create_job(info["spec"])
            if created:
                self._counter("ipas_service_jobs_recovered_total").inc()
                self._service_event(
                    "job-recovered", job=job.id, resumed=job.resumed
                )
        self._tasks = [
            asyncio.get_running_loop().create_task(self._reaper_loop()),
            asyncio.get_running_loop().create_task(self._solo_loop()),
        ]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, flush every open journal."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for writer in list(self.workers.values()):
            try:
                writer.close()
            except Exception:
                pass
        for job in self.jobs.values():
            if job.checkpoint is not None and job.state == "running":
                job.checkpoint.close()
            for queue in job.watchers:
                queue.put_nowait({"op": "failed", "job": job.id,
                                  "error": "coordinator shut down"})
        self.journal.close()
        if self._closed is not None:
            self._closed.set()

    async def wait_closed(self) -> None:
        if self._closed is not None:
            await self._closed.wait()

    # -- small helpers -----------------------------------------------------

    def _counter(self, name: str):
        return self.registry.counter(name)

    def _service_event(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.service_event(name, **args)

    # -- job construction --------------------------------------------------

    def _build_job(self, spec: Dict) -> Job:
        """Executor-thread body: golden run, plan, checkpoint resume."""
        campaign = build_campaign(spec)
        campaign.prepare()
        n_trials = spec["trials"]
        seed = spec.get("seed", 0)
        job_id = campaign.fingerprint(n_trials, seed)
        sites = campaign.sample_trials(n_trials, seed)
        index_of = {
            id(inst): k for k, (inst, _count) in enumerate(campaign._sites)
        }
        job = Job(job_id, spec, n_trials, seed)
        job.campaign = campaign
        job.sites = sites
        job.site_index = [index_of[id(s.instruction)] for s in sites]
        job.records = [None] * n_trials
        checkpoint = CampaignCheckpoint(
            self.journal.job_path(job_id), job_id, n_trials, seed
        )
        completed = checkpoint.load()
        for i, entry in completed.items():
            if not entry_matches_site(entry, sites[i], job.site_index[i]):
                continue
            job.records[i] = record_from_entry(
                entry, sites[i], f"checkpoint {checkpoint.path}"
            )
            job.done_count += 1
            job.resumed += 1
        checkpoint.open_for_append(fresh=not completed)
        job.checkpoint = checkpoint
        remaining = [i for i in range(n_trials) if job.records[i] is None]
        job.pending = [
            _Chunk(remaining[k : k + self.chunk_size])
            for k in range(0, len(remaining), self.chunk_size)
        ]
        return job

    async def _get_or_create_job(self, spec: Dict) -> Tuple[Job, bool]:
        """Idempotent submission core: one build per canonical spec, one
        job per fingerprint, no matter how many submitters race."""
        key = canonical_spec(spec)
        filled = json.loads(key)
        job_id = self._spec_to_job.get(key)
        if job_id is not None:
            return self.jobs[job_id], False
        pending_build = self._builds.get(key)
        if pending_build is not None:
            return (await pending_build), False
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._builds[key] = future
        try:
            built = await loop.run_in_executor(None, self._build_job, filled)
            existing = self.jobs.get(built.id)
            if existing is not None:
                # A different spec string reached the same fingerprint;
                # drop the duplicate build and attach.
                built.checkpoint.close()
                job, created = existing, False
            else:
                job, created = built, True
                self.jobs[job.id] = job
                if job.id not in self._journaled:
                    # WAL before acknowledging: a crash after this line
                    # resumes the job; a crash before it never admitted one.
                    self.journal.record_job(job.id, job.spec)
                    self._journaled.add(job.id)
                if job.resumed:
                    self._counter("ipas_service_trials_resumed_total").inc(
                        job.resumed
                    )
                if job.done_count == job.n_trials:
                    # Everything was already in the checkpoint (e.g. the
                    # crash happened after the last commit but before the
                    # done marker): finish without executing anything.
                    job.state = "finalizing"
                    loop.create_task(self._finalize(job))
            self._spec_to_job[key] = job.id
            future.set_result(job)
            return job, created
        except BaseException as exc:
            future.set_exception(exc)
            future.exception()  # consumed; concurrent awaiters still raise
            raise
        finally:
            del self._builds[key]

    def _load_cached_job(self, job_id: str, spec: Dict) -> bool:
        """Serve a journal-done job from its checkpoint, no rebuild.

        Returns ``False`` (caller falls back to a full rebuild) when the
        checkpoint does not actually hold every trial.
        """
        from ..faults.parallel import checked_line

        n_trials = spec.get("trials")
        try:
            with open(self.journal.job_path(job_id)) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return False
        by_index: Dict[int, Dict] = {}
        for raw in lines[1:]:  # line 0 is the checkpoint header
            entry, _error = checked_line(raw)
            if entry is None:
                continue
            i = entry.get("i")
            if isinstance(i, int) and 0 <= i < (n_trials or 0):
                entry.pop("crc", None)
                by_index[i] = entry
        if not isinstance(n_trials, int) or len(by_index) != n_trials:
            return False
        job = Job(job_id, spec, n_trials, spec.get("seed", 0))
        job.state = "done"
        job.done_count = n_trials
        job.resumed = n_trials
        job.result_entries = [by_index[i] for i in range(n_trials)]
        self.jobs[job_id] = job
        self._spec_to_job[canonical_spec(spec)] = job_id
        return True

    # -- scheduling --------------------------------------------------------

    def _next_chunk(self) -> Optional[Tuple[Job, _Chunk]]:
        now = time.monotonic()
        for job in self.jobs.values():
            if job.state != "running":
                continue
            for k, chunk in enumerate(job.pending):
                if chunk.available_at <= now:
                    return job, job.pending.pop(k)
        return None

    def _requeue_lease(self, lease: _Lease, reason: str) -> None:
        self.leases.pop(lease.id, None)
        job = self.jobs.get(lease.job_id)
        if job is None or job.state != "running":
            return
        indexes = [i for i in lease.indexes if job.records[i] is None]
        if not indexes:
            return
        attempt = lease.attempt + 1
        job.pending.append(
            _Chunk(
                indexes,
                attempt,
                time.monotonic() + backoff_delay(attempt),
            )
        )
        self._counter("ipas_service_leases_requeued_total").inc()
        self._service_event(
            "lease-requeued", job=job.id, reason=reason, trials=len(indexes)
        )

    def _requeue_worker_leases(self, wid: str) -> None:
        for lease in [l for l in self.leases.values() if l.wid == wid]:
            self._requeue_lease(lease, "worker-disconnect")

    async def _reaper_loop(self) -> None:
        while True:
            await asyncio.sleep(0.05)
            now = time.monotonic()
            for lease in [
                l for l in self.leases.values() if l.deadline <= now
            ]:
                self._counter("ipas_service_leases_expired_total").inc()
                self._service_event(
                    "lease-expired", job=lease.job_id, worker=lease.wid
                )
                self._requeue_lease(lease, "deadline")

    # -- serial degradation ------------------------------------------------

    def _run_chunk(self, job: Job, indexes: List[int]) -> List[Dict]:
        """Executor-thread body of the solo path: the in-process engine."""
        entries = []
        for i in indexes:
            record = job.campaign.run_site(job.sites[i])
            entries.append(trial_entry(i, job.sites[i], job.site_index[i], record))
        return entries

    async def _solo_loop(self) -> None:
        announced = False
        while True:
            await asyncio.sleep(0.05)
            if not self.solo or self.workers:
                announced = False
                continue
            if time.monotonic() - self._last_worker_seen < self.solo_grace:
                continue
            item = self._next_chunk()
            if item is None:
                continue
            job, chunk = item
            if not announced:
                announced = True
                self._service_event("serial-fallback", job=job.id)
            try:
                entries = await asyncio.get_running_loop().run_in_executor(
                    None, self._run_chunk, job, list(chunk.indexes)
                )
            except Exception as exc:
                self._fail_job(job, f"solo execution: {type(exc).__name__}: {exc}")
                continue
            self._counter("ipas_service_solo_trials_total").inc(len(entries))
            self._commit(job, entries)

    # -- commit path -------------------------------------------------------

    def _commit(self, job: Job, entries: List[Dict]) -> int:
        """Validate entries against the plan and make them durable.

        Returns the number of *fresh* trials committed; duplicates and
        plan mismatches are skipped silently (the duplicate is already
        durable, the mismatch will re-run).
        """
        fresh = 0
        for entry in entries:
            i = entry.get("i")
            if not isinstance(i, int) or not 0 <= i < job.n_trials:
                continue
            if job.records[i] is not None:
                continue
            site = job.sites[i]
            if not entry_matches_site(entry, site, job.site_index[i]):
                continue
            record = record_from_entry(entry, site, f"service job {job.id}")
            job.records[i] = record
            job.checkpoint.append(i, site, job.site_index[i], record)
            job.done_count += 1
            fresh += 1
        if not fresh:
            return 0
        self._counter("ipas_service_trials_committed_total").inc(fresh)
        # Durable before anything observes the commit: the flush precedes
        # the ack-ok, the watcher notification, and — deliberately — the
        # chaos kill, which therefore models a crash-after-durable.
        job.checkpoint.flush()
        self._notify(
            job,
            {
                "op": "progress",
                "job": job.id,
                "done": job.done_count,
                "n_trials": job.n_trials,
            },
        )
        if self.chaos is not None:
            for _ in range(fresh):
                self.chaos.on_commit()
        if job.done_count == job.n_trials and job.state == "running":
            job.state = "finalizing"
            asyncio.get_running_loop().create_task(self._finalize(job))
        return fresh

    async def _finalize(self, job: Job) -> None:
        if job.campaign is not None:
            try:
                # Same static-vs-dynamic consistency sweep the in-process
                # engine runs after assembly.
                await asyncio.get_running_loop().run_in_executor(
                    None,
                    sanitize_records,
                    job.records,
                    job.campaign.interp.module,
                )
            except Exception as exc:
                self._fail_job(job, f"sanitize: {type(exc).__name__}: {exc}")
                return
        job.checkpoint.close()
        job.result_entries = [
            trial_entry(i, job.sites[i], job.site_index[i], job.records[i])
            for i in range(job.n_trials)
        ]
        job.state = "done"
        self.journal.record_done(job.id)
        self._counter("ipas_service_jobs_completed_total").inc()
        self._service_event("job-done", job=job.id, trials=job.n_trials)
        self._notify(
            job,
            {"op": "done", "job": job.id, "counts": job.outcome_counts()},
        )

    def _fail_job(self, job: Job, error: str) -> None:
        job.state = "failed"
        job.error = error
        if job.checkpoint is not None:
            job.checkpoint.close()
        self._notify(job, {"op": "failed", "job": job.id, "error": error})

    def _notify(self, job: Job, event: Dict) -> None:
        for queue in list(job.watchers):
            queue.put_nowait(event)

    # -- connection handling -----------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        conn = {"wid": None, "seq": 0}
        try:
            while True:
                message = await protocol.read_message(reader)
                if message is None:
                    break
                if self.chaos is not None and self.chaos.on_message():
                    self._service_event("chaos-reset")
                    writer.transport.abort()
                    break
                op = message.get("op")
                if "seq" in message:
                    # Worker channel: strict in-order sequencing.  A gap
                    # means frames were lost or replayed — kill the
                    # connection, let the worker re-handshake.
                    expected = conn["seq"] + 1
                    if message["seq"] != expected:
                        await self._send_reply(
                            writer,
                            {
                                "ok": False,
                                "error": (
                                    f"out-of-order seq {message['seq']} "
                                    f"(expected {expected})"
                                ),
                            },
                        )
                        break
                    conn["seq"] = expected
                elif conn["wid"] is not None:
                    await self._send_reply(
                        writer,
                        {"ok": False, "error": "worker message without seq"},
                    )
                    break
                if (
                    op == "ack"
                    and self.chaos is not None
                    and self.chaos.on_ack()
                ):
                    # Lost-ack injection: the records never commit, no
                    # reply is sent; the worker times out and reconnects,
                    # and its resent ack is discarded as stale.
                    self._service_event("chaos-drop-ack")
                    continue
                try:
                    reply = await self._dispatch(op, message, conn, writer)
                except Exception as exc:
                    reply = {
                        "ok": False,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                if reply is not None:
                    await self._send_reply(writer, reply)
                if op == "watch" and reply is not None and reply.get("ok"):
                    await self._stream_job(writer, message.get("job"))
                if op == "shutdown" and reply is not None and reply.get("ok"):
                    asyncio.get_running_loop().create_task(self.stop())
                    break
        except (ConnectionError, OSError, protocol.ProtocolError):
            pass
        finally:
            wid = conn["wid"]
            if wid is not None and self.workers.pop(wid, None) is not None:
                self._counter("ipas_service_worker_disconnects_total").inc()
                self._last_worker_seen = time.monotonic()
                self._requeue_worker_leases(wid)
            try:
                writer.close()
            except Exception:
                pass

    async def _send_reply(self, writer, reply: Dict) -> None:
        if self.chaos is not None:
            delay = self.chaos.reply_delay()
            if delay:
                self._service_event("chaos-delay", seconds=delay)
                await asyncio.sleep(delay)
        protocol.send_message(writer, reply)
        await writer.drain()

    async def _stream_job(self, writer, job_id: Optional[str]) -> None:
        job = self.jobs.get(job_id or "")
        if job is None or job.state in ("done", "failed"):
            return
        queue: asyncio.Queue = asyncio.Queue()
        job.watchers.append(queue)
        try:
            while True:
                event = await queue.get()
                protocol.send_message(writer, event)
                await writer.drain()
                if event.get("op") in ("done", "failed"):
                    break
        finally:
            if queue in job.watchers:
                job.watchers.remove(queue)

    async def _dispatch(
        self, op: str, message: Dict, conn: Dict, writer
    ) -> Optional[Dict]:
        if op == "hello":
            self._worker_counter += 1
            wid = f"w{self._worker_counter}"
            conn["wid"] = wid
            self.workers[wid] = writer
            self._last_worker_seen = time.monotonic()
            self._counter("ipas_service_worker_connects_total").inc()
            return {"ok": True, "op": "hello-ok", "worker": wid}

        if op == "lease":
            if conn["wid"] is None:
                return {"ok": False, "error": "lease before hello"}
            item = self._next_chunk()
            if item is None:
                return {"ok": True, "op": "idle", "backoff": 0.1}
            job, chunk = item
            self._lease_counter += 1
            lease = _Lease(
                f"l{self._lease_counter}",
                job.id,
                conn["wid"],
                chunk.indexes,
                time.monotonic() + self.lease_timeout,
                chunk.attempt,
            )
            self.leases[lease.id] = lease
            self._counter("ipas_service_leases_granted_total").inc()
            return {
                "ok": True,
                "op": "lease",
                "lease": lease.id,
                "job": job.id,
                "spec": job.spec,
                "indexes": chunk.indexes,
                "timeout": self.lease_timeout,
            }

        if op == "heartbeat":
            lease = self.leases.get(message.get("lease") or "")
            if lease is not None and lease.wid == conn["wid"]:
                lease.deadline = time.monotonic() + self.lease_timeout
            return None  # one-way: heartbeats never consume a reply slot

        if op == "ack":
            wid = conn["wid"]
            lease = self.leases.get(message.get("lease") or "")
            if lease is None or lease.wid != wid:
                # At-most-once gate: the lease is gone (expired, requeued
                # after a disconnect, or already acked) or belongs to a
                # previous incarnation of this worker.  The records are
                # NOT committed — the chunk re-runs under its new lease.
                self._counter("ipas_service_acks_discarded_total").inc()
                self._service_event("ack-discarded", worker=wid or "?")
                return {"ok": True, "op": "ack-stale"}
            del self.leases[lease.id]
            job = self.jobs.get(lease.job_id)
            if job is None or job.state not in ("running",):
                self._counter("ipas_service_acks_discarded_total").inc()
                return {"ok": True, "op": "ack-stale"}
            if message.get("error"):
                self._fail_job(job, f"worker {wid}: {message['error']}")
                return {"ok": True, "op": "ack-ok", "committed": 0}
            committed = self._commit(job, message.get("records") or [])
            self._counter("ipas_service_acks_committed_total").inc()
            return {"ok": True, "op": "ack-ok", "committed": committed}

        if op == "submit":
            spec = message.get("spec")
            try:
                canonical_spec(spec)  # eager validation → clear error
            except ValueError as exc:
                return {"ok": False, "error": str(exc)}
            try:
                job, created = await self._get_or_create_job(spec)
            except Exception as exc:
                return {
                    "ok": False,
                    "error": f"build failed: {type(exc).__name__}: {exc}",
                }
            if created:
                disposition = "submitted"
                self._counter("ipas_service_jobs_submitted_total").inc()
                self._service_event(
                    "job-submitted", job=job.id, trials=job.n_trials
                )
            elif job.state == "done":
                disposition = "cached"
                self._counter("ipas_service_jobs_cached_total").inc()
            elif job.state == "failed":
                disposition = "failed"
            else:
                disposition = "attached"
                self._counter("ipas_service_jobs_attached_total").inc()
            reply = {"ok": True}
            reply.update(job.summary())
            # how THIS submission was treated, as opposed to the job's
            # own lifecycle state: submitted | attached | cached | failed
            reply["disposition"] = disposition
            return reply

        if op == "status":
            job_id = message.get("job")
            if job_id is not None:
                job = self.jobs.get(job_id)
                if job is None:
                    return {"ok": False, "error": f"unknown job {job_id!r}"}
                reply = {"ok": True}
                reply.update(job.summary())
                return reply
            return {
                "ok": True,
                "jobs": [job.summary() for job in self.jobs.values()],
                "workers": len(self.workers),
                "leases": len(self.leases),
            }

        if op == "watch":
            job = self.jobs.get(message.get("job") or "")
            if job is None:
                return {"ok": False, "error": f"unknown job {message.get('job')!r}"}
            reply = {"ok": True}
            reply.update(job.summary())
            return reply

        if op == "results":
            job = self.jobs.get(message.get("job") or "")
            if job is None:
                return {"ok": False, "error": f"unknown job {message.get('job')!r}"}
            if job.state == "failed":
                return {"ok": False, "error": job.error or "job failed"}
            if job.state != "done":
                return {
                    "ok": False,
                    "error": f"job {job.id} is {job.state}, not done",
                }
            return {
                "ok": True,
                "job": job.id,
                "entries": job.result_entries,
                "counts": job.outcome_counts(),
            }

        if op == "metrics":
            return {"ok": True, "metrics": self.registry.as_dict()}

        if op == "ping":
            return {"ok": True, "op": "pong"}

        if op == "shutdown":
            return {"ok": True, "op": "bye"}

        return {"ok": False, "error": f"unknown op {op!r}"}
