"""Kernel functions for the SVM (paper §4.3: RBF kernel)."""

from __future__ import annotations

import numpy as np


def squared_distances(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape (len(X), len(Y)).

    Computed with the expansion ||x-y||² = ||x||² + ||y||² - 2x·y and
    clamped at zero (the expansion can go slightly negative in floating
    point).  Grid search reuses one distance matrix across every γ, which is
    what makes 500-configuration sweeps (paper §4.3.2) affordable.
    """
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    xx = np.sum(X * X, axis=1)[:, None]
    yy = np.sum(Y * Y, axis=1)[None, :]
    d = xx + yy - 2.0 * (X @ Y.T)
    np.maximum(d, 0.0, out=d)
    return d


def rbf_kernel(
    X: np.ndarray,
    Y: np.ndarray,
    gamma: float,
    sq_dists: np.ndarray = None,
) -> np.ndarray:
    """K(x, y) = exp(-γ ||x - y||²)."""
    if sq_dists is None:
        sq_dists = squared_distances(X, Y)
    return np.exp(-gamma * sq_dists)


def linear_kernel(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """K(x, y) = x·y (used in tests and as a cheap ablation point)."""
    return np.asarray(X, dtype=np.float64) @ np.asarray(Y, dtype=np.float64).T
