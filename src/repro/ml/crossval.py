"""Cross-validation and (C, γ) grid search (paper §4.3.2 and §6.1).

The paper varies C in [1, 100000] and γ in [1e-5, 1], samples 500
combinations ("configurations"), scores each with 5-fold cross-validated
F-score (Eq. 1), and keeps the top-N (N = 5) configurations for evaluation.
:func:`paper_grid` generates log-spaced grids of any size up to the paper's
500; :class:`GridSearch` produces the ranked configuration list.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .kernels import squared_distances
from .metrics import fscore_eq1
from .svm import SVC


def stratified_kfold(
    y: np.ndarray, k: int = 5, seed: int = 0
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold split indices, deterministic for a given seed.

    Each class's indices are shuffled and dealt round-robin across folds, so
    even a rare class (3–10% SOC samples) appears in every fold when it has
    at least k members.
    """
    y = np.asarray(y)
    rng = random.Random(seed)
    folds: List[List[int]] = [[] for _ in range(k)]
    for cls in np.unique(y):
        indices = list(np.nonzero(y == cls)[0])
        rng.shuffle(indices)
        for i, index in enumerate(indices):
            folds[i % k].append(int(index))
    result = []
    all_indices = set(range(len(y)))
    for fold in folds:
        test = np.array(sorted(fold), dtype=np.int64)
        train = np.array(sorted(all_indices - set(fold)), dtype=np.int64)
        if len(test) and len(train):
            result.append((train, test))
    return result


def cross_val_fscore(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    seed: int = 0,
    sq_dists: Optional[np.ndarray] = None,
) -> float:
    """Mean Eq.-1 F-score over stratified folds.

    ``sq_dists`` optionally carries the full pairwise distance matrix; fold
    submatrices are sliced from it so SVC never recomputes distances.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    scores = []
    for train, test in stratified_kfold(y, k, seed):
        model = model_factory()
        if isinstance(model, SVC) and sq_dists is not None:
            model.fit(X[train], y[train], sq_dists=sq_dists[np.ix_(train, train)])
        else:
            model.fit(X[train], y[train])
        pred = model.predict(X[test])
        scores.append(fscore_eq1(y[test], pred))
    return float(np.mean(scores)) if scores else 0.0


class SvmConfig:
    """One (C, γ) configuration with its cross-validated F-score."""

    __slots__ = ("C", "gamma", "fscore")

    def __init__(self, C: float, gamma: float, fscore: float = 0.0):
        self.C = C
        self.gamma = gamma
        self.fscore = fscore

    def make(self, class_weight="balanced") -> SVC:
        return SVC(C=self.C, gamma=self.gamma, class_weight=class_weight)

    def __repr__(self) -> str:
        return f"<SvmConfig C={self.C:g} gamma={self.gamma:g} F={self.fscore:.3f}>"


def paper_grid(
    n_configs: int = 500,
    c_range: Tuple[float, float] = (1.0, 100000.0),
    gamma_range: Tuple[float, float] = (1e-5, 1.0),
) -> List[Tuple[float, float]]:
    """Log-spaced (C, γ) combinations mirroring the paper's sweep.

    The grid is as square as possible; the paper's full setting is
    ``n_configs=500``, the experiment defaults use a smaller grid for
    laptop-scale runtimes (see ``repro.core.scale``).
    """
    n_c = max(int(round(n_configs**0.5)), 1)
    n_gamma = max((n_configs + n_c - 1) // n_c, 1)
    cs = np.logspace(np.log10(c_range[0]), np.log10(c_range[1]), n_c)
    gammas = np.logspace(np.log10(gamma_range[0]), np.log10(gamma_range[1]), n_gamma)
    grid = [(float(c), float(g)) for c in cs for g in gammas]
    return grid[:n_configs]


class GridSearch:
    """Ranks (C, γ) configurations by cross-validated Eq.-1 F-score."""

    def __init__(
        self,
        grid: Optional[Sequence[Tuple[float, float]]] = None,
        k: int = 5,
        seed: int = 0,
        class_weight="balanced",
        cv_tol: float = 1e-2,
        cv_max_iter: int = 4000,
    ):
        self.grid = list(grid) if grid is not None else paper_grid(64)
        self.k = k
        self.seed = seed
        self.class_weight = class_weight
        # CV fits only rank configurations, so a looser SMO stopping rule
        # (LIBSVM's own grid-search tooling does the same) keeps a
        # 500-configuration sweep affordable; the winners are refitted at
        # full precision by the pipeline.
        self.cv_tol = cv_tol
        self.cv_max_iter = cv_max_iter

    def search(self, X: np.ndarray, y: np.ndarray) -> List[SvmConfig]:
        """All configurations, best F-score first (ties keep grid order)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        sq = squared_distances(X, X)
        configs: List[SvmConfig] = []
        for C, gamma in self.grid:
            score = cross_val_fscore(
                lambda C=C, gamma=gamma: SVC(
                    C=C,
                    gamma=gamma,
                    class_weight=self.class_weight,
                    tol=self.cv_tol,
                    max_iter=self.cv_max_iter,
                ),
                X,
                y,
                k=self.k,
                seed=self.seed,
                sq_dists=sq,
            )
            configs.append(SvmConfig(C, gamma, score))
        configs.sort(key=lambda c: -c.fscore)
        return configs

    def top_configs(self, X: np.ndarray, y: np.ndarray, n: int = 5) -> List[SvmConfig]:
        """The paper's top-N configurations (§6.1, N=5)."""
        return self.search(X, y)[:n]
