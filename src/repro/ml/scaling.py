"""Feature standardisation.

RBF kernels are scale-sensitive, and Table-1 features span wildly different
ranges (booleans next to slice sizes in the thousands), so features are
standardised to zero mean / unit variance before training — the same
preprocessing LIBSVM's documentation prescribes.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature (x - mean) / std, with constant features left at zero."""

    def __init__(self):
        self.mean_: np.ndarray = None
        self.scale_: np.ndarray = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        # A column of identical large values can yield a tiny nonzero std from
        # floating-point cancellation; dividing by it would blow the "constant
        # feature -> exactly zero" guarantee.  Treat std as zero whenever it is
        # negligible relative to the column magnitude.
        tiny = 1e-12 * np.maximum(np.abs(self.mean_), 1.0)
        constant = std <= tiny
        if len(X):
            self.mean_[constant] = X[0, constant]
        std[constant] = 1.0
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
