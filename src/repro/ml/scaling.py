"""Feature standardisation.

RBF kernels are scale-sensitive, and Table-1 features span wildly different
ranges (booleans next to slice sizes in the thousands), so features are
standardised to zero mean / unit variance before training — the same
preprocessing LIBSVM's documentation prescribes.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature (x - mean) / std, with constant features left at zero."""

    def __init__(self):
        self.mean_: np.ndarray = None
        self.scale_: np.ndarray = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0  # constant feature -> centred to exactly zero
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
