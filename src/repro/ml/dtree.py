"""A small CART decision tree and a k-NN classifier.

These exist for the paper's §4.3.1 model-selection claim: "we found that
SVMs meet all of the above requirements, in comparison to other commonly
used classification schemes, such as decision trees and nearest neighbor."
The classifier-ablation benchmark pits them against the SVM on the same
fault-injection data.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class _TreeNode:
    __slots__ = ("feature", "threshold", "left", "right", "prediction")

    def __init__(self):
        self.feature: Optional[int] = None
        self.threshold: float = 0.0
        self.left: Optional["_TreeNode"] = None
        self.right: Optional["_TreeNode"] = None
        self.prediction: int = 0


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier:
    """Binary CART with Gini impurity, optional class weighting."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        class_weight="balanced",
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.class_weight = class_weight
        self._root: Optional[_TreeNode] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if self.class_weight == "balanced":
            n = len(y)
            n1 = max(int(np.sum(y == 1)), 1)
            n0 = max(n - int(np.sum(y == 1)), 1)
            weights = np.where(y == 1, n / (2.0 * n1), n / (2.0 * n0))
        else:
            weights = np.ones(len(y))
        self._root = self._build(X, y, weights, depth=0)
        return self

    def _weighted_counts(self, y, w) -> np.ndarray:
        return np.array([w[y == 0].sum(), w[y == 1].sum()])

    def _build(self, X, y, w, depth) -> _TreeNode:
        node = _TreeNode()
        counts = self._weighted_counts(y, w)
        node.prediction = int(counts[1] > counts[0])
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or counts[0] == 0.0
            or counts[1] == 0.0
        ):
            return node
        best = self._best_split(X, y, w, _gini(counts))
        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _best_split(self, X, y, w, parent_gini):
        best_gain = 1e-9
        best = None
        total_w = w.sum()
        for feature in range(X.shape[1]):
            values = X[:, feature]
            candidates = np.unique(values)
            if len(candidates) < 2:
                continue
            thresholds = (candidates[:-1] + candidates[1:]) / 2.0
            # Cap the threshold scan to keep wide features cheap.
            if len(thresholds) > 32:
                idx = np.linspace(0, len(thresholds) - 1, 32).astype(int)
                thresholds = thresholds[idx]
            for threshold in thresholds:
                mask = values <= threshold
                wl = w[mask]
                wr = w[~mask]
                if wl.sum() == 0.0 or wr.sum() == 0.0:
                    continue
                gl = _gini(self._weighted_counts(y[mask], wl))
                gr = _gini(self._weighted_counts(y[~mask], wr))
                child = (wl.sum() * gl + wr.sum() * gr) / total_w
                gain = parent_gini - child
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros(len(X), dtype=np.int64)
        for i, row in enumerate(X):
            node = self._root
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out


class KNeighborsClassifier:
    """Plain k-NN with optional inverse-frequency class weighting."""

    def __init__(self, k: int = 5, class_weight="balanced"):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.class_weight = class_weight
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._w = (1.0, 1.0)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        self._X = np.asarray(X, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.int64)
        if self.class_weight == "balanced":
            n = len(self._y)
            n1 = max(int(np.sum(self._y == 1)), 1)
            n0 = max(n - n1, 1)
            self._w = (n / (2.0 * n0), n / (2.0 * n1))
        else:
            self._w = (1.0, 1.0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None or self._y is None:
            raise RuntimeError("k-NN is not fitted")
        from .kernels import squared_distances

        X = np.asarray(X, dtype=np.float64)
        d = squared_distances(X, self._X)
        k = min(self.k, len(self._y))
        nearest = np.argpartition(d, k - 1, axis=1)[:, :k]
        out = np.zeros(len(X), dtype=np.int64)
        for i in range(len(X)):
            votes = self._y[nearest[i]]
            score1 = float(np.sum(votes == 1)) * self._w[1]
            score0 = float(np.sum(votes == 0)) * self._w[0]
            out[i] = 1 if score1 > score0 else 0
        return out
