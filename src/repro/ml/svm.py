"""C-SVM with RBF kernel, trained by SMO (the LIBSVM substitute).

The paper trains its classifier with the C-SVC algorithm of Chang & Lin's
LIBSVM [10].  This module implements the same dual problem

    min_α  ½ αᵀQα - eᵀα      s.t.  yᵀα = 0,  0 ≤ α_i ≤ C_i

with Q_ij = y_i y_j K(x_i, x_j), solved by sequential minimal optimisation
using the maximal-violating-pair working-set selection (WSS1 of Fan, Chen &
Lin 2005) — deterministic, no randomisation.

Class imbalance (paper §4.3.1: only 3–10% of samples are SOC) is handled
with per-class penalties C_i = C·w_{y_i}; ``class_weight="balanced"``
scales each class inversely to its frequency.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from .kernels import rbf_kernel, squared_distances

_TAU = 1e-12


class SVC:
    """Support-vector classifier for two classes labelled {0, 1}."""

    def __init__(
        self,
        C: float = 1.0,
        gamma: float = 0.1,
        class_weight: Union[str, Dict[int, float], None] = "balanced",
        tol: float = 1e-3,
        max_iter: int = 20000,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.C = C
        self.gamma = gamma
        self.class_weight = class_weight
        self.tol = tol
        self.max_iter = max_iter
        # fitted state
        self.support_vectors_: Optional[np.ndarray] = None
        self.dual_coef_: Optional[np.ndarray] = None  # α_i y_i for SVs
        self.intercept_: float = 0.0
        self.n_iter_: int = 0
        self._constant_class: Optional[int] = None

    # -- training -----------------------------------------------------------------

    def _class_weights(self, y_signed: np.ndarray) -> np.ndarray:
        n = len(y_signed)
        n_pos = int(np.sum(y_signed > 0))
        n_neg = n - n_pos
        if self.class_weight is None:
            w_pos = w_neg = 1.0
        elif self.class_weight == "balanced":
            w_pos = n / (2.0 * n_pos) if n_pos else 1.0
            w_neg = n / (2.0 * n_neg) if n_neg else 1.0
        elif isinstance(self.class_weight, dict):
            w_pos = float(self.class_weight.get(1, 1.0))
            w_neg = float(self.class_weight.get(0, 1.0))
        else:
            raise ValueError(f"bad class_weight: {self.class_weight!r}")
        return np.where(y_signed > 0, self.C * w_pos, self.C * w_neg)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sq_dists: Optional[np.ndarray] = None,
    ) -> "SVC":
        """Train on features ``X`` and labels ``y`` in {0, 1}.

        ``sq_dists`` optionally supplies the precomputed pairwise squared
        distance matrix of ``X`` (reused across γ values in grid search).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X and y shapes are inconsistent")
        if not np.all(np.isin(y, (0, 1))):
            raise ValueError("labels must be 0 or 1")
        classes = np.unique(y)
        if len(classes) == 1:
            # Degenerate training set: predict the constant class.
            self._constant_class = int(classes[0])
            self.support_vectors_ = X[:0]
            self.dual_coef_ = np.zeros(0)
            self.intercept_ = 0.0
            self.n_iter_ = 0
            return self
        self._constant_class = None

        y_signed = np.where(y == 1, 1.0, -1.0)
        n = len(y_signed)
        K = rbf_kernel(X, X, self.gamma, sq_dists=sq_dists)
        upper = self._class_weights(y_signed)

        alpha = np.zeros(n)
        grad = -np.ones(n)  # G = Qα - e; α = 0 initially
        diag = np.diag(K).copy()

        n_iter = 0
        while n_iter < self.max_iter:
            n_iter += 1
            # Working-set selection: maximal violating pair.
            minus_yg = -y_signed * grad
            up_mask = ((y_signed > 0) & (alpha < upper)) | ((y_signed < 0) & (alpha > 0))
            low_mask = ((y_signed < 0) & (alpha < upper)) | ((y_signed > 0) & (alpha > 0))
            if not up_mask.any() or not low_mask.any():
                break
            up_vals = np.where(up_mask, minus_yg, -np.inf)
            low_vals = np.where(low_mask, minus_yg, np.inf)
            i = int(np.argmax(up_vals))
            j = int(np.argmin(low_vals))
            m_alpha = up_vals[i]
            M_alpha = low_vals[j]
            if m_alpha - M_alpha < self.tol:
                break

            eta = diag[i] + diag[j] - 2.0 * K[i, j]
            if eta < _TAU:
                eta = _TAU
            # Unconstrained step along the feasible direction
            # Δα_i = y_i d,  Δα_j = -y_j d.
            d = (m_alpha - M_alpha) / eta
            # Box constraints for both coordinates.  Membership in
            # I_up/I_low guarantees both headrooms are strictly positive.
            if y_signed[i] > 0:
                d_max_i = upper[i] - alpha[i]
            else:
                d_max_i = alpha[i]
            if y_signed[j] > 0:
                d_max_j = alpha[j]
            else:
                d_max_j = upper[j] - alpha[j]
            d = min(d, d_max_i, d_max_j)
            if d <= 0.0:
                break  # numerically stuck; current point is near-optimal

            delta_i = y_signed[i] * d
            delta_j = -y_signed[j] * d
            alpha[i] += delta_i
            alpha[j] += delta_j
            # Gradient maintenance: G += Q[:, i] Δα_i + Q[:, j] Δα_j.
            grad += (y_signed * y_signed[i] * K[:, i]) * delta_i
            grad += (y_signed * y_signed[j] * K[:, j]) * delta_j

        self.n_iter_ = n_iter
        # Intercept from the final violating-pair bounds.
        minus_yg = -y_signed * grad
        up_mask = ((y_signed > 0) & (alpha < upper)) | ((y_signed < 0) & (alpha > 0))
        low_mask = ((y_signed < 0) & (alpha < upper)) | ((y_signed > 0) & (alpha > 0))
        m_alpha = np.max(np.where(up_mask, minus_yg, -np.inf)) if up_mask.any() else 0.0
        M_alpha = np.min(np.where(low_mask, minus_yg, np.inf)) if low_mask.any() else 0.0
        # For a free SV, optimality gives b = -y_i G_i, which is exactly the
        # quantity m/M bound from both sides; take the midpoint.
        self.intercept_ = (m_alpha + M_alpha) / 2.0

        sv_mask = alpha > 1e-10
        self.support_vectors_ = X[sv_mask]
        self.dual_coef_ = (alpha * y_signed)[sv_mask]
        return self

    # -- prediction -----------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.support_vectors_ is None:
            raise RuntimeError("SVC is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if self._constant_class is not None:
            sign = 1.0 if self._constant_class == 1 else -1.0
            return np.full(len(X), sign)
        if len(self.support_vectors_) == 0:
            return np.full(len(X), self.intercept_)
        K = rbf_kernel(X, self.support_vectors_, self.gamma)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {0, 1}."""
        return (self.decision_function(X) > 0).astype(np.int64)

    @property
    def n_support_(self) -> int:
        return 0 if self.support_vectors_ is None else len(self.support_vectors_)

    def __repr__(self) -> str:
        return f"SVC(C={self.C}, gamma={self.gamma}, class_weight={self.class_weight!r})"
