"""Save/load trained classifiers as JSON.

The IPAS workflow ends with a protected binary, but the trained classifier
itself is worth keeping: the paper's §7 suggests protecting large codes
kernel-by-kernel, and a saved model lets later kernels (or later builds of
the same code) be protected without repeating the fault-injection campaign.
JSON keeps the artifacts diff-able and free of pickle's code-execution
hazards.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from .scaling import StandardScaler
from .svm import SVC

FORMAT_VERSION = 1


def svc_to_dict(model: SVC) -> Dict:
    if model.support_vectors_ is None:
        raise ValueError("cannot serialise an unfitted SVC")
    return {
        "format": FORMAT_VERSION,
        "kind": "svc",
        "C": model.C,
        "gamma": model.gamma,
        "class_weight": model.class_weight,
        "intercept": model.intercept_,
        "constant_class": model._constant_class,
        "support_vectors": model.support_vectors_.tolist(),
        "dual_coef": model.dual_coef_.tolist(),
    }


def svc_from_dict(data: Dict) -> SVC:
    if data.get("kind") != "svc":
        raise ValueError(f"not a serialised SVC: kind={data.get('kind')!r}")
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported SVC format {data.get('format')!r}")
    model = SVC(C=data["C"], gamma=data["gamma"], class_weight=data["class_weight"])
    model.support_vectors_ = np.asarray(data["support_vectors"], dtype=np.float64)
    if model.support_vectors_.ndim == 1:
        model.support_vectors_ = model.support_vectors_.reshape(0, 0)
    model.dual_coef_ = np.asarray(data["dual_coef"], dtype=np.float64)
    model.intercept_ = float(data["intercept"])
    model._constant_class = data["constant_class"]
    return model


def scaler_to_dict(scaler: StandardScaler) -> Dict:
    if scaler.mean_ is None:
        raise ValueError("cannot serialise an unfitted scaler")
    return {
        "format": FORMAT_VERSION,
        "kind": "standard_scaler",
        "mean": scaler.mean_.tolist(),
        "scale": scaler.scale_.tolist(),
    }


def scaler_from_dict(data: Dict) -> StandardScaler:
    if data.get("kind") != "standard_scaler":
        raise ValueError(f"not a serialised scaler: kind={data.get('kind')!r}")
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(data["mean"], dtype=np.float64)
    scaler.scale_ = np.asarray(data["scale"], dtype=np.float64)
    return scaler


def save_classifier(
    path: Union[str, Path], model: SVC, scaler: StandardScaler = None, metadata: Dict = None
) -> None:
    """Persist a trained model (+ optional scaler and metadata) to JSON."""
    payload: Dict = {"model": svc_to_dict(model)}
    if scaler is not None:
        payload["scaler"] = scaler_to_dict(scaler)
    if metadata is not None:
        payload["metadata"] = metadata
    Path(path).write_text(json.dumps(payload, indent=1))


def load_classifier(path: Union[str, Path]):
    """Load (model, scaler_or_None, metadata_dict) from JSON."""
    payload = json.loads(Path(path).read_text())
    model = svc_from_dict(payload["model"])
    scaler = scaler_from_dict(payload["scaler"]) if "scaler" in payload else None
    return model, scaler, payload.get("metadata", {})
