"""Classification metrics, centred on the paper's F-score (Eq. 1).

The paper's F-score is *not* the usual precision/recall F1: it is the
harmonic mean of the two per-class accuracies (sensitivity and
specificity), which rewards classifiers that do well on *both* the rare
SOC-generating class and the common benign class — exactly the property
IPAS needs (§4.3.2).
"""

from __future__ import annotations

from typing import Dict

import numpy as np


def class_accuracies(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[int, float]:
    """Per-class accuracy (recall of each class); 0.0 for an absent class."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    result: Dict[int, float] = {}
    for cls in (1, 0):
        mask = y_true == cls
        if not mask.any():
            result[cls] = 0.0
        else:
            result[cls] = float(np.mean(y_pred[mask] == cls))
    return result


def fscore_eq1(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Paper Eq. 1: 2·acc₁·acc₂ / (acc₁ + acc₂).

    ``acc₁`` is the fraction of class-1 (SOC-generating) examples classified
    correctly; ``acc₂`` the same for class 2 (labelled 0 here).  Ranges 0–1.
    """
    acc = class_accuracies(y_true, y_pred)
    a1, a2 = acc[1], acc[0]
    if a1 + a2 == 0.0:
        return 0.0
    return 2.0 * a1 * a2 / (a1 + a2)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, int]:
    """Binary confusion counts with class 1 as 'positive'."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return {
        "tp": int(np.sum((y_true == 1) & (y_pred == 1))),
        "fp": int(np.sum((y_true == 0) & (y_pred == 1))),
        "fn": int(np.sum((y_true == 1) & (y_pred == 0))),
        "tn": int(np.sum((y_true == 0) & (y_pred == 0))),
    }


def precision_recall(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, float]:
    c = confusion(y_true, y_pred)
    precision = c["tp"] / (c["tp"] + c["fp"]) if (c["tp"] + c["fp"]) else 0.0
    recall = c["tp"] / (c["tp"] + c["fn"]) if (c["tp"] + c["fn"]) else 0.0
    return {"precision": precision, "recall": recall}
