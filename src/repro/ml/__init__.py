"""repro.ml — from-scratch machine learning: SMO C-SVM (the LIBSVM
substitute), decision tree and k-NN comparators, scaling, CV, grids."""

from .kernels import linear_kernel, rbf_kernel, squared_distances
from .scaling import StandardScaler
from .svm import SVC
from .dtree import DecisionTreeClassifier, KNeighborsClassifier
from .metrics import (
    accuracy,
    class_accuracies,
    confusion,
    fscore_eq1,
    precision_recall,
)
from .persistence import (
    load_classifier,
    save_classifier,
    scaler_from_dict,
    scaler_to_dict,
    svc_from_dict,
    svc_to_dict,
)
from .crossval import (
    GridSearch,
    SvmConfig,
    cross_val_fscore,
    paper_grid,
    stratified_kfold,
)

__all__ = [
    "linear_kernel", "rbf_kernel", "squared_distances",
    "StandardScaler", "SVC",
    "DecisionTreeClassifier", "KNeighborsClassifier",
    "accuracy", "class_accuracies", "confusion", "fscore_eq1",
    "precision_recall",
    "load_classifier", "save_classifier", "scaler_from_dict",
    "scaler_to_dict", "svc_from_dict", "svc_to_dict",
    "GridSearch", "SvmConfig", "cross_val_fscore", "paper_grid",
    "stratified_kfold",
]
