"""Golden-run snapshot ladders: prefix-memoized warm-start trials.

Every injection trial historically re-executed the workload from
instruction 0 even though the fault fires at one known dynamic instance —
campaign cost was O(trials × program) when it should be O(trials × suffix)
(FastFlip's observation; see PAPERS.md).  This module supplies the state
containers for the warm-start engine in
:mod:`repro.interp.interpreter`:

* During the (already mandatory) golden profiled run the interpreter
  captures a **ladder** of :class:`WarmSnapshot` rungs — the *full* cells
  image, stack pointer, the entire frame stack (generalizing the
  single-frame recovery :class:`~repro.recover.runtime.Snapshot`), the
  output log, the block-execution profile, and recovery telemetry counters
  — at a configurable cycle stride plus at region boundaries from
  :mod:`repro.recover.regions`.

* Each trial restores the latest rung whose state precedes its injection
  point (:meth:`SnapshotLadder.plan_site`) and executes only the suffix.
  The injector's occurrence counter is re-derived from the rung's profile,
  so the flip lands on exactly the same dynamic instance as a cold run.

* When no recovery policy is armed, trials additionally *resync* against
  later rungs: once the flip has fired, reaching a rung's cycle count with
  bit-identical state proves the remaining execution equals the golden
  suffix, so the run finishes immediately with the golden result
  (:class:`GoldenResync`) — the masked-trial fast path.

Cells snapshots are **full** images (not ``cells[:sp]``): dead residue
beyond ``sp`` must match the cold run bit-for-bit, because a wild pointer
produced by a flip may read it.  Rungs are immutable once captured and are
shared copy-on-write across forked campaign workers.
"""

from __future__ import annotations

from bisect import bisect_left
from math import copysign
from typing import Dict, List, Optional, Tuple

from ..ir.instructions import CallInst


class GoldenResync(Exception):
    """A warm trial's state became bit-identical to a golden rung.

    Raised out of the dispatch loop; the interpreter finishes the run with
    the golden result (status ``ok``, golden return value, and golden
    cycles shifted by ``delta``).  Deterministic execution makes this
    sound: identical state implies identical remaining execution, and the
    cycle charges of that execution are a function of the state alone, so
    a trial matching a rung at ``rung.cycles + delta`` finishes with
    exactly ``golden_cycles + delta`` — what its cold twin reports.
    ``delta`` is nonzero for trials whose divergent episode shortened or
    lengthened a loop before the state reconverged (the resulting constant
    cycle offset would make the exact-cycle rendezvous miss forever).
    """

    def __init__(self, delta: int = 0):
        super().__init__(delta)
        self.delta = delta


def exact_state_eq(a, b) -> bool:
    """Bit-exact list equality, stricter than ``==``.

    ``==`` alone would equate ``1`` with ``1.0`` and ``True`` (a wild store
    can legally leave either in a cell, and the suffix may then diverge —
    e.g. ``&`` on a float raises), and ``0.0`` with ``-0.0`` (which differ
    through the ``bitcast`` intrinsic).  NaN never compares equal, so a
    NaN-bearing state conservatively rejects — resync is an optimization,
    never a requirement.
    """
    if a != b:
        return False
    for x, y in zip(a, b):
        if type(x) is not type(y):
            return False
        if type(x) is float and x == 0.0 and copysign(1.0, x) != copysign(1.0, y):
            return False
    return True


class WarmFrame:
    """One suspended (or innermost) call frame inside a ladder rung.

    ``call_k`` is the 0-based index of the pending non-declaration call
    inside block ``bi`` for suspended frames — blocks are straight-line, so
    it identifies the exact call instruction to resume after.  ``None``
    marks the innermost frame, which re-enters the dispatch loop at ``bi``
    (that block has not been charged or profiled yet: captures happen at
    the loop top, before the block runs).
    """

    __slots__ = ("cfi", "bi", "call_k", "regs", "sp0", "rec_mine", "rec_pinned")

    def __init__(
        self,
        cfi: int,
        bi: int,
        call_k: Optional[int],
        regs: List,
        sp0: int,
        rec_mine=None,
        rec_pinned: bool = False,
    ):
        self.cfi = cfi
        self.bi = bi
        self.call_k = call_k
        self.regs = regs
        self.sp0 = sp0
        #: the frame's live recovery Snapshot at capture time (or None);
        #: restored as a fresh copy so trials never mutate the ladder
        self.rec_mine = rec_mine
        #: ``rec_mine.pinned`` at the capture instant — ``pin()`` mutates
        #: snapshots after the fact, so the flag must be frozen here
        self.rec_pinned = rec_pinned

    def __repr__(self) -> str:
        return f"<WarmFrame cfi={self.cfi} bi={self.bi} call_k={self.call_k}>"


class WarmSnapshot:
    """One rung of the ladder: a complete mid-run interpreter state."""

    __slots__ = (
        "index", "cycles", "cells", "sp", "frames", "out_log", "profile",
        "rec_snapshots", "rec_last_cycles", "_sig",
    )

    def __init__(
        self,
        index: int,
        cycles: int,
        cells: List,
        sp: int,
        frames: Tuple[WarmFrame, ...],
        out_log: List,
        profile: List[int],
        rec_snapshots: int = 0,
        rec_last_cycles: Optional[int] = None,
    ):
        self.index = index
        self.cycles = cycles
        self.cells = cells
        self.sp = sp
        #: outermost frame first; the last entry is the innermost frame
        self.frames = frames
        self.out_log = out_log
        #: per-block execution counts at the capture instant — the source
        #: of truth for re-deriving injector occurrence counters
        self.profile = profile
        #: recovery telemetry counters at capture (golden runs under a
        #: policy snapshot too, and the counts must replay exactly)
        self.rec_snapshots = rec_snapshots
        self.rec_last_cycles = rec_last_cycles
        self._sig = None

    def state_signature(self):
        """Lazy type/sign digest of ``cells`` for strict resync matching.

        After the C-speed ``==`` compare passes, the only ways a trial
        cell can still differ from the golden cell are a type confusion
        between ``==``-equal values (``1`` / ``1.0`` / ``True``) or a zero
        sign (``0.0`` vs ``-0.0``).  A *non-integral* float has no
        ``==``-equal partner of another type, so only "suspect" positions
        — ints, bools, integral floats, and anything exotic — need a type
        check at all.  The digest is ``(suspects, types, zeros, signs)``:

        * ``suspects`` — indices needing a type check, or ``None`` when
          suspects are so dense (int-heavy workloads) that a full
          C-speed ``map(type, ...)`` compare beats indexed access;
        * ``types`` — the expected types (full list when ``suspects`` is
          ``None``, else aligned with ``suspects``);
        * ``zeros`` / ``signs`` — float-zero positions and their signs.
        """
        sig = self._sig
        if sig is None:
            cells = self.cells
            suspects = []
            zeros = []
            for i, v in enumerate(cells):
                if type(v) is float:
                    if v == 0.0:
                        zeros.append(i)
                        suspects.append(i)
                    elif v.is_integer():
                        suspects.append(i)
                else:
                    suspects.append(i)
            signs = [copysign(1.0, cells[i]) for i in zeros]
            if len(suspects) * 4 > len(cells):
                sig = (None, list(map(type, cells)), zeros, signs)
            else:
                sig = (suspects, [type(cells[i]) for i in suspects], zeros, signs)
            self._sig = sig
        return sig

    def __repr__(self) -> str:
        return (
            f"<WarmSnapshot #{self.index} cycles={self.cycles} "
            f"frames={len(self.frames)}>"
        )


class WarmStart:
    """Per-trial warm-start instruction handed to ``Interpreter.run``.

    ``snapshot`` is the rung to restore (``None`` = start cold — the
    injection point precedes the first rung); ``inj_seen`` is the number
    of dynamic executions of the injected instruction that already happened
    before the rung, so the occurrence counter continues exactly where the
    cold run would be.  ``resync`` arms the golden-resync fast path (safe
    only without a recovery policy, whose telemetry must replay in full).
    """

    __slots__ = ("ladder", "snapshot", "inj_seen", "resync")

    def __init__(
        self,
        ladder: "SnapshotLadder",
        snapshot: Optional[WarmSnapshot],
        inj_seen: int = 0,
        resync: bool = True,
    ):
        self.ladder = ladder
        self.snapshot = snapshot
        self.inj_seen = inj_seen
        self.resync = resync


class SnapshotLadder:
    """All rungs of one golden run, plus fault-site planning."""

    def __init__(
        self,
        snapshots: List[WarmSnapshot],
        stride: int,
        golden_cycles: int,
        golden_value,
        entry: str = "main",
    ):
        #: rungs in capture order (strictly increasing cycles)
        self.snapshots = snapshots
        self.stride = stride
        self.golden_cycles = golden_cycles
        self.golden_value = golden_value
        self.entry = entry
        # position caches for plan_site's occurrence accounting
        self._inst_pos: Dict[int, int] = {}
        self._call_pos: Dict[Tuple[int, int], List[int]] = {}
        # plan_site acceleration: per-gid profile columns (monotone, so
        # rung selection bisects instead of scanning), the deepest frame
        # stack in the ladder (bounds the over-count correction), and a
        # memo keyed by (instruction, occurrence) — the bucketing pass in
        # the campaign engine plans every pending site up front, so the
        # per-trial plan in run_site becomes a dict hit.
        self._profile_col: Dict[int, List[int]] = {}
        self._max_depth = max((len(s.frames) for s in snapshots), default=0)
        self._plan_memo: Dict[Tuple[int, int], Tuple[Optional[WarmSnapshot], int]] = {}

    def __len__(self) -> int:
        return len(self.snapshots)

    def signature(self) -> str:
        """Stable identity for campaign fingerprints."""
        return f"warm1|{self.stride}"

    # -- fault-site planning ----------------------------------------------------

    def _inst_position(self, cm, inst) -> int:
        pos = self._inst_pos.get(id(inst))
        if pos is None:
            # Index the whole block in one pass: fault sites hit most
            # instructions of a hot block eventually, and a per-site scan
            # of a large block costs more than this entire map.
            for i, candidate in enumerate(inst.parent.instructions):
                self._inst_pos.setdefault(id(candidate), i)
            pos = self._inst_pos.get(id(inst), 0)
        return pos

    def _call_positions(self, cm, cfi: int, bi: int) -> List[int]:
        key = (cfi, bi)
        positions = self._call_pos.get(key)
        if positions is None:
            block = cm.cfuncs[cfi].fn.blocks[bi]
            positions = [
                i
                for i, inst in enumerate(block.instructions)
                if isinstance(inst, CallInst) and not inst.callee.is_declaration
            ]
            self._call_pos[key] = positions
        return positions

    def plan_site(self, cm, site) -> Tuple[Optional[WarmSnapshot], int]:
        """The latest rung strictly before ``site``'s injection point.

        Returns ``(snapshot, inj_seen)`` where ``inj_seen`` is how many
        dynamic executions of the site's instruction precede the rung, or
        ``(None, 0)`` when the injection fires before the first rung.

        Occurrence accounting: a rung's ``profile[gid]`` counts *entered*
        block instances, which over-counts executions of the target
        instruction by one for each suspended frame whose pending call
        sits at-or-before the instruction within the same block (the block
        was charged and profiled at entry, but execution stopped at the
        call).  The innermost frame's about-to-run block is *not* yet
        profiled, so it needs no correction.
        """
        inst = site.instruction
        occurrence = site.occurrence
        memo_key = (id(inst), occurrence)
        plan = self._plan_memo.get(memo_key)
        if plan is not None:
            return plan
        record = cm.record_for(inst)
        gid = record.block_gid
        pos = self._inst_position(cm, inst)
        snapshots = self.snapshots

        def corrected(snap: WarmSnapshot) -> int:
            seen = snap.profile[gid]
            # Deduct suspended instances that had not reached the
            # instruction yet when the rung was captured — unconditionally:
            # ``seen`` doubles as the trial's resumed occurrence counter,
            # so an uncorrected over-count would fire the flip one dynamic
            # instance early even when eligibility is not in question.
            for wf in snap.frames:
                if (
                    wf.call_k is not None
                    and wf.cfi == record.cfi
                    and wf.bi == record.block_index
                ):
                    calls = self._call_positions(cm, wf.cfi, wf.bi)
                    if calls[wf.call_k] <= pos:
                        seen -= 1
            return seen

        # The raw profile column is nondecreasing over rungs, so the
        # latest rung with corrected count < occurrence sits at the bisect
        # point or within the correction band above it (the correction
        # only ever subtracts, by at most the frame-stack depth).
        col = self._profile_col.get(gid)
        if col is None:
            col = [s.profile[gid] for s in snapshots]
            self._profile_col[gid] = col
        lo = bisect_left(col, occurrence)
        plan = (None, 0)
        ceiling = occurrence + self._max_depth
        j = lo
        while j < len(col) and col[j] < ceiling:
            seen = corrected(snapshots[j])
            if seen < occurrence:
                plan = (snapshots[j], seen)
            j += 1
        if plan[0] is None and lo > 0:
            snap = snapshots[lo - 1]
            plan = (snap, corrected(snap))
        self._plan_memo[memo_key] = plan
        return plan

    def __repr__(self) -> str:
        return (
            f"<SnapshotLadder rungs={len(self.snapshots)} "
            f"stride={self.stride} golden_cycles={self.golden_cycles}>"
        )


class _TrackState:
    """Mutable per-run tracking used by capture and resync modes.

    ``frames`` mirrors the live call stack as mutable records
    ``[cfi, bi, calls_made, frame, sp0, rec_mine]`` so a capture (or a
    resync comparison) can reconstruct every suspended frame without
    slowing the non-tracked hot loop.
    """

    __slots__ = (
        "frames", "capturing", "plan", "stride", "region_spacing",
        "next_capture", "last_capture", "ladder", "resync_pts", "ri",
        "next_resync", "primed", "fails", "max_fails", "cand",
        "probe_dead", "probe_fails", "golden_cycles",
    )

    _NEVER = 1 << 62

    #: Consecutive missed rendezvous (failed compare or overshot rung)
    #: after which a trial stops attempting golden resync.  A trial whose
    #: state has stayed divergent across this many rungs almost never
    #: reconverges bit-exactly later, and each further attempt costs a
    #: full-state compare — giving up only forfeits a fast path, never
    #: correctness (the suffix still executes to its cold-identical end).
    #: Four misses is the measured sweet spot on the fig8 workloads: the
    #: resync catch count saturates there while every extra tolerated miss
    #: keeps the per-block tracking loop (and its compares) alive longer.
    MAX_RESYNC_FAILS = 4

    #: Rungs around the cycle cursor probed for *offset* rendezvous (state
    #: matches a rung at a shifted cycle count): one behind for trials
    #: running late, two ahead for trials whose divergence shortened loops.
    PROBE_BEHIND = 1
    PROBE_AHEAD = 3

    #: Failed full-state compares triggered by the register prefilter after
    #: which probing shuts off for the trial (the prefilter is clearly
    #: firing on noise, and each miss costs a full compare).
    MAX_PROBE_FAILS = 8

    def __init__(self):
        self.frames: List[list] = []
        # capture mode (golden run)
        self.capturing = False
        self.plan: Optional[Dict[int, frozenset]] = None
        self.stride = 0
        self.region_spacing = 1
        self.next_capture = self._NEVER
        self.last_capture = 0
        self.ladder: Optional[List[WarmSnapshot]] = None
        # resync mode (warm trials without recovery)
        self.resync_pts: Optional[List[WarmSnapshot]] = None
        self.ri = 0
        self.next_resync = 0
        self.primed = False  # True once the first post-flip check targeted a rung
        self.fails = 0
        self.max_fails = self.MAX_RESYNC_FAILS
        #: offset-rendezvous probe window: ((rung, innermost regs), ...)
        self.cand: tuple = ()
        self.probe_dead: set = set()
        self.probe_fails = 0
        self.golden_cycles = 0

    def rebuild_cand(self) -> None:
        """Refresh the offset-probe window around the cycle cursor ``ri``."""
        if self.probe_fails >= self.MAX_PROBE_FAILS:
            self.cand = ()
            return
        pts = self.resync_pts
        lo = max(self.ri - self.PROBE_BEHIND, 0)
        hi = min(self.ri + self.PROBE_AHEAD, len(pts))
        self.cand = tuple(
            (snap, snap.frames[-1].regs)
            for snap in pts[lo:hi]
            if snap.index not in self.probe_dead and snap.frames
        )

    def capture(self, interp) -> None:
        """Record one rung from the live interpreter state."""
        frames = self.frames
        last = len(frames) - 1
        wframes = []
        for i, r in enumerate(frames):
            mine = r[5]
            wframes.append(
                WarmFrame(
                    r[0],
                    r[1],
                    # suspended frames resume after their pending call
                    # (calls_made is 1-based, call_k is 0-based); the
                    # innermost frame re-enters its loop at bi
                    (r[2] - 1) if i < last else None,
                    list(r[3]),
                    r[4],
                    mine,
                    mine.pinned if mine is not None else False,
                )
            )
        rec = interp.rec
        snap = WarmSnapshot(
            index=len(self.ladder),
            cycles=interp.cycles,
            cells=list(interp.cells),
            sp=interp.sp,
            frames=tuple(wframes),
            out_log=list(interp.output_log),
            profile=list(interp.prof),
            rec_snapshots=rec.telemetry.snapshots if rec is not None else 0,
            rec_last_cycles=rec.last_snapshot_cycles if rec is not None else None,
        )
        self.ladder.append(snap)
        self.next_capture = interp.cycles + self.stride
        self.last_capture = interp.cycles
