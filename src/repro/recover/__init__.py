"""Detect-and-recover runtime (rollback re-execution).

The paper treats ``DETECTED`` as terminal and assumes an external
checkpoint/restart system turns it into a recovered run; this package
closes that loop *inside* the interpreter.  At region boundaries (function
entry and natural-loop headers) the interpreter snapshots its live state;
when an ``ipas.check.*`` intrinsic fires, the run rolls back to the most
recent snapshot and re-executes instead of aborting.  A successful rollback
under the transient-fault model yields output bit-identical to the
fault-free run — the campaign layer classifies such trials ``CORRECTED``.

When recovery cannot proceed safely (tainted or pinned snapshots, exhausted
retry caps), the runtime *escalates* back to the paper's fail-stop
``DETECTED`` outcome — never a harness crash.
"""

from .regions import build_plan, compute_regions, function_has_checks
from .runtime import (
    RecoveryPolicy,
    RecoveryState,
    RecoveryTelemetry,
    RollbackSignal,
    Snapshot,
    summarize_telemetry,
)
from .warm import (
    GoldenResync,
    SnapshotLadder,
    WarmFrame,
    WarmSnapshot,
    WarmStart,
    exact_state_eq,
)

__all__ = [
    "GoldenResync",
    "RecoveryPolicy",
    "RecoveryState",
    "RecoveryTelemetry",
    "RollbackSignal",
    "Snapshot",
    "SnapshotLadder",
    "WarmFrame",
    "WarmSnapshot",
    "WarmStart",
    "build_plan",
    "compute_regions",
    "exact_state_eq",
    "function_has_checks",
    "summarize_telemetry",
]
