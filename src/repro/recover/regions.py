"""Region planning: where snapshots are taken.

A *region boundary* is a block whose entry is a safe restart point: the
function's entry block, plus every natural-loop header (found with the
existing dominator/loop machinery).  Only functions that actually contain
``ipas.check.*`` calls get boundaries — an unchecked function can never
fire a check of its own, and its caller's snapshot already covers it.

The duplication pass records its regions as module metadata
(``module.recovery_regions``); :func:`build_plan` prefers that and falls
back to recomputing from the IR, so recovery also works on modules
protected outside the pass.  The run's entry function always gets a
function-entry snapshot: it is the outermost restart point, taken before
any fault can fire, so escalation always has an untainted floor unless a
collective pinned it.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..analysis.loops import LoopInfo
from ..ir.function import Function
from ..ir.instructions import CallInst
from ..ir.module import Module


def function_has_checks(fn: Function) -> bool:
    """Whether the function contains any ``ipas.check.*`` intrinsic call."""
    for block in fn.blocks:
        for inst in block.instructions:
            if isinstance(inst, CallInst) and inst.callee.name.startswith(
                "ipas.check"
            ):
                return True
    return False


def compute_regions(module: Module) -> Dict[str, Tuple[str, ...]]:
    """Snapshot-boundary block names per check-containing function."""
    regions: Dict[str, Tuple[str, ...]] = {}
    for fn in module.defined_functions():
        if not fn.blocks or not function_has_checks(fn):
            continue
        entry_name = fn.blocks[0].name
        names = [entry_name]
        info = LoopInfo(fn)
        for header in sorted({loop.header.name for loop in info.loops}):
            if header != entry_name:
                names.append(header)
        regions[fn.name] = tuple(names)
    return regions


def build_plan(cm, entry: str = "main") -> Dict[int, frozenset]:
    """Resolve region block names to ``cfi -> {local block index}``.

    ``cm`` is a :class:`~repro.interp.compiler.CompiledModule`; the plan is
    what the interpreter's recovery dispatch loop consults per frame.
    """
    regions = getattr(cm.module, "recovery_regions", None)
    if regions is None:
        regions = compute_regions(cm.module)
    plan: Dict[int, frozenset] = {}
    for fn_name, block_names in regions.items():
        cfi = cm.func_index.get(fn_name)
        if cfi is None:
            continue
        index = {b.name: i for i, b in enumerate(cm.cfuncs[cfi].fn.blocks)}
        boundaries = {index[name] for name in block_names if name in index}
        if boundaries:
            plan[cfi] = frozenset(boundaries)
    entry_cfi = cm.func_index.get(entry)
    if entry_cfi is not None:
        plan[entry_cfi] = frozenset(plan.get(entry_cfi, frozenset()) | {0})
    return plan
