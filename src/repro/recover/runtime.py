"""Recovery policy, snapshots, and the escalation ladder.

The mechanism is exception-based: when recovery is active, a fired
``ipas.check.*`` intrinsic raises :class:`RollbackSignal` instead of the
fail-stop :class:`~repro.interp.errors.DetectedByDuplication`.  The signal
unwinds to the innermost call frame holding a snapshot (the interpreter
keeps at most one live snapshot per recovery-aware frame, stacked
outermost-first, so the frame that catches the signal always owns the stack
top).  The frame then either *rolls back* — restores the snapshot and
resumes its block-dispatch loop at the snapshot's block — or *escalates*
outward when the ladder says the snapshot must not be restored:

``pinned``
    Irreversible communication (an MPI collective) happened after the
    snapshot was taken; re-executing would replay the exchange.
``tainted``
    The injected fault fired *before* the snapshot was captured, so the
    snapshot itself holds corrupted state; restoring it would silently
    convert a detection into an SOC.
``rollback-cap`` / ``cycle-budget`` / ``region-retries``
    Retry exhaustion: the total rollback cap, the cumulative re-executed
    cycle budget, or the per-region retry cap was reached.

Escalation past the outermost snapshot degrades to the paper's fail-stop
``DETECTED`` outcome.  Under the single-transient-fault model a rollback
also disarms the injector (the flip happened once; the re-execution must
not replay it), which is what makes corrected runs bit-identical to the
fault-free baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class RollbackSignal(Exception):
    """A duplication check fired while recovery is active.

    Carries the same detection context as
    :class:`~repro.interp.errors.DetectedByDuplication` so escalation can
    reconstruct the fail-stop error without losing provenance.
    """

    def __init__(
        self,
        function: str = "?",
        block: str = "?",
        check_name: str = "ipas.check",
        instruction: str = "?",
    ):
        super().__init__(f"{check_name} fired at {function}:{block}")
        self.function = function
        self.block = block
        self.check_name = check_name
        self.instruction = instruction


class RecoveryPolicy:
    """Knobs of the recovery runtime (all caps are per run)."""

    __slots__ = (
        "max_rollbacks",
        "region_retries",
        "rollback_cycle_budget",
        "snapshot_period",
        "snapshot_cost",
    )

    def __init__(
        self,
        max_rollbacks: int = 8,
        region_retries: int = 2,
        rollback_cycle_budget: Optional[int] = None,
        snapshot_period: int = 0,
        snapshot_cost: int = 0,
    ):
        if max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if region_retries < 0:
            raise ValueError("region_retries must be >= 0")
        if snapshot_period < 0:
            raise ValueError("snapshot_period must be >= 0")
        #: total rollbacks allowed across the whole run
        self.max_rollbacks = max_rollbacks
        #: rollbacks allowed per snapshot site (function, block) pair
        self.region_retries = region_retries
        #: cap on cumulative re-executed cycles (None = bounded only by
        #: the run's hang budget, which monotonic cycles always enforce)
        self.rollback_cycle_budget = rollback_cycle_budget
        #: minimum cycles between snapshots (0 = snapshot every boundary)
        self.snapshot_period = snapshot_period
        #: cycles charged per snapshot (models checkpoint cost; 0 = free)
        self.snapshot_cost = snapshot_cost

    def signature(self) -> str:
        """Stable identity for campaign fingerprints: any knob that changes
        trial outcomes changes the signature."""
        return (
            f"rec1|{self.max_rollbacks}|{self.region_retries}"
            f"|{self.rollback_cycle_budget}|{self.snapshot_period}"
            f"|{self.snapshot_cost}"
        )

    def __repr__(self) -> str:
        return (
            f"<RecoveryPolicy max_rollbacks={self.max_rollbacks} "
            f"region_retries={self.region_retries} "
            f"period={self.snapshot_period}>"
        )


class RecoveryTelemetry:
    """Counters of one run's recovery activity (attached to RunResult)."""

    __slots__ = (
        "snapshots",
        "rollbacks",
        "reexec_cycles",
        "max_rollback_cycles",
        "escalations",
        "escalation_reason",
    )

    def __init__(
        self,
        snapshots: int = 0,
        rollbacks: int = 0,
        reexec_cycles: int = 0,
        max_rollback_cycles: int = 0,
        escalations: int = 0,
        escalation_reason: str = "",
    ):
        self.snapshots = snapshots
        self.rollbacks = rollbacks
        #: cycles discarded and re-executed across all rollbacks
        self.reexec_cycles = reexec_cycles
        #: largest single detection-to-snapshot distance, in cycles
        self.max_rollback_cycles = max_rollback_cycles
        self.escalations = escalations
        #: ladder rung of the *last* escalation ("" when none)
        self.escalation_reason = escalation_reason

    @property
    def mean_rollback_cycles(self) -> float:
        """Mean detection-to-snapshot distance per rollback."""
        return self.reexec_cycles / self.rollbacks if self.rollbacks else 0.0

    def as_dict(self) -> Dict:
        data: Dict = {
            "snapshots": self.snapshots,
            "rollbacks": self.rollbacks,
            "reexec_cycles": self.reexec_cycles,
            "max_rollback_cycles": self.max_rollback_cycles,
            "escalations": self.escalations,
        }
        if self.escalation_reason:
            data["escalation_reason"] = self.escalation_reason
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RecoveryTelemetry":
        return cls(
            snapshots=int(data.get("snapshots", 0)),
            rollbacks=int(data.get("rollbacks", 0)),
            reexec_cycles=int(data.get("reexec_cycles", 0)),
            max_rollback_cycles=int(data.get("max_rollback_cycles", 0)),
            escalations=int(data.get("escalations", 0)),
            escalation_reason=str(data.get("escalation_reason", "")),
        )

    def as_wire(self) -> Tuple:
        """Compact form for the worker->parent pipe."""
        return (
            self.snapshots,
            self.rollbacks,
            self.reexec_cycles,
            self.max_rollback_cycles,
            self.escalations,
            self.escalation_reason,
        )

    @classmethod
    def from_wire(cls, wire: Tuple) -> "RecoveryTelemetry":
        return cls(*wire)

    def __repr__(self) -> str:
        return (
            f"<RecoveryTelemetry snapshots={self.snapshots} "
            f"rollbacks={self.rollbacks} reexec={self.reexec_cycles}"
            + (f" escalated={self.escalation_reason}" if self.escalation_reason else "")
            + ">"
        )


class Snapshot:
    """One region-boundary capture of the live interpreter state.

    Everything needed to re-enter the owning frame's dispatch loop at
    ``bi``: the live memory image (``cells[:sp]`` — globals plus the live
    stack; cells past ``sp`` are dead frame residue), the stack pointer,
    the frame's register file, the output log length, and the injector's
    occurrence counter.  Cell and frame elements are immutable scalars, so
    shallow copies are exact.  The cycle counter is *not* restored: cycles
    stay monotonic, so wasted work counts toward the hang budget.
    """

    __slots__ = (
        "cfi",
        "bi",
        "cells",
        "sp",
        "cycles",
        "frame",
        "out_len",
        "inj_seen",
        "tainted",
        "pinned",
    )

    def __init__(
        self,
        cfi: int,
        bi: int,
        cells: List,
        sp: int,
        cycles: int,
        frame: List,
        out_len: int,
        inj_seen: int,
        tainted: bool,
    ):
        self.cfi = cfi
        self.bi = bi
        self.cells = cells
        self.sp = sp
        self.cycles = cycles
        self.frame = frame
        self.out_len = out_len
        self.inj_seen = inj_seen
        #: the injected fault fired before this capture — restoring would
        #: resurrect corrupted state (silent SOC), so escalate instead
        self.tainted = tainted
        #: irreversible communication happened after this capture
        self.pinned = False

    def __repr__(self) -> str:
        flags = ("tainted" if self.tainted else "") + (" pinned" if self.pinned else "")
        return f"<Snapshot cfi={self.cfi} bi={self.bi} cycles={self.cycles}{flags}>"


class RecoveryState:
    """Per-run recovery bookkeeping: the snapshot stack and the ladder."""

    __slots__ = (
        "policy",
        "plan",
        "stack",
        "telemetry",
        "region_rollbacks",
        "last_snapshot_cycles",
    )

    def __init__(self, policy: RecoveryPolicy, plan: Dict[int, frozenset]):
        self.policy = policy
        #: cfi -> frozenset of local block indexes that are snapshot points
        self.plan = plan
        #: live snapshots, outermost frame first (top = most recent)
        self.stack: List[Snapshot] = []
        self.telemetry = RecoveryTelemetry()
        #: (cfi, bi) -> rollbacks already spent at that site
        self.region_rollbacks: Dict[Tuple[int, int], int] = {}
        self.last_snapshot_cycles: Optional[int] = None

    def should_snapshot(self, cycles: int) -> bool:
        period = self.policy.snapshot_period
        if period <= 0 or self.last_snapshot_cycles is None:
            return True
        return cycles - self.last_snapshot_cycles >= period

    def pin(self) -> None:
        """Invalidate rollback past this point (a collective executed)."""
        for snap in self.stack:
            snap.pinned = True

    def on_detection(self, snap: Snapshot, now: int) -> Optional[str]:
        """Decide the fate of a detection against ``snap``.

        Returns ``None`` when the rollback is approved (telemetry charged),
        else the escalation reason — the caller must discard the snapshot
        and escalate outward.
        """
        policy = self.policy
        telemetry = self.telemetry
        wasted = now - snap.cycles
        reason: Optional[str] = None
        if snap.pinned:
            reason = "pinned"
        elif snap.tainted:
            reason = "tainted"
        elif telemetry.rollbacks >= policy.max_rollbacks:
            reason = "rollback-cap"
        elif (
            policy.rollback_cycle_budget is not None
            and telemetry.reexec_cycles + wasted > policy.rollback_cycle_budget
        ):
            reason = "cycle-budget"
        else:
            site = (snap.cfi, snap.bi)
            spent = self.region_rollbacks.get(site, 0)
            if spent >= policy.region_retries:
                reason = "region-retries"
            else:
                self.region_rollbacks[site] = spent + 1
        if reason is not None:
            telemetry.escalations += 1
            telemetry.escalation_reason = reason
            return reason
        telemetry.rollbacks += 1
        telemetry.reexec_cycles += wasted
        if wasted > telemetry.max_rollback_cycles:
            telemetry.max_rollback_cycles = wasted
        return None


def summarize_telemetry(telemetries: Iterable[Optional[RecoveryTelemetry]]) -> Dict:
    """Aggregate per-trial telemetry into one campaign-level summary."""
    total = RecoveryTelemetry()
    trials = 0
    reasons: Dict[str, int] = {}
    for telemetry in telemetries:
        if telemetry is None:
            continue
        trials += 1
        total.snapshots += telemetry.snapshots
        total.rollbacks += telemetry.rollbacks
        total.reexec_cycles += telemetry.reexec_cycles
        total.escalations += telemetry.escalations
        if telemetry.max_rollback_cycles > total.max_rollback_cycles:
            total.max_rollback_cycles = telemetry.max_rollback_cycles
        if telemetry.escalation_reason:
            reasons[telemetry.escalation_reason] = (
                reasons.get(telemetry.escalation_reason, 0) + 1
            )
    summary = total.as_dict()
    summary["trials"] = trials
    summary["mean_rollback_cycles"] = total.mean_rollback_cycles
    if reasons:
        summary["escalation_reasons"] = reasons
    return summary
