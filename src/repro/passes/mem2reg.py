"""mem2reg: promote scalar allocas to SSA registers.

The classic SSA-construction pass (Cytron et al.): place phi nodes at the
iterated dominance frontier of each alloca's defining blocks, then rename
along a dominator-tree walk.

Why this matters for IPAS: the paper's fault model (§3) protects memory with
ECC but leaves register-producing instructions exposed.  The scil frontend
emits an alloca+load/store for every local variable (as Clang does at -O0);
without promotion nearly all scalar dataflow would hide in ECC-protected
memory and the fault-injection campaign would see almost no propagation.
After mem2reg the dataflow lives in virtual registers, matching the binaries
the paper instruments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.cfg import remove_unreachable_blocks
from ..analysis.dominators import DominatorTree
from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import AllocaInst, Instruction, LoadInst, PhiNode, StoreInst
from ..ir.module import Module
from ..ir.values import UndefValue, Value


def promotable_allocas(fn: Function) -> List[AllocaInst]:
    """Allocas of scalar type used only by direct loads and stores-of-value.

    An alloca escapes (and stays in memory) if its address is gep'd, passed
    to a call, stored *as a value*, or compared — array allocas always
    escape this test because arrays are accessed through gep.
    """
    result = []
    for inst in fn.instructions():
        if not isinstance(inst, AllocaInst):
            continue
        if inst.allocated_type.is_array():
            continue
        promotable = True
        for user, index in inst.uses:
            if isinstance(user, LoadInst):
                continue
            if isinstance(user, StoreInst) and index == 1:
                continue  # used as the address, not the stored value
            promotable = False
            break
        if promotable:
            result.append(inst)
    return result


def promote_allocas(fn: Function) -> int:
    """Promote all promotable allocas in ``fn``.  Returns the count promoted."""
    if fn.is_declaration:
        return 0
    remove_unreachable_blocks(fn)
    allocas = promotable_allocas(fn)
    if not allocas:
        return 0

    dom = DominatorTree(fn)
    frontiers = dom.dominance_frontiers()
    reachable = set(dom.reachable_blocks)
    alloca_index: Dict[int, int] = {id(a): i for i, a in enumerate(allocas)}

    # 1. Phi placement at the iterated dominance frontier of the def blocks.
    phis: Dict[int, Dict[BasicBlock, PhiNode]] = {id(a): {} for a in allocas}
    for alloca in allocas:
        def_blocks: Set[BasicBlock] = set()
        for user, index in alloca.uses:
            if isinstance(user, StoreInst) and index == 1 and user.parent in reachable:
                def_blocks.add(user.parent)
        worklist = list(def_blocks)
        placed: Set[BasicBlock] = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(block, ()):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = PhiNode(alloca.type.pointee, alloca.name or "mem")
                frontier_block.insert(0, phi)
                phis[id(alloca)][frontier_block] = phi
                if frontier_block not in def_blocks:
                    worklist.append(frontier_block)

    # 2. Renaming along the dominator tree.
    stacks: List[List[Value]] = [[] for _ in allocas]

    def current(ai: int, type_) -> Value:
        if stacks[ai]:
            return stacks[ai][-1]
        return UndefValue(type_)

    def rename(block: BasicBlock) -> None:
        pushed = [0] * len(allocas)
        # Phis placed for an alloca define its new value on entry.
        for phi in block.phis():
            for alloca in allocas:
                if phis[id(alloca)].get(block) is phi:
                    stacks[alloca_index[id(alloca)]].append(phi)
                    pushed[alloca_index[id(alloca)]] += 1
                    break
        for inst in list(block.instructions):
            if isinstance(inst, LoadInst):
                ai = alloca_index.get(id(inst.pointer))
                if ai is not None:
                    inst.replace_all_uses_with(current(ai, inst.type))
                    inst.erase()
            elif isinstance(inst, StoreInst):
                ai = alloca_index.get(id(inst.pointer))
                if ai is not None:
                    stacks[ai].append(inst.value)
                    pushed[ai] += 1
                    inst.erase()
        for succ in block.successors():
            for alloca in allocas:
                phi = phis[id(alloca)].get(succ)
                if phi is not None:
                    ai = alloca_index[id(alloca)]
                    phi.add_incoming(current(ai, phi.type), block)
        for child in dom.children(block):
            rename(child)
        for ai, count in enumerate(pushed):
            for _ in range(count):
                stacks[ai].pop()

    # Recursion depth equals dominator-tree depth; scil functions are small,
    # but walk iteratively anyway for robustness on generated code.
    _rename_iterative(fn, dom, rename)

    # 3. Drop the now-dead allocas, and prune phis that ended up unused.
    for alloca in allocas:
        for user, index in list(alloca.uses):
            # Only dead stores/loads in unreachable blocks can remain.
            user.drop_operands()
            if user.parent is not None:
                user.parent.remove(user)
        alloca.erase()
    _prune_dead_phis(fn)
    return len(allocas)


def _rename_iterative(fn: Function, dom: DominatorTree, rename) -> None:
    """Run the (recursive) rename from the entry with a raised limit."""
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        rename(fn.entry)
    finally:
        sys.setrecursionlimit(old_limit)


def _prune_dead_phis(fn: Function) -> None:
    """Remove phis whose only uses are themselves/other dead phis."""
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            for phi in list(block.phis()):
                users = [u for u, _ in phi.uses if u is not phi]
                if not users:
                    phi.replace_all_uses_with(UndefValue(phi.type))
                    phi.erase()
                    changed = True


def mem2reg_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        if promote_allocas(fn):
            changed = True
    return changed
