"""Algebraic instruction simplification (instcombine-lite).

Identity rewrites that need only one constant operand:

* ``x + 0``, ``x - 0``, ``x * 1``, ``x / 1`` (and float counterparts,
  where IEEE semantics allow), ``x & -1``, ``x | 0``, ``x ^ 0``,
  ``x << 0``, ``x >> 0``  →  ``x``
* ``x * 0``, ``x & 0``  →  ``0``  (integers only: ``x * 0.0`` is *not*
  folded — it would change NaN/Inf behaviour)
* ``x - x``, ``x ^ x``  →  ``0``
* ``select cond, x, x``  →  ``x``

Part of the *extended* pipeline (see
:func:`repro.passes.pass_manager.extended_pipeline`); the standard pipeline
the experiments use stays minimal so campaign results remain comparable.
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import BinaryOperator, Instruction, SelectInst
from ..ir.module import Module
from ..ir.values import Constant, Value


def _is_const(value: Value, expected) -> bool:
    return isinstance(value, Constant) and value.value == expected


def simplify_instruction(inst: Instruction) -> Optional[Value]:
    """The simpler value this instruction always equals, or None."""
    if isinstance(inst, SelectInst):
        if inst.operands[1] is inst.operands[2]:
            return inst.operands[1]
        return None
    if not isinstance(inst, BinaryOperator):
        return None
    op = inst.opcode
    lhs, rhs = inst.lhs, inst.rhs
    is_float = inst.type.is_float()

    if op in ("add", "fadd"):
        if _is_const(rhs, 0 if not is_float else 0.0) and not is_float:
            return lhs
        if _is_const(lhs, 0) and not is_float:
            return rhs
        # fadd x, 0.0 is NOT x when x is -0.0; leave float adds alone.
        return None
    if op in ("sub", "fsub"):
        if not is_float and _is_const(rhs, 0):
            return lhs
        if not is_float and lhs is rhs:
            return Constant(inst.type, 0)
        return None
    if op in ("mul", "fmul"):
        if _is_const(rhs, 1 if not is_float else 1.0):
            return lhs
        if _is_const(lhs, 1 if not is_float else 1.0):
            return rhs
        if not is_float and (_is_const(rhs, 0) or _is_const(lhs, 0)):
            return Constant(inst.type, 0)
        # x * 0.0 may be NaN or -0.0; never folded.
        return None
    if op in ("sdiv", "fdiv"):
        if _is_const(rhs, 1 if not is_float else 1.0):
            return lhs
        return None
    if op == "and":
        if _is_const(rhs, -1):
            return lhs
        if _is_const(lhs, -1):
            return rhs
        if _is_const(rhs, 0) or _is_const(lhs, 0):
            return Constant(inst.type, 0)
        if lhs is rhs:
            return lhs
        return None
    if op == "or":
        if _is_const(rhs, 0):
            return lhs
        if _is_const(lhs, 0):
            return rhs
        if lhs is rhs:
            return lhs
        return None
    if op == "xor":
        if _is_const(rhs, 0):
            return lhs
        if _is_const(lhs, 0):
            return rhs
        if lhs is rhs:
            return Constant(inst.type, 0)
        return None
    if op in ("shl", "lshr", "ashr"):
        if _is_const(rhs, 0):
            return lhs
        return None
    return None


def instsimplify_function(fn: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                simpler = simplify_instruction(inst)
                if simpler is not None and simpler is not inst:
                    inst.replace_all_uses_with(simpler)
                    inst.erase()
                    changed = True
                    progress = True
    return changed


def instsimplify_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        if instsimplify_function(fn):
            changed = True
    return changed
