"""Check-redundancy elimination for duplication-protected modules.

The duplication pass inserts one ``ipas.check.*`` per duplication-path
tail, but with the global shadow dataflow a tail's corruption often flows
on — through its *clone* — into a later checked pair.  When that flow is
provably **difference-preserving**, the earlier check is redundant: any
divergence it would have caught is still present, bit for bit observable,
at a check that every completing execution must reach.  Removing it
shrinks the protected run's dynamic instruction stream (the paper's
runtime-overhead metric, Fig. 5/6) without giving up a single detection.

A check ``c1`` on the pair ``(t1, t1.dup)`` is *subsumed* by a check
``c2`` on ``(t2, t2.dup)`` when:

1. there is a def-use chain ``t1 → … → t2`` in the original stream whose
   mirror image ``t1.dup → … → t2.dup`` exists in the shadow stream (each
   step's clone consumes the clone of the previous step, and every other
   operand is the *identical* value in both streams);
2. every step is **injective in the chained operand**: integer
   ``add``/``sub``/``xor`` (modular arithmetic is a bijection for any
   fixed other operand — even a corrupted one cannot cancel a difference,
   because it is the *same* value on both sides), ``gep`` (affine in base
   and index), and the lossless casts ``zext``/``sext``/``bitcast``.
   Floating-point arithmetic is excluded: rounding can absorb a
   difference.  So ``t1 ≠ t1.dup`` forces ``t2 ≠ t2.dup``;
3. ``c2``'s block post-dominates ``c1``'s block, so every run that
   executes ``c1`` and completes also executes ``c2`` (same-block chains
   satisfy this trivially — SSA order puts ``c2`` after ``c1``).

Subsumption chains compose, and the def-use relation is acyclic (phis are
never chain steps), so the subsumed set is simply every check with at
least one subsumer: each removed check resolves, transitively, to a kept
one.  Duplicate clones left dead by a removed check are erased too (they
existed only to feed it).  The module's ``check_sites`` metadata is
updated in place so the coverage prover keeps an accurate guard set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.postdom import PostDominatorTree
from ..ir.function import Function
from ..ir.instructions import (
    BinaryOperator,
    CallInst,
    CastInst,
    GEPInst,
    Instruction,
)
from ..ir.intrinsics import is_check_intrinsic
from ..ir.module import Module

#: integer binary opcodes that are bijective in either operand
_INJECTIVE_BINOPS = frozenset({"add", "sub", "xor"})
#: cast opcodes that preserve distinctness
_INJECTIVE_CASTS = frozenset({"zext", "sext", "bitcast"})


def _is_injective_step(user: Instruction) -> bool:
    if isinstance(user, BinaryOperator):
        return user.opcode in _INJECTIVE_BINOPS and user.type.is_integer()
    if isinstance(user, GEPInst):
        return True
    if isinstance(user, CastInst):
        return user.opcode in _INJECTIVE_CASTS
    return False


@dataclass
class CheckElimReport:
    """What the pass removed, for benchmarks and diagnostics."""

    checks_before: int = 0
    checks_removed: int = 0
    duplicates_removed: int = 0
    #: "function/block name" of every removed check, paired with the
    #: keeping check that subsumes it
    removed: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def checks_after(self) -> int:
        return self.checks_before - self.checks_removed

    def to_dict(self) -> Dict:
        return {
            "checks_before": self.checks_before,
            "checks_removed": self.checks_removed,
            "checks_after": self.checks_after,
            "duplicates_removed": self.duplicates_removed,
            "removed": [list(pair) for pair in self.removed],
        }

    def __repr__(self) -> str:
        return (
            f"<CheckElimReport removed={self.checks_removed}/"
            f"{self.checks_before} checks, {self.duplicates_removed} dups>"
        )


class CheckEliminationPass:
    """Removes subsumed ``ipas.check.*`` calls from a protected module."""

    def __init__(self, module: Module):
        self.module = module
        self.report = CheckElimReport()
        #: id(original) -> clone, from duplication metadata (empty when the
        #: module was protected out-of-process; mirrored pairs are then
        #: recovered from the checks themselves, which still names every
        #: (original, duplicate) tail pair — interior chain steps without a
        #: check are only findable via metadata, so recovery is weaker).
        self.clone_map: Dict[int, Instruction] = dict(
            getattr(module, "duplicate_map", None) or {}
        )
        self._postdom: Dict[int, PostDominatorTree] = {}

    # -- public API --------------------------------------------------------------

    def run(self) -> CheckElimReport:
        checks = self._checks()
        self.report.checks_before = len(checks)
        if not self.clone_map:
            for orig, dup, _check in checks:
                self.clone_map[id(orig)] = dup
        pair_index: Dict[Tuple[int, int], CallInst] = {
            (id(orig), id(dup)): check for orig, dup, check in checks
        }
        to_remove: List[Tuple[CallInst, CallInst]] = []
        for orig, dup, check in checks:
            subsumer = self._find_subsumer(orig, dup, check, pair_index)
            if subsumer is not None:
                to_remove.append((check, subsumer))
        for check, subsumer in to_remove:
            self.report.removed.append((self._where(check), self._where(subsumer)))
            self.report.checks_removed += 1
            check.erase()
        self._erase_dead_duplicates()
        self._refresh_metadata()
        return self.report

    # -- discovery ---------------------------------------------------------------

    def _checks(self) -> List[Tuple[Instruction, Instruction, CallInst]]:
        sites = getattr(self.module, "check_sites", None)
        if sites:
            return [
                (s.original, s.duplicate, s.check)
                for s in sites
                if s.check.parent is not None
            ]
        found = []
        for inst in self.module.instructions():
            if (
                isinstance(inst, CallInst)
                and is_check_intrinsic(inst.callee)
                and len(inst.operands) == 2
                and isinstance(inst.operands[0], Instruction)
                and isinstance(inst.operands[1], Instruction)
            ):
                found.append((inst.operands[0], inst.operands[1], inst))
        return found

    # -- subsumption search ------------------------------------------------------

    def _find_subsumer(
        self,
        orig: Instruction,
        dup: Instruction,
        check: CallInst,
        pair_index: Dict[Tuple[int, int], CallInst],
    ) -> Optional[CallInst]:
        """The first check on a mirrored injective chain from ``(orig, dup)``
        whose block post-dominates ``check``'s block, or None."""
        fn = orig.function
        if fn is None or check.parent is None:
            return None
        seen: Set[Tuple[int, int]] = {(id(orig), id(dup))}
        worklist: List[Tuple[Instruction, Instruction]] = [(orig, dup)]
        while worklist:
            x, xd = worklist.pop()
            for user, _index in x.uses:
                if not _is_injective_step(user) or user.function is not fn:
                    continue
                user_dup = self.clone_map.get(id(user))
                if user_dup is None or user_dup.parent is None:
                    continue
                if not self._mirrors(user, user_dup, x, xd):
                    continue
                state = (id(user), id(user_dup))
                if state in seen:
                    continue
                seen.add(state)
                candidate = pair_index.get(state)
                if (
                    candidate is not None
                    and candidate is not check
                    and candidate.parent is not None
                    and self._always_reaches(check, candidate)
                ):
                    return candidate
                worklist.append((user, user_dup))
        return None

    @staticmethod
    def _mirrors(
        user: Instruction, user_dup: Instruction, x: Instruction, xd: Instruction
    ) -> bool:
        """Shadow step check: ``user_dup`` consumes ``xd`` exactly where
        ``user`` consumes ``x`` and the identical value everywhere else."""
        if len(user.operands) != len(user_dup.operands):
            return False
        chained = False
        for op, dop in zip(user.operands, user_dup.operands):
            if op is x:
                if dop is not xd:
                    return False
                chained = True
            elif dop is not op:
                return False
        return chained

    def _always_reaches(self, check: CallInst, candidate: CallInst) -> bool:
        b1 = check.parent
        b2 = candidate.parent
        if b1 is b2:
            # SSA order: the subsumer's tail consumes the subsumee's, so it
            # (and its check) sits later in the block.
            return True
        fn = b1.parent
        tree = self._postdom.get(id(fn))
        if tree is None:
            tree = PostDominatorTree(fn)
            self._postdom[id(fn)] = tree
        return tree.post_dominates(b2, b1)

    # -- cleanup -----------------------------------------------------------------

    def _erase_dead_duplicates(self) -> None:
        """Erase shadow clones whose only purpose was a removed check."""
        progress = True
        clones = list(self.clone_map.values())
        while progress:
            progress = False
            for clone in clones:
                if clone.parent is not None and not clone.is_used():
                    clone.erase()
                    self.report.duplicates_removed += 1
                    progress = True

    def _refresh_metadata(self) -> None:
        sites = getattr(self.module, "check_sites", None)
        if sites is not None:
            self.module.check_sites = [
                s for s in sites if s.check.parent is not None
            ]
        dup_map = getattr(self.module, "duplicate_map", None)
        if dup_map is not None:
            self.module.duplicate_map = {
                key: clone for key, clone in dup_map.items() if clone.parent is not None
            }

    @staticmethod
    def _where(check: CallInst) -> str:
        fn = check.function
        block = check.parent
        return f"{fn.name if fn else '?'}/{block.name if block else '?'}"


def eliminate_redundant_checks(module: Module) -> CheckElimReport:
    """Convenience wrapper: run check-redundancy elimination on ``module``."""
    return CheckEliminationPass(module).run()
