"""CFG simplification.

Three rewrites, iterated locally:

1. constant conditional branches become unconditional (the dead edge is
   removed from successor phis);
2. unreachable blocks are deleted;
3. a block with a single predecessor whose terminator is an unconditional
   branch to it is merged into that predecessor.
"""

from __future__ import annotations

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.function import Function
from ..ir.instructions import BranchInst, PhiNode
from ..ir.module import Module
from ..ir.values import Constant


def _fold_constant_branches(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, BranchInst) or not term.is_conditional:
            continue
        cond = term.condition
        if not isinstance(cond, Constant):
            continue
        taken = term.targets[0] if cond.value else term.targets[1]
        dead = term.targets[1] if cond.value else term.targets[0]
        term.drop_operands()
        block.remove(term)
        new_term = BranchInst(None, taken)
        block.append(new_term)
        if dead is not taken:
            # This block is no longer a predecessor of `dead`.
            for phi in dead.phis():
                if block in phi.incoming_blocks:
                    phi.remove_incoming(block)
        changed = True
    return changed


def _merge_straightline_blocks(fn: Function) -> bool:
    changed = False
    merged = True
    while merged:
        merged = False
        for block in list(fn.blocks):
            if block is fn.entry:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            if pred is block:
                continue
            term = pred.terminator
            if not isinstance(term, BranchInst) or term.is_conditional:
                continue
            if term.targets[0] is not block:
                continue
            if block.has_phi():
                # Single-pred phis are trivial; fold them first.
                for phi in list(block.phis()):
                    phi.replace_all_uses_with(phi.incoming_for_block(pred))
                    phi.erase()
            # Splice: drop pred's branch, move block's instructions up.
            term.drop_operands()
            pred.remove(term)
            for inst in list(block.instructions):
                block.remove(inst)
                inst.parent = pred
                pred.instructions.append(inst)
            # Successor phis referring to `block` now come from `pred`.
            for succ in pred.successors():
                for phi in succ.phis():
                    phi.incoming_blocks = [
                        pred if b is block else b for b in phi.incoming_blocks
                    ]
            fn.remove_block(block)
            merged = True
            changed = True
            break
    return changed


def _fold_trivial_phis(fn: Function) -> bool:
    """Replace single-incoming phis (left by edge removal) with their value."""
    changed = False
    for block in fn.blocks:
        for phi in list(block.phis()):
            if len(phi.operands) == 1:
                phi.replace_all_uses_with(phi.operands[0])
                phi.erase()
                changed = True
    return changed


def simplify_cfg_function(fn: Function) -> bool:
    changed = False
    if _fold_constant_branches(fn):
        changed = True
    if remove_unreachable_blocks(fn):
        changed = True
    if _fold_trivial_phis(fn):
        changed = True
    if _merge_straightline_blocks(fn):
        changed = True
    return changed


def simplify_cfg_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        if simplify_cfg_function(fn):
            changed = True
    return changed
