"""A minimal pass manager.

IPAS runs its duplication "after all user-level optimizations are performed"
(paper §3, step 4); the pass manager encodes that ordering: a standard
optimization pipeline first, the protection pass last.

``debug=True`` turns each inter-pass verification into a full diagnostic
checkpoint: the verifier *and* the lint rules of :mod:`repro.diag` run
after every pass, and the per-pass introduced/fixed diagnostic deltas are
recorded in :attr:`PassManager.debug_records` — the quickest way to find
which pass manufactured a dead store or broke a duplication path.

Setting the ``IPAS_VERIFY_EACH_PASS`` environment variable to a non-empty
value other than ``0`` forces inter-pass verification even when a caller
constructed the manager with ``verify=False`` — CI sets it so that every
pipeline in the test suite runs fully verified without code changes.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from ..ir.module import Module
from ..ir.verifier import verify_module

if TYPE_CHECKING:  # pragma: no cover
    from ..diag.diagnostics import Diagnostic, DiagnosticReport

#: A module pass: takes a module, returns True if it changed anything.
ModulePass = Callable[[Module], bool]


def verify_forced() -> bool:
    """True when ``IPAS_VERIFY_EACH_PASS`` demands inter-pass verification
    regardless of how the pass manager was constructed."""
    return os.environ.get("IPAS_VERIFY_EACH_PASS", "0") not in ("", "0")


@dataclass
class PassDebugRecord:
    """Diagnostic checkpoint after one pass in debug mode."""

    pass_name: str
    changed: bool
    report: "DiagnosticReport"
    introduced: List["Diagnostic"] = field(default_factory=list)
    fixed: List["Diagnostic"] = field(default_factory=list)

    @property
    def findings(self) -> int:
        """Warning-or-worse diagnostics present after this pass."""
        from ..diag.diagnostics import Severity

        return len(self.report.filter(Severity.WARNING))

    def format(self) -> str:
        mark = "*" if self.changed else " "
        parts = [f"{mark} {self.pass_name}: {self.report.summary()}"]
        for diag in self.introduced:
            parts.append(f"    + {diag.format()}")
        for diag in self.fixed:
            parts.append(f"    - {diag.format()}")
        return "\n".join(parts)


class PassManager:
    """Runs an ordered list of module passes, verifying between passes."""

    def __init__(
        self,
        verify: bool = True,
        max_iterations: int = 10,
        debug: bool = False,
    ):
        self.verify = verify
        self.max_iterations = max_iterations
        self.debug = debug
        #: one :class:`PassDebugRecord` per executed pass (debug mode only)
        self.debug_records: List[PassDebugRecord] = []
        self._passes: List[Tuple[str, ModulePass]] = []

    def add(self, name: str, pass_fn: ModulePass) -> "PassManager":
        self._passes.append((name, pass_fn))
        return self

    def run(self, module: Module) -> List[str]:
        """Run each pass once, in order.  Returns names of passes that
        changed the module."""
        changed_by: List[str] = []
        baseline = self._lint(module) if self.debug else None
        for name, pass_fn in self._passes:
            changed = pass_fn(module)
            if changed:
                changed_by.append(name)
            if self.verify or self.debug or verify_forced():
                verify_module(module)
            if self.debug:
                report = self._lint(module)
                introduced, fixed = report.delta(baseline)
                self.debug_records.append(
                    PassDebugRecord(name, changed, report, introduced, fixed)
                )
                baseline = report
        return changed_by

    @staticmethod
    def _lint(module: Module):
        # Imported lazily: diag builds on analysis, which passes otherwise
        # never need.
        from ..diag import run_lints

        return run_lints(module)

    def run_to_fixpoint(self, module: Module) -> int:
        """Iterate the pipeline until no pass changes the module.

        Returns the number of full iterations performed.  Bounded by
        ``max_iterations`` as a defensive measure against oscillation.
        """
        for iteration in range(1, self.max_iterations + 1):
            if not self.run(module):
                return iteration
        return self.max_iterations


def standard_pipeline(verify: bool = True, debug: bool = False) -> PassManager:
    """The default -O pipeline applied before protection.

    mem2reg is mandatory for the IPAS experiments: the fault model assumes
    memory is ECC-protected, so the scalar program state must live in
    (unprotected) virtual registers for fault injection to be meaningful —
    exactly as it would after LLVM's mem2reg at -O1+.
    """
    from .constant_folding import constant_fold_module
    from .dce import dce_module
    from .mem2reg import mem2reg_module
    from .simplify_cfg import simplify_cfg_module

    pm = PassManager(verify=verify, debug=debug)
    pm.add("mem2reg", mem2reg_module)
    pm.add("constant-fold", constant_fold_module)
    pm.add("simplify-cfg", simplify_cfg_module)
    pm.add("dce", dce_module)
    return pm


def extended_pipeline(verify: bool = True, debug: bool = False) -> PassManager:
    """The standard pipeline plus instsimplify and block-local CSE.

    Not used by the paper-reproduction experiments (so that cached campaign
    results stay comparable across sessions), but available for users who
    want a leaner module before protection — the duplication pass and the
    fault model are agnostic to which pipeline produced the code.
    """
    from .cse import cse_module
    from .instsimplify import instsimplify_module

    pm = standard_pipeline(verify=verify, debug=debug)
    pm.add("instsimplify", instsimplify_module)
    pm.add("cse", cse_module)
    return pm


def optimize_module(module: Module, verify: bool = True, extended: bool = False) -> Module:
    """Run the (standard or extended) pipeline to fixpoint."""
    pipeline = extended_pipeline(verify) if extended else standard_pipeline(verify)
    pipeline.run_to_fixpoint(module)
    return module
