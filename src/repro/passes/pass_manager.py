"""A minimal pass manager.

IPAS runs its duplication "after all user-level optimizations are performed"
(paper §3, step 4); the pass manager encodes that ordering: a standard
optimization pipeline first, the protection pass last.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..ir.module import Module
from ..ir.verifier import verify_module

#: A module pass: takes a module, returns True if it changed anything.
ModulePass = Callable[[Module], bool]


class PassManager:
    """Runs an ordered list of module passes, verifying between passes."""

    def __init__(self, verify: bool = True, max_iterations: int = 10):
        self.verify = verify
        self.max_iterations = max_iterations
        self._passes: List[Tuple[str, ModulePass]] = []

    def add(self, name: str, pass_fn: ModulePass) -> "PassManager":
        self._passes.append((name, pass_fn))
        return self

    def run(self, module: Module) -> List[str]:
        """Run each pass once, in order.  Returns names of passes that
        changed the module."""
        changed_by: List[str] = []
        for name, pass_fn in self._passes:
            if pass_fn(module):
                changed_by.append(name)
            if self.verify:
                verify_module(module)
        return changed_by

    def run_to_fixpoint(self, module: Module) -> int:
        """Iterate the pipeline until no pass changes the module.

        Returns the number of full iterations performed.  Bounded by
        ``max_iterations`` as a defensive measure against oscillation.
        """
        for iteration in range(1, self.max_iterations + 1):
            if not self.run(module):
                return iteration
        return self.max_iterations


def standard_pipeline(verify: bool = True) -> PassManager:
    """The default -O pipeline applied before protection.

    mem2reg is mandatory for the IPAS experiments: the fault model assumes
    memory is ECC-protected, so the scalar program state must live in
    (unprotected) virtual registers for fault injection to be meaningful —
    exactly as it would after LLVM's mem2reg at -O1+.
    """
    from .constant_folding import constant_fold_module
    from .dce import dce_module
    from .mem2reg import mem2reg_module
    from .simplify_cfg import simplify_cfg_module

    pm = PassManager(verify=verify)
    pm.add("mem2reg", mem2reg_module)
    pm.add("constant-fold", constant_fold_module)
    pm.add("simplify-cfg", simplify_cfg_module)
    pm.add("dce", dce_module)
    return pm


def extended_pipeline(verify: bool = True) -> PassManager:
    """The standard pipeline plus instsimplify and block-local CSE.

    Not used by the paper-reproduction experiments (so that cached campaign
    results stay comparable across sessions), but available for users who
    want a leaner module before protection — the duplication pass and the
    fault model are agnostic to which pipeline produced the code.
    """
    from .cse import cse_module
    from .instsimplify import instsimplify_module

    pm = standard_pipeline(verify=verify)
    pm.add("instsimplify", instsimplify_module)
    pm.add("cse", cse_module)
    return pm


def optimize_module(module: Module, verify: bool = True, extended: bool = False) -> Module:
    """Run the (standard or extended) pipeline to fixpoint."""
    pipeline = extended_pipeline(verify) if extended else standard_pipeline(verify)
    pipeline.run_to_fixpoint(module)
    return module
