"""Local common-subexpression elimination.

Within each basic block, pure value-producing instructions (binary ops,
comparisons, casts, selects, geps) with identical opcodes and operands are
collapsed onto the first occurrence.  Loads participate too, but any store,
atomic, or call flushes the available-load set (a conservative memory
model: calls may write anything reachable).

Block-local by design: extending availability across blocks would need
dominance-based value numbering; the scil workloads gain most of the win
from the address arithmetic the frontend duplicates inside a block.

Part of the extended pipeline; the standard experiment pipeline keeps the
minimal pass set.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..ir.function import Function
from ..ir.instructions import (
    AtomicRMWInst,
    BinaryOperator,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    SelectInst,
    StoreInst,
)
from ..ir.module import Module
from ..ir.values import Constant, Value


def _operand_key(value: Value):
    if isinstance(value, Constant):
        return ("const", str(value.type), repr(value.value))
    return ("id", id(value))


def _expression_key(inst: Instruction):
    base = tuple(_operand_key(op) for op in inst.operands)
    if isinstance(inst, BinaryOperator):
        ops = base
        if inst.opcode in ("add", "mul", "and", "or", "xor", "fadd", "fmul"):
            ops = tuple(sorted(base))  # commutative: canonicalize
        return ("bin", inst.opcode, ops)
    if isinstance(inst, ICmpInst):
        return ("icmp", inst.predicate, base)
    if isinstance(inst, FCmpInst):
        return ("fcmp", inst.predicate, base)
    if isinstance(inst, CastInst):
        return ("cast", inst.opcode, str(inst.type), base)
    if isinstance(inst, SelectInst):
        return ("select", base)
    if isinstance(inst, GEPInst):
        return ("gep", base)
    if isinstance(inst, LoadInst):
        return ("load", str(inst.type), base)
    return None


def cse_block(block) -> bool:
    changed = False
    available: Dict[Tuple, Instruction] = {}
    loads: Dict[Tuple, Instruction] = {}
    for inst in list(block.instructions):
        if isinstance(inst, (StoreInst, AtomicRMWInst, CallInst)):
            # Conservative memory model: any write/call invalidates loads.
            loads.clear()
            continue
        key = _expression_key(inst)
        if key is None:
            continue
        table = loads if isinstance(inst, LoadInst) else available
        existing = table.get(key)
        if existing is not None:
            inst.replace_all_uses_with(existing)
            inst.erase()
            changed = True
        else:
            table[key] = inst
    return changed


def cse_function(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        if cse_block(block):
            changed = True
    return changed


def cse_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        if cse_function(fn):
            changed = True
    return changed
