"""Dead-code elimination.

Removes unused instructions without observable effects.  Stores, calls,
atomics, and terminators are always live; everything else is dead when its
value has no uses.  Runs backwards so chains of dead values fall in one pass
sweep; the pass manager iterates to fixpoint anyway.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import (
    AtomicRMWInst,
    CallInst,
    Instruction,
    StoreInst,
)
from ..ir.module import Module


def has_side_effects(inst: Instruction) -> bool:
    if inst.is_terminator():
        return True
    if isinstance(inst, (StoreInst, AtomicRMWInst)):
        return True
    if isinstance(inst, CallInst):
        # Calls are conservatively treated as effectful — even math
        # intrinsics, since removing them would change the dynamic
        # instruction stream the fault injector samples from.
        return True
    return False


def is_trivially_dead(inst: Instruction) -> bool:
    return not inst.is_used() and not has_side_effects(inst)


def dce_function(fn: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in fn.blocks:
            for inst in reversed(list(block.instructions)):
                if is_trivially_dead(inst):
                    inst.erase()
                    changed = True
                    progress = True
    return changed


def dce_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        if dce_function(fn):
            changed = True
    return changed
