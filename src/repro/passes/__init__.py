"""repro.passes — IR optimization passes and the pass manager."""

from .pass_manager import (
    ModulePass,
    PassDebugRecord,
    PassManager,
    extended_pipeline,
    optimize_module,
    standard_pipeline,
    verify_forced,
)
from .instsimplify import instsimplify_function, instsimplify_module, simplify_instruction
from .cse import cse_function, cse_module
from .mem2reg import mem2reg_module, promotable_allocas, promote_allocas
from .constant_folding import (
    constant_fold_function,
    constant_fold_module,
    fold_binary,
    fold_instruction,
)
from .dce import dce_function, dce_module, is_trivially_dead
from .simplify_cfg import simplify_cfg_function, simplify_cfg_module
from .check_elim import (
    CheckElimReport,
    CheckEliminationPass,
    eliminate_redundant_checks,
)

__all__ = [
    "ModulePass", "PassDebugRecord", "PassManager", "extended_pipeline",
    "optimize_module", "standard_pipeline", "verify_forced",
    "instsimplify_function", "instsimplify_module", "simplify_instruction",
    "cse_function", "cse_module",
    "mem2reg_module", "promotable_allocas", "promote_allocas",
    "constant_fold_function", "constant_fold_module", "fold_binary",
    "fold_instruction",
    "dce_function", "dce_module", "is_trivially_dead",
    "simplify_cfg_function", "simplify_cfg_module",
    "CheckElimReport", "CheckEliminationPass", "eliminate_redundant_checks",
]
