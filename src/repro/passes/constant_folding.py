"""Constant folding of binary ops, comparisons, casts, and selects.

Folding matches the interpreter's semantics exactly (two's-complement
wrapping, IEEE-754 doubles) so that optimized and unoptimized programs
compute identical outputs — a property the fault-injection tests rely on.
Division by a constant zero is deliberately *not* folded: it must trap at
run time (an observable symptom in the paper's outcome taxonomy).
"""

from __future__ import annotations

import math
from typing import Optional

from ..ir.function import Function
from ..ir.instructions import (
    BinaryOperator,
    CastInst,
    FCmpInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from ..ir.module import Module
from ..ir.types import IntType
from ..ir.values import Constant


def _wrap_int(value: int, bits: int) -> int:
    value &= (1 << bits) - 1
    if bits > 1 and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def fold_binary(opcode: str, lhs: Constant, rhs: Constant) -> Optional[Constant]:
    """Fold a binary op over two constants; None if it must stay dynamic."""
    a, b = lhs.value, rhs.value
    type_ = lhs.type
    if type_.is_float():
        try:
            if opcode == "fadd":
                return Constant(type_, a + b)
            if opcode == "fsub":
                return Constant(type_, a - b)
            if opcode == "fmul":
                return Constant(type_, a * b)
            if opcode == "fdiv":
                if b == 0.0:
                    return Constant(type_, math.inf if a > 0 else (-math.inf if a < 0 else math.nan))
                return Constant(type_, a / b)
            if opcode == "frem":
                if b == 0.0:
                    return Constant(type_, math.nan)
                return Constant(type_, math.fmod(a, b))
        except OverflowError:
            return Constant(type_, math.inf if (a > 0) == (b > 0) else -math.inf)
        return None
    bits = type_.bits  # type: ignore[attr-defined]
    if opcode == "add":
        return Constant(type_, _wrap_int(a + b, bits))
    if opcode == "sub":
        return Constant(type_, _wrap_int(a - b, bits))
    if opcode == "mul":
        return Constant(type_, _wrap_int(a * b, bits))
    if opcode in ("sdiv", "srem"):
        if b == 0:
            return None  # must trap at run time
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        if opcode == "sdiv":
            return Constant(type_, _wrap_int(q, bits))
        return Constant(type_, _wrap_int(a - q * b, bits))
    ua = a & ((1 << bits) - 1)
    ub = b & ((1 << bits) - 1)
    if opcode == "and":
        return Constant(type_, _wrap_int(ua & ub, bits))
    if opcode == "or":
        return Constant(type_, _wrap_int(ua | ub, bits))
    if opcode == "xor":
        return Constant(type_, _wrap_int(ua ^ ub, bits))
    if opcode == "shl":
        return Constant(type_, _wrap_int(ua << (ub % bits), bits))
    if opcode == "lshr":
        return Constant(type_, _wrap_int(ua >> (ub % bits), bits))
    if opcode == "ashr":
        return Constant(type_, _wrap_int(a >> (ub % bits), bits))
    return None


_ICMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}

_FCMP = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b and not (math.isnan(a) or math.isnan(b)),
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def fold_instruction(inst: Instruction) -> Optional[Constant]:
    """Return the constant this instruction folds to, or None."""
    from ..ir.types import I1

    ops = inst.operands
    if isinstance(inst, BinaryOperator):
        if isinstance(ops[0], Constant) and isinstance(ops[1], Constant):
            return fold_binary(inst.opcode, ops[0], ops[1])
        return None
    if isinstance(inst, ICmpInst):
        if isinstance(ops[0], Constant) and isinstance(ops[1], Constant):
            return Constant(I1, 1 if _ICMP[inst.predicate](ops[0].value, ops[1].value) else 0)
        return None
    if isinstance(inst, FCmpInst):
        if isinstance(ops[0], Constant) and isinstance(ops[1], Constant):
            a, b = ops[0].value, ops[1].value
            if math.isnan(a) or math.isnan(b):
                return Constant(I1, 0)  # ordered comparisons are false on NaN
            return Constant(I1, 1 if _FCMP[inst.predicate](a, b) else 0)
        return None
    if isinstance(inst, CastInst) and isinstance(ops[0], Constant):
        v = ops[0].value
        if inst.opcode == "sitofp":
            return Constant(inst.type, float(v))
        if inst.opcode == "fptosi":
            if math.isnan(v) or math.isinf(v):
                return None  # trap at run time
            bits = inst.type.bits  # type: ignore[attr-defined]
            return Constant(inst.type, _wrap_int(int(v), bits))
        if inst.opcode in ("zext", "sext", "trunc"):
            src_bits = ops[0].type.bits  # type: ignore[attr-defined]
            dst_bits = inst.type.bits  # type: ignore[attr-defined]
            if inst.opcode == "zext":
                return Constant(inst.type, v & ((1 << src_bits) - 1))
            if inst.opcode == "sext":
                return Constant(inst.type, v)
            return Constant(inst.type, _wrap_int(v, dst_bits))
        return None
    if isinstance(inst, SelectInst) and isinstance(ops[0], Constant):
        chosen = ops[1] if ops[0].value else ops[2]
        if isinstance(chosen, Constant):
            return chosen
        return None
    return None


def constant_fold_function(fn: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for block in fn.blocks:
            for inst in list(block.instructions):
                folded = fold_instruction(inst)
                if folded is not None:
                    inst.replace_all_uses_with(folded)
                    inst.erase()
                    changed = True
                    progress = True
    return changed


def constant_fold_module(module: Module) -> bool:
    changed = False
    for fn in module.defined_functions():
        if constant_fold_function(fn):
            changed = True
    return changed
