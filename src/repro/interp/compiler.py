"""Compilation of repro IR to Python closures.

Executing a tree-walking interpreter per instruction would be far too slow
for statistical fault-injection campaigns (tens of thousands of program
runs), so the interpreter *compiles* each basic block to one Python function
(``exec``-generated source).  The interpreter then just drives a
block-dispatch loop; everything inside a block runs as straight-line Python.

Semantics implemented exactly:

* two's-complement wrap-around for ``iN`` arithmetic,
* C-style truncating ``sdiv``/``srem`` with a trap on division by zero,
* IEEE-754 double math (Python floats), with ``fdiv``-by-zero producing
  ±inf/NaN instead of a Python exception,
* cell-addressed memory with bounds and validity checks (traps model the
  architecture-level symptoms of the paper's outcome taxonomy),
* per-block cycle charging and a cycle budget (hang detection),
* optional per-block execution profiling (used to pick dynamic fault sites),
* optional single-bit fault injection after a chosen dynamic occurrence of a
  chosen instruction (the FlipIt substitute's engine room).

Fault injection works by swapping in an alternative compiled version of the
*target block only*; every other block runs at full speed.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import (
    AllocaInst,
    AtomicRMWInst,
    BinaryOperator,
    BranchInst,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    LoadInst,
    PhiNode,
    RetInst,
    SelectInst,
    StoreInst,
    UnreachableInst,
)
from ..ir.module import Module
from ..ir.types import Type
from ..ir.values import Argument, Constant, GlobalVariable, UndefValue, Value
from .costmodel import CostModel
from .errors import InterpreterBug
from .runtime import EXEC_GLOBALS


# -- bit-flip helpers (exposed to generated code via EXEC_GLOBALS) -------------

def flip_int(value: int, bit: int, bits: int) -> int:
    """Flip one bit of a two's-complement integer of the given width."""
    mask = (1 << bits) - 1
    u = (value & mask) ^ (1 << (bit % bits))
    if bits > 1 and u >= 1 << (bits - 1):
        u -= 1 << bits
    return u


def flip_f64(value: float, bit: int) -> float:
    """Flip one bit of an IEEE-754 double."""
    try:
        (u,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    except (OverflowError, ValueError):
        u = 0
    u ^= 1 << (bit % 64)
    (result,) = struct.unpack("<d", struct.pack("<Q", u))
    return result


def flip_bool(value, bit: int):
    return not value


EXEC_GLOBALS = dict(EXEC_GLOBALS)
EXEC_GLOBALS.update(
    {
        "_flip_int": flip_int,
        "_flip_f64": flip_f64,
        "_flip_bool": flip_bool,
    }
)


class CompiledBlock:
    """One block: its compiled function and metadata for injection."""

    __slots__ = ("index", "gid", "fn", "cost", "source", "block")

    def __init__(self, index: int, gid: int, fn: Callable, cost: int, source: str, block: BasicBlock):
        self.index = index
        self.gid = gid
        self.fn = fn
        self.cost = cost
        self.source = source
        self.block = block


class CompiledFunction:
    """One function: frame size plus compiled blocks."""

    __slots__ = ("index", "name", "fn", "nslots", "nargs", "blocks", "block_fns")

    def __init__(self, index: int, fn: Function):
        self.index = index
        self.name = fn.name
        self.fn = fn
        self.nslots = 0
        self.nargs = len(fn.args)
        self.blocks: List[CompiledBlock] = []
        self.block_fns: List[Callable] = []


class InstructionRecord:
    """Where a value-producing instruction lives in compiled form."""

    __slots__ = ("inst", "cfi", "block_index", "block_gid", "slot")

    def __init__(self, inst: Instruction, cfi: int, block_index: int, block_gid: int, slot: int):
        self.inst = inst
        self.cfi = cfi
        self.block_index = block_index
        self.block_gid = block_gid
        self.slot = slot


class CompiledModule:
    """A fully compiled module plus its memory layout."""

    def __init__(self, module: Module, cost_model: Optional[CostModel] = None):
        self.module = module
        self.cost_model = cost_model or CostModel()
        self.cfuncs: List[CompiledFunction] = []
        self.func_index: Dict[str, int] = {}
        self.records: Dict[int, InstructionRecord] = {}  # id(inst) -> record
        self.block_gids: Dict[int, int] = {}  # id(block) -> gid
        self.total_blocks = 0
        #: detection context per compiled check call, indexed by the site id
        #: baked into the generated ``state.check_failed(<site>)``:
        #: (function name, block name, intrinsic name, checked value name)
        self.check_sites: List[Tuple[str, str, str, str]] = []
        # memory layout
        self.global_addr: Dict[str, int] = {}
        self.global_template: List = []  # initial cells incl. guards (None = guard)
        self.stack_base = 0
        self._compiler = _Compiler(self)
        self._layout_globals()
        self._compile_all()

    # -- memory layout --------------------------------------------------------

    GUARD = 8  # guard cells between regions

    def _layout_globals(self) -> None:
        cells: List = [None] * self.GUARD
        for gv in self.module.globals.values():
            self.global_addr[gv.name] = len(cells)
            cells.extend(gv.initial_cells())
            cells.extend([None] * self.GUARD)
        self.global_template = cells
        self.stack_base = len(cells)

    # -- compilation ------------------------------------------------------------

    def _compile_all(self) -> None:
        defined = self.module.defined_functions()
        for i, fn in enumerate(defined):
            cf = CompiledFunction(i, fn)
            self.cfuncs.append(cf)
            self.func_index[fn.name] = i
        for cf in self.cfuncs:
            self._compiler.compile_function(cf)

    def get_function_index(self, name: str) -> int:
        try:
            return self.func_index[name]
        except KeyError:
            raise KeyError(f"no defined function named {name}") from None

    def record_for(self, inst: Instruction) -> InstructionRecord:
        try:
            return self.records[id(inst)]
        except KeyError:
            raise KeyError(f"{inst!r} is not a compiled value-producing instruction") from None

    def injected_block_fn(
        self, inst: Instruction, mode: str = "1bit"
    ) -> Tuple[int, int, Callable]:
        """Compile (or fetch) the injection variant of the block holding
        ``inst``.  Returns (cfi, block_index, block_fn).  ``mode`` picks
        the injection epilogue: ``"1bit"`` (the legacy inline flip),
        ``"once"`` (one firing through ``state.inj_corrupt``), or
        ``"multi"`` (multi-shot arming via ``state.inj_fire``)."""
        record = self.record_for(inst)
        cf = self.cfuncs[record.cfi]
        fn = self._compiler.compile_block(
            cf, record.block_index, inject_after=inst, mode=mode
        )
        return record.cfi, record.block_index, fn

    def resume_block_fn(
        self,
        cfi: int,
        bi: int,
        call_k: int,
        inject_after: Optional[Instruction] = None,
        mode: str = "1bit",
    ) -> Callable:
        """Compile (or fetch) a warm-start *resume* variant of a block.

        The variant skips everything before the block's ``call_k``-th
        non-declaration call (0-based; blocks are straight-line, so the
        k-th dynamic call of a block instance is its k-th static call
        instruction), re-issues that call via ``state.resume_call()``, and
        runs the remainder normally.  No cycles are charged and no profile
        is bumped — the suspended block already paid at entry, before the
        ladder rung was captured.  ``inject_after`` re-arms the injection
        epilogue for instructions in the executed remainder (including the
        resumed call itself).
        """
        return self._compiler.compile_resume(
            self.cfuncs[cfi], bi, call_k, inject_after, mode
        )


class _Compiler:
    """Generates and ``exec``-compiles Python source for basic blocks."""

    def __init__(self, cm: CompiledModule):
        self.cm = cm
        self._slot_of: Dict[int, Dict[int, int]] = {}  # cfi -> id(value) -> slot
        self._inject_cache: Dict[Tuple[int, int, str], Callable] = {}
        self._resume_cache: Dict[Tuple[int, int, int, int, str], Callable] = {}

    # -- slot assignment ---------------------------------------------------------

    def _assign_slots(self, cf: CompiledFunction) -> Dict[int, int]:
        slots: Dict[int, int] = {}
        n = 0
        for arg in cf.fn.args:
            slots[id(arg)] = n
            n += 1
        for block in cf.fn.blocks:
            for inst in block.instructions:
                if inst.produces_value():
                    slots[id(inst)] = n
                    n += 1
        cf.nslots = max(n, 1)
        return slots

    # -- expression rendering -------------------------------------------------------

    def _expr(self, value: Value, slots: Dict[int, int]) -> str:
        slot = slots.get(id(value))
        if slot is not None:
            return f"f[{slot}]"
        if isinstance(value, Constant):
            if value.type.is_float():
                v = value.value
                if math.isnan(v):
                    return "_NAN"
                if math.isinf(v):
                    return "_INF" if v > 0 else "(-_INF)"
                return repr(v)
            if value.type.is_integer() and value.type.bits == 1:  # type: ignore[attr-defined]
                return "True" if value.value else "False"
            return repr(value.value)
        if isinstance(value, UndefValue):
            if value.type.is_float():
                return "0.0"
            return "0"
        if isinstance(value, GlobalVariable):
            return repr(self.cm.global_addr[value.name])
        raise InterpreterBug(f"cannot render operand {value!r}")

    # -- function compilation ----------------------------------------------------------

    def compile_function(self, cf: CompiledFunction) -> None:
        slots = self._assign_slots(cf)
        self._slot_of[cf.index] = slots
        block_index = {id(b): i for i, b in enumerate(cf.fn.blocks)}
        for i, block in enumerate(cf.fn.blocks):
            gid = self.cm.total_blocks
            self.cm.total_blocks += 1
            self.cm.block_gids[id(block)] = gid
            for inst in block.instructions:
                if inst.produces_value():
                    self.cm.records[id(inst)] = InstructionRecord(
                        inst, cf.index, i, gid, slots[id(inst)]
                    )
        for i, block in enumerate(cf.fn.blocks):
            source, fn = self._gen_block(cf, i, slots, block_index, None)
            cb = CompiledBlock(
                i,
                self.cm.block_gids[id(block)],
                fn,
                self.cm.cost_model.block_cost(block),
                source,
                block,
            )
            cf.blocks.append(cb)
            cf.block_fns.append(fn)

    def compile_block(
        self,
        cf: CompiledFunction,
        block_index_local: int,
        inject_after: Instruction,
        mode: str = "1bit",
    ) -> Callable:
        key = (cf.index, id(inject_after), mode)
        cached = self._inject_cache.get(key)
        if cached is not None:
            return cached
        slots = self._slot_of[cf.index]
        block_index = {id(b): i for i, b in enumerate(cf.fn.blocks)}
        _, fn = self._gen_block(
            cf, block_index_local, slots, block_index, inject_after, mode
        )
        self._inject_cache[key] = fn
        return fn

    def compile_resume(
        self,
        cf: CompiledFunction,
        bi: int,
        call_k: int,
        inject_after: Optional[Instruction],
        mode: str = "1bit",
    ) -> Callable:
        """Generate the warm-start resume variant of one block.

        See :meth:`CompiledModule.resume_block_fn` for the contract.  The
        generated function has no cycle/budget/profile preamble: the
        suspended block instance was charged and profiled at its original
        entry, before the ladder rung was captured.
        """
        key = (
            cf.index,
            bi,
            call_k,
            id(inject_after) if inject_after is not None else 0,
            mode,
        )
        cached = self._resume_cache.get(key)
        if cached is not None:
            return cached
        slots = self._slot_of[cf.index]
        block_index = {id(b): i for i, b in enumerate(cf.fn.blocks)}
        block = cf.fn.blocks[bi]
        insts = [i for i in block.instructions if not isinstance(i, PhiNode)]
        seen = 0
        resume_at = None
        for idx, inst in enumerate(insts):
            if isinstance(inst, CallInst) and not inst.callee.is_declaration:
                if seen == call_k:
                    resume_at = idx
                    break
                seen += 1
        if resume_at is None:
            raise InterpreterBug(
                f"no pending call #{call_k} in {cf.name} block {block.name}"
            )
        pending = insts[resume_at]
        remainder = insts[resume_at + 1 :]
        lines: List[str] = []
        emit = lines.append
        emit("def _block(f, state):")
        if any(
            isinstance(i, (LoadInst, StoreInst, AtomicRMWInst)) for i in remainder
        ):
            emit("    cells = state.cells")
        d = slots.get(id(pending))
        if d is not None:
            emit(f"    f[{d}] = state.resume_call()")
        else:
            emit("    state.resume_call()")
        if pending is inject_after:
            self._gen_injection(pending, slots, emit, mode)
        for inst in remainder:
            if inst.is_terminator():
                self._gen_terminator(inst, cf, slots, block_index, emit)
            else:
                self._gen_instruction(inst, slots, emit)
                if inst is inject_after:
                    self._gen_injection(inst, slots, emit, mode)
        source = "\n".join(lines) + "\n"
        namespace: Dict[str, object] = {}
        code = compile(
            source, f"<resume {cf.name}.{block.name}+{call_k}>", "exec"
        )
        exec(code, EXEC_GLOBALS, namespace)
        fn = namespace["_block"]
        self._resume_cache[key] = fn
        return fn

    # -- block codegen --------------------------------------------------------------------

    def _gen_block(
        self,
        cf: CompiledFunction,
        bi: int,
        slots: Dict[int, int],
        block_index: Dict[int, int],
        inject_after: Optional[Instruction],
        mode: str = "1bit",
    ) -> Tuple[str, Callable]:
        block = cf.fn.blocks[bi]
        gid = self.cm.block_gids[id(block)]
        cost = self.cm.cost_model.block_cost(block)
        lines: List[str] = []
        emit = lines.append

        emit(f"def _block(f, state):")
        emit(f"    state.cycles = _c = state.cycles + {cost}")
        emit(f"    if _c > state.budget: state.hang()")
        emit(f"    _p = state.prof")
        emit(f"    if _p is not None: _p[{gid}] += 1")
        needs_cells = any(
            isinstance(i, (LoadInst, StoreInst, AtomicRMWInst)) for i in block.instructions
        )
        if needs_cells:
            emit("    cells = state.cells")

        for inst in block.instructions:
            if isinstance(inst, PhiNode):
                continue  # materialised as edge copies in predecessors
            if inst.is_terminator():
                self._gen_terminator(inst, cf, slots, block_index, emit)
            else:
                self._gen_instruction(inst, slots, emit)
                if inst is inject_after:
                    self._gen_injection(inst, slots, emit, mode)
        source = "\n".join(lines) + "\n"
        namespace: Dict[str, object] = {}
        code = compile(source, f"<block {cf.name}.{block.name}>", "exec")
        exec(code, EXEC_GLOBALS, namespace)
        return source, namespace["_block"]

    # -- injection epilogue -----------------------------------------------------------------

    def _gen_injection(
        self, inst: Instruction, slots: Dict[int, int], emit, mode: str = "1bit"
    ) -> None:
        slot = slots[id(inst)]
        emit("    state.inj_seen = _k = state.inj_seen + 1")
        if mode == "multi":
            # Multi-shot arming (intermittent/persistent models): a
            # model-supplied predicate decides per execution.
            emit("    if state.inj_fire(_k):")
            emit(f"        f[{slot}] = state.inj_corrupt(f[{slot}])")
            emit("        state.inj_hit = True")
            return
        if mode == "once":
            # One firing through a model-supplied corrupter (multi-bit /
            # pattern models); the occurrence disarm (inj_occ = 0) works
            # exactly as for the legacy epilogue.
            emit("    if _k == state.inj_occ:")
            emit(f"        f[{slot}] = state.inj_corrupt(f[{slot}])")
            emit("        state.inj_hit = True")
            return
        emit("    if _k == state.inj_occ:")
        t = inst.type
        if t.is_float():
            emit(f"        f[{slot}] = _flip_f64(f[{slot}], state.inj_bit)")
        elif t.is_pointer():
            emit(f"        f[{slot}] = _flip_int(f[{slot}], state.inj_bit, 64)")
        elif t.is_integer() and t.bits == 1:  # type: ignore[attr-defined]
            emit(f"        f[{slot}] = _flip_bool(f[{slot}], state.inj_bit)")
        else:
            emit(
                f"        f[{slot}] = _flip_int(f[{slot}], state.inj_bit, {t.bits})"  # type: ignore[attr-defined]
            )
        emit("        state.inj_hit = True")

    # -- per-instruction codegen ---------------------------------------------------------------

    def _gen_instruction(self, inst: Instruction, slots: Dict[int, int], emit) -> None:
        e = lambda v: self._expr(v, slots)
        if isinstance(inst, BinaryOperator):
            self._gen_binop(inst, slots, emit)
            return
        d = slots.get(id(inst))
        if isinstance(inst, ICmpInst):
            op = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}[
                inst.predicate
            ]
            emit(f"    f[{d}] = {e(inst.operands[0])} {op} {e(inst.operands[1])}")
            return
        if isinstance(inst, FCmpInst):
            a, b = e(inst.operands[0]), e(inst.operands[1])
            if inst.predicate == "one":
                # ordered != : false when either side is NaN
                emit(f"    _a = {a}; _b = {b}")
                emit(f"    f[{d}] = _a == _a and _b == _b and _a != _b")
            else:
                op = {"oeq": "==", "olt": "<", "ole": "<=", "ogt": ">", "oge": ">="}[
                    inst.predicate
                ]
                emit(f"    f[{d}] = {a} {op} {b}")
            return
        if isinstance(inst, SelectInst):
            c, t, f_ = (e(o) for o in inst.operands)
            emit(f"    f[{d}] = {t} if {c} else {f_}")
            return
        if isinstance(inst, CastInst):
            self._gen_cast(inst, slots, emit)
            return
        if isinstance(inst, GEPInst):
            emit(f"    f[{d}] = {e(inst.base)} + {e(inst.index)}")
            return
        if isinstance(inst, AllocaInst):
            emit(f"    f[{d}] = state.alloc({inst.cell_count})")
            return
        if isinstance(inst, LoadInst):
            a = e(inst.pointer)
            emit(f"    _a = {a}")
            emit("    if _a < 0: state.trap_mem(_a)")
            emit("    try: _v = cells[_a]")
            emit("    except IndexError: state.trap_mem(_a)")
            emit("    if _v is None: state.trap_mem(_a)")
            emit(f"    f[{d}] = _v")
            return
        if isinstance(inst, StoreInst):
            emit(f"    _a = {e(inst.pointer)}")
            emit("    if _a < 0: state.trap_mem(_a)")
            emit("    try: _old = cells[_a]")
            emit("    except IndexError: state.trap_mem(_a)")
            emit("    if _old is None: state.trap_mem(_a)")
            emit(f"    cells[_a] = {e(inst.value)}")
            return
        if isinstance(inst, AtomicRMWInst):
            emit(f"    _a = {e(inst.pointer)}")
            emit("    if _a < 0: state.trap_mem(_a)")
            emit("    try: _old = cells[_a]")
            emit("    except IndexError: state.trap_mem(_a)")
            emit("    if _old is None: state.trap_mem(_a)")
            emit(f"    cells[_a] = _old + {e(inst.value)}")
            emit(f"    f[{d}] = _old")
            return
        if isinstance(inst, CallInst):
            self._gen_call(inst, slots, emit)
            return
        raise InterpreterBug(f"no codegen for {inst!r}")

    def _gen_binop(self, inst: BinaryOperator, slots: Dict[int, int], emit) -> None:
        e = lambda v: self._expr(v, slots)
        d = slots[id(inst)]
        a, b = e(inst.lhs), e(inst.rhs)
        op = inst.opcode
        if op in ("fadd", "fsub", "fmul"):
            sym = {"fadd": "+", "fsub": "-", "fmul": "*"}[op]
            emit(f"    f[{d}] = {a} {sym} {b}")
            return
        if op == "fdiv":
            emit(f"    _b = {b}")
            emit(f"    if _b != 0.0: f[{d}] = {a} / _b")
            emit(f"    else:")
            emit(f"        _a = {a}")
            emit(f"        f[{d}] = _INF if _a > 0 else (-_INF if _a < 0 else _NAN)")
            return
        if op == "frem":
            emit(f"    _b = {b}")
            emit(f"    f[{d}] = _fmod({a}, _b) if _b != 0.0 else _NAN")
            return
        bits = inst.type.bits  # type: ignore[attr-defined]
        lo = -(1 << (bits - 1))
        hi = (1 << (bits - 1)) - 1
        span = 1 << bits
        if op in ("add", "sub", "mul"):
            sym = {"add": "+", "sub": "-", "mul": "*"}[op]
            emit(f"    _r = {a} {sym} {b}")
            emit(f"    if _r > {hi} or _r < {lo}: _r = ((_r - {lo}) % {span}) + {lo}")
            emit(f"    f[{d}] = _r")
            return
        if op in ("sdiv", "srem"):
            emit(f"    _a = {a}; _b = {b}")
            emit("    if _b == 0: state.trap_div()")
            emit("    _q = abs(_a) // abs(_b)")
            emit("    if (_a < 0) != (_b < 0): _q = -_q")
            if op == "sdiv":
                emit(f"    if _q > {hi} or _q < {lo}: _q = ((_q - {lo}) % {span}) + {lo}")
                emit(f"    f[{d}] = _q")
            else:
                emit(f"    f[{d}] = _a - _q * _b")
            return
        if op in ("and", "or", "xor"):
            sym = {"and": "&", "or": "|", "xor": "^"}[op]
            emit(f"    f[{d}] = {a} {sym} {b}")
            return
        if op == "shl":
            emit(f"    _r = {a} << ({b} & {bits - 1})")
            emit(f"    if _r > {hi} or _r < {lo}: _r = ((_r - {lo}) % {span}) + {lo}")
            emit(f"    f[{d}] = _r")
            return
        if op == "lshr":
            emit(f"    _r = ({a} & {span - 1}) >> ({b} & {bits - 1})")
            emit(f"    if _r > {hi}: _r -= {span}")
            emit(f"    f[{d}] = _r")
            return
        if op == "ashr":
            emit(f"    f[{d}] = {a} >> ({b} & {bits - 1})")
            return
        raise InterpreterBug(f"no codegen for binop {op}")

    def _gen_cast(self, inst: CastInst, slots: Dict[int, int], emit) -> None:
        e = lambda v: self._expr(v, slots)
        d = slots[id(inst)]
        a = e(inst.value)
        op = inst.opcode
        if op == "sitofp":
            emit(f"    f[{d}] = float({a})")
            return
        if op == "fptosi":
            bits = inst.type.bits  # type: ignore[attr-defined]
            lo = -(1 << (bits - 1))
            hi = (1 << (bits - 1)) - 1
            emit(f"    _a = {a}")
            emit(f"    if _a != _a or _a > {float(hi)} or _a < {float(lo)}: state.trap_fptosi()")
            emit(f"    f[{d}] = int(_a)")
            return
        src_bits = inst.value.type.bits  # type: ignore[attr-defined]
        if op == "zext":
            if src_bits == 1:
                emit(f"    f[{d}] = 1 if {a} else 0")
            else:
                emit(f"    f[{d}] = {a} & {(1 << src_bits) - 1}")
            return
        if op == "sext":
            if src_bits == 1:
                emit(f"    f[{d}] = -1 if {a} else 0")
            else:
                emit(f"    f[{d}] = {a}")
            return
        if op == "trunc":
            dst_bits = inst.type.bits  # type: ignore[attr-defined]
            if dst_bits == 1:
                emit(f"    f[{d}] = bool({a} & 1)")
            else:
                lo = -(1 << (dst_bits - 1))
                span = 1 << dst_bits
                emit(f"    _r = {a} & {span - 1}")
                emit(f"    if _r > {-lo - 1}: _r -= {span}")
                emit(f"    f[{d}] = _r")
            return
        if op == "bitcast":
            if inst.type.is_float() and inst.value.type.is_integer():
                emit(f"    f[{d}] = _i2f({a})")
            elif inst.type.is_integer() and inst.value.type.is_float():
                emit(f"    f[{d}] = _f2i({a})")
            else:
                emit(f"    f[{d}] = {a}")
            return
        raise InterpreterBug(f"no codegen for cast {op}")

    def _gen_call(self, inst: CallInst, slots: Dict[int, int], emit) -> None:
        e = lambda v: self._expr(v, slots)
        d = slots.get(id(inst))
        callee = inst.callee
        args = [e(a) for a in inst.operands]
        if not callee.is_declaration:
            cfi = self.cm.get_function_index(callee.name)
            arg_tuple = "(" + ", ".join(args) + ("," if len(args) == 1 else "") + ")"
            if d is not None:
                emit(f"    f[{d}] = state.call({cfi}, {arg_tuple})")
            else:
                emit(f"    state.call({cfi}, {arg_tuple})")
            return
        name = callee.name
        if name.startswith("ipas.check"):
            site = len(self.cm.check_sites)
            fn = inst.function
            block = inst.parent
            checked = inst.operands[0]
            self.cm.check_sites.append(
                (
                    fn.name if fn is not None else "?",
                    block.name if block is not None else "?",
                    name,
                    getattr(checked, "name", "") or "<unnamed>",
                )
            )
            emit(f"    _x = {args[0]}; _y = {args[1]}")
            emit(
                "    if _x != _y and not (_x != _x and _y != _y): "
                f"state.check_failed({site})"
            )
            return
        math_fn = _MATH_INTRINSICS.get(name)
        if math_fn is not None:
            emit(f"    f[{d}] = {math_fn}({', '.join(args)})")
            return
        if name == "print_f64" or name == "print_i64":
            emit(f"    state.io_print({args[0]})")
            return
        if name.startswith("mpi_"):
            call = f"state.{name}({', '.join(args)})"
            if d is not None:
                emit(f"    f[{d}] = {call}")
            else:
                emit(f"    {call}")
            return
        raise InterpreterBug(f"no runtime binding for intrinsic {name}")

    # -- terminators --------------------------------------------------------------------------

    def _gen_terminator(
        self,
        inst: Instruction,
        cf: CompiledFunction,
        slots: Dict[int, int],
        block_index: Dict[int, int],
        emit,
    ) -> None:
        e = lambda v: self._expr(v, slots)
        block = inst.parent
        if isinstance(inst, RetInst):
            if inst.return_value is not None:
                emit(f"    state.ret = {e(inst.return_value)}")
            else:
                emit("    state.ret = None")
            emit("    return -1")
            return
        if isinstance(inst, UnreachableInst):
            emit("    state.trap_unreachable()")
            emit("    return -1")
            return
        if isinstance(inst, BranchInst):
            if not inst.is_conditional:
                target = inst.targets[0]
                self._gen_edge_copies(block, target, slots, emit, indent="    ")
                emit(f"    return {block_index[id(target)]}")
                return
            cond = inst.condition
            assert cond is not None
            then_b, else_b = inst.targets
            emit(f"    if {e(cond)}:")
            self._gen_edge_copies(block, then_b, slots, emit, indent="        ")
            emit(f"        return {block_index[id(then_b)]}")
            self._gen_edge_copies(block, else_b, slots, emit, indent="    ")
            emit(f"    return {block_index[id(else_b)]}")
            return
        raise InterpreterBug(f"no codegen for terminator {inst!r}")

    def _gen_edge_copies(
        self, pred: BasicBlock, succ: BasicBlock, slots: Dict[int, int], emit, indent: str
    ) -> None:
        """Parallel phi copies on the edge pred -> succ."""
        copies: List[Tuple[int, str]] = []
        for phi in succ.phis():
            value = phi.incoming_for_block(pred)
            copies.append((slots[id(phi)], self._expr(value, slots)))
        if not copies:
            return
        if len(copies) == 1:
            dst, src = copies[0]
            emit(f"{indent}f[{dst}] = {src}")
            return
        # Read all sources before writing any destination (parallel copy).
        temps = ", ".join(f"_t{i}" for i in range(len(copies)))
        sources = ", ".join(src for _, src in copies)
        emit(f"{indent}{temps} = {sources}")
        for i, (dst, _) in enumerate(copies):
            emit(f"{indent}f[{dst}] = _t{i}")


#: intrinsic name -> name of the guarded runtime helper in EXEC_GLOBALS
_MATH_INTRINSICS = {
    "sqrt": "_sqrt",
    "fabs": "_fabs",
    "sin": "_sin",
    "cos": "_cos",
    "exp": "_exp",
    "log": "_log",
    "pow": "_pow",
    "floor": "_floor",
    "fmin": "_fmin",
    "fmax": "_fmax",
}
