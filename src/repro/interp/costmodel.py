"""Deterministic cycle cost model.

The paper measures *slowdown*: execution time with duplication divided by
execution time without.  On our simulated substrate the equivalent metric is
the ratio of accumulated cycle costs, which is deterministic, noise-free,
and — because duplicated instructions and their checks are ordinary
instructions with ordinary costs — preserves the property that overhead is
proportional to how much of the dynamic instruction stream was duplicated.

Costs are charged per basic block: the static cost of a block is the sum of
its instructions' opcode costs, and the interpreter adds it once per block
execution.  This keeps the interpreter's fast path cheap while remaining
exact (a block's instructions always execute together; traps abort the whole
run, so partial-block charging would not change any reported ratio
materially).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..ir.block import BasicBlock
from ..ir.function import Function
from ..ir.instructions import CallInst, DEFAULT_OPCODE_COSTS, Instruction
from ..ir.module import Module


class CostModel:
    """Maps opcodes (and intrinsic calls) to cycle costs."""

    #: cost charged for an intrinsic call body (libm etc.), on top of the
    #: call overhead itself.
    DEFAULT_INTRINSIC_COST = 20
    #: cheap environment intrinsics (rank/size queries).
    CHEAP_INTRINSICS = frozenset({"mpi_rank", "mpi_size"})
    #: collectives: charged a latency that the parallel runtime may scale.
    COLLECTIVE_COST = 200

    def __init__(self, opcode_costs: Optional[Mapping[str, int]] = None):
        self.opcode_costs: Dict[str, int] = dict(DEFAULT_OPCODE_COSTS)
        if opcode_costs:
            self.opcode_costs.update(opcode_costs)

    def instruction_cost(self, inst: Instruction) -> int:
        if isinstance(inst, CallInst):
            base = self.opcode_costs["call"]
            callee = inst.callee
            if callee.is_declaration:
                name = callee.name
                if name.startswith("ipas.check"):
                    return self.opcode_costs["ipas.check"]
                if name in self.CHEAP_INTRINSICS:
                    return base
                if name.startswith("mpi_"):
                    return base + self.COLLECTIVE_COST
                return base + self.DEFAULT_INTRINSIC_COST
            return base
        try:
            return self.opcode_costs[inst.opcode]
        except KeyError:
            raise KeyError(f"no cost for opcode {inst.opcode!r}") from None

    def block_cost(self, block: BasicBlock) -> int:
        return sum(self.instruction_cost(i) for i in block.instructions)

    def function_static_cost(self, fn: Function) -> int:
        return sum(self.block_cost(b) for b in fn.blocks)

    def module_static_cost(self, module: Module) -> int:
        return sum(self.function_static_cost(f) for f in module.defined_functions())
