"""Runtime support for compiled blocks: guarded libm and conversion helpers.

The guarded wrappers give the C-library behaviour the workloads expect
(NaN/inf results) instead of Python exceptions — important because a
bit-flipped operand can push any intrinsic into its edge cases, and the
fault model wants those cases to *propagate* (and possibly be detected or
verified away), not crash the interpreter itself.
"""

from __future__ import annotations

import math
import struct
from typing import Dict


def guarded_sqrt(x: float) -> float:
    if x != x:
        return x
    if x < 0.0:
        return math.nan
    try:
        return math.sqrt(x)
    except (OverflowError, ValueError):
        return math.nan


def guarded_exp(x: float) -> float:
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def guarded_log(x: float) -> float:
    if x != x:
        return x
    if x < 0.0:
        return math.nan
    if x == 0.0:
        return -math.inf
    try:
        return math.log(x)
    except (OverflowError, ValueError):
        return math.nan


def guarded_pow(x: float, y: float) -> float:
    try:
        r = math.pow(x, y)
    except OverflowError:
        return math.inf
    except ValueError:
        return math.nan
    return r


def guarded_sin(x: float) -> float:
    try:
        return math.sin(x)
    except (OverflowError, ValueError):
        return math.nan


def guarded_cos(x: float) -> float:
    try:
        return math.cos(x)
    except (OverflowError, ValueError):
        return math.nan


def guarded_floor(x: float) -> float:
    if x != x or math.isinf(x):
        return x
    return float(math.floor(x))


def guarded_fmin(a: float, b: float) -> float:
    # C fmin: if one argument is NaN, return the other.
    if a != a:
        return b
    if b != b:
        return a
    return a if a < b else b


def guarded_fmax(a: float, b: float) -> float:
    if a != a:
        return b
    if b != b:
        return a
    return a if a > b else b


def int_bits_to_double(u: int) -> float:
    (x,) = struct.unpack("<d", struct.pack("<Q", u & 0xFFFFFFFFFFFFFFFF))
    return x


def double_to_int_bits(x: float) -> int:
    try:
        (u,) = struct.unpack("<Q", struct.pack("<d", float(x)))
    except (OverflowError, ValueError):
        u = 0
    if u >= 1 << 63:
        u -= 1 << 64
    return u


#: names injected into the namespace of every compiled block
EXEC_GLOBALS: Dict[str, object] = {
    "__builtins__": {
        "abs": abs,
        "bool": bool,
        "float": float,
        "int": int,
        "IndexError": IndexError,
    },
    "_INF": math.inf,
    "_NAN": math.nan,
    "_fmod": math.fmod,
    "_sqrt": guarded_sqrt,
    "_fabs": abs,
    "_sin": guarded_sin,
    "_cos": guarded_cos,
    "_exp": guarded_exp,
    "_log": guarded_log,
    "_pow": guarded_pow,
    "_floor": guarded_floor,
    "_fmin": guarded_fmin,
    "_fmax": guarded_fmax,
    "_i2f": int_bits_to_double,
    "_f2i": double_to_int_bits,
}
