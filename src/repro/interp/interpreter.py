"""The IR interpreter (virtual machine).

Drives the block functions produced by :mod:`repro.interp.compiler`.  One
``Interpreter`` wraps one compiled module and is reused — ``run()`` resets
all mutable state, so statistical fault-injection campaigns pay module
compilation once and then execute thousands of runs at full speed.

Executions are fully deterministic: identical inputs (globals) produce
identical outputs, cycle counts, and block profiles — the foundation for
golden-run comparison, duplicate-and-compare checking, and reproducible
campaigns.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..ir.instructions import Instruction
from ..ir.module import Module
from ..recover.regions import build_plan
from ..recover.runtime import (
    RecoveryPolicy,
    RecoveryState,
    RecoveryTelemetry,
    RollbackSignal,
    Snapshot,
)
from .compiler import CompiledModule
from .costmodel import CostModel
from .errors import (
    ArithmeticFault,
    DetectedByDuplication,
    ExecutionError,
    HangDetected,
    MemoryFault,
    MpiAbort,
    StackOverflow,
    Trap,
    UnreachableExecuted,
)


class SerialMpi:
    """Single-rank MPI semantics (identity collectives)."""

    rank = 0
    size = 1

    def barrier(self, interp: "Interpreter") -> None:
        pass

    def allreduce_sum(self, interp: "Interpreter", value):
        return value

    def allreduce_min(self, interp: "Interpreter", value):
        return value

    def allreduce_max(self, interp: "Interpreter", value):
        return value

    def bcast(self, interp: "Interpreter", value, root: int):
        return value

    def allreduce_array(self, interp: "Interpreter", addr: int, count: int) -> None:
        # Touch the cells so bounds violations trap even at one rank.
        for i in range(count):
            interp.checked_load(addr + i)

    def sendrecv(
        self, interp: "Interpreter", send_addr: int, recv_addr: int, count: int, peer: int
    ) -> None:
        # With one rank the only valid peer is ourselves: a local copy.
        for i in range(count):
            interp.checked_store(recv_addr + i, interp.checked_load(send_addr + i))


class RunResult:
    """Outcome of one interpreted execution."""

    __slots__ = (
        "status", "cycles", "value", "error", "injection_hit", "profile",
        "recovery",
    )

    def __init__(
        self,
        status: str,
        cycles: int,
        value=None,
        error: str = "",
        injection_hit: bool = False,
        profile: Optional[List[int]] = None,
        recovery: Optional[RecoveryTelemetry] = None,
    ):
        #: 'ok' | 'trap' | 'hang' | 'detected' | 'abort'
        self.status = status
        self.cycles = cycles
        self.value = value
        self.error = error
        self.injection_hit = injection_hit
        self.profile = profile
        #: RecoveryTelemetry when the run executed under a RecoveryPolicy
        self.recovery = recovery

    @property
    def completed(self) -> bool:
        return self.status == "ok"

    def __repr__(self) -> str:
        return f"<RunResult {self.status} cycles={self.cycles}>"


class Interpreter:
    """Executes a compiled module; reusable across many runs."""

    # Generated block code hits ``state.cycles`` / ``state.budget`` /
    # ``state.prof`` / ``state.cells`` on every block; __slots__ turns those
    # into fixed-offset loads instead of instance-dict lookups.
    __slots__ = (
        "cm", "module", "cfuncs", "stack_cells", "mpi", "collect_output",
        "global_overrides", "_cells_template", "cells", "sp", "cycles",
        "budget", "ret", "depth", "prof", "output_log", "inj_cfi", "inj_fns",
        "inj_seen", "inj_occ", "inj_bit", "inj_hit", "rec", "_rec_plans",
    )

    DEFAULT_STACK_CELLS = 1 << 16
    DEFAULT_MAX_DEPTH = 2000
    NO_BUDGET = 1 << 62

    def __init__(
        self,
        module_or_compiled: Union[Module, CompiledModule],
        cost_model: Optional[CostModel] = None,
        stack_cells: int = DEFAULT_STACK_CELLS,
        mpi=None,
        collect_output: bool = True,
    ):
        if isinstance(module_or_compiled, CompiledModule):
            self.cm = module_or_compiled
        else:
            self.cm = CompiledModule(module_or_compiled, cost_model)
        self.module = self.cm.module
        self.cfuncs = self.cm.cfuncs
        self.stack_cells = stack_cells
        self.mpi = mpi if mpi is not None else SerialMpi()
        self.collect_output = collect_output
        self.global_overrides: Dict[str, Sequence] = {}
        # Globals + zeroed stack, built once: reset() is one list copy
        # instead of a fresh 64k-cell extend per run (campaigns reset
        # thousands of times per second).
        self._cells_template: List = list(self.cm.global_template)
        self._cells_template.extend([0] * stack_cells)

        # mutable run state (initialised by reset)
        self.cells: List = []
        self.sp = 0
        self.cycles = 0
        self.budget = self.NO_BUDGET
        self.ret = None
        self.depth = 0
        self.prof: Optional[List[int]] = None
        self.output_log: List = []
        self.inj_cfi = -1
        self.inj_fns: Optional[List[Callable]] = None
        self.inj_seen = 0
        self.inj_occ = 0
        self.inj_bit = 0
        self.inj_hit = False
        #: RecoveryState while a run executes under a RecoveryPolicy
        self.rec: Optional[RecoveryState] = None
        self._rec_plans: Dict[str, Dict[int, frozenset]] = {}

    # -- configuration ----------------------------------------------------------

    def set_global_override(self, name: str, value) -> None:
        """Persistently override a global's initial contents (program input).

        ``value`` is a scalar or a sequence no longer than the global's cell
        count.  Applied on every subsequent ``run()``.
        """
        gv = self.module.get_global(name)
        if isinstance(value, (list, tuple)):
            if len(value) > gv.cell_count:
                raise ValueError(
                    f"override for {name} has {len(value)} cells, "
                    f"global has {gv.cell_count}"
                )
        self.global_overrides[name] = value

    def clear_global_overrides(self) -> None:
        self.global_overrides.clear()

    # -- state management ----------------------------------------------------------

    def reset(self) -> None:
        self.cells = self._cells_template.copy()
        self.sp = self.cm.stack_base
        self.cycles = 0
        self.ret = None
        self.depth = 0
        self.prof = None
        self.output_log = []
        self.inj_cfi = -1
        self.inj_fns = None
        self.inj_seen = 0
        self.inj_occ = 0
        self.inj_bit = 0
        self.inj_hit = False
        self.rec = None
        for name, value in self.global_overrides.items():
            base = self.cm.global_addr[name]
            if isinstance(value, (list, tuple)):
                self.cells[base : base + len(value)] = list(value)
            else:
                self.cells[base] = value

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        args: Sequence = (),
        injection: Optional[Tuple[Instruction, int, int]] = None,
        profile: bool = False,
        cycle_budget: Optional[int] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> RunResult:
        """Execute ``entry`` from a fresh state.

        ``injection`` is an optional ``(instruction, occurrence, bit)``
        triple: after the ``occurrence``-th dynamic execution of
        ``instruction``, flip ``bit`` in its result value.

        ``cycle_budget`` bounds execution (hang detection); ``None`` means
        effectively unlimited.

        ``recovery`` (a :class:`~repro.recover.RecoveryPolicy`) arms the
        rollback runtime: fired ``ipas.check.*`` intrinsics restore the
        most recent region snapshot and re-execute instead of failing the
        run, escalating to the fail-stop ``detected`` status when the
        policy's ladder is exhausted.  ``None`` (the default) executes
        exactly as before — recovery is strictly opt-in.
        """
        self.reset()
        self.budget = cycle_budget if cycle_budget is not None else self.NO_BUDGET
        if profile:
            self.prof = [0] * self.cm.total_blocks
        if injection is not None:
            inst, occurrence, bit = injection
            if occurrence < 1:
                raise ValueError("occurrence is 1-based")
            cfi, bi, fn = self.cm.injected_block_fn(inst)
            fns = list(self.cfuncs[cfi].block_fns)
            fns[bi] = fn
            self.inj_cfi = cfi
            self.inj_fns = fns
            self.inj_occ = occurrence
            self.inj_bit = bit
        if recovery is not None:
            plan = self._rec_plans.get(entry)
            if plan is None:
                plan = build_plan(self.cm, entry)
                self._rec_plans[entry] = plan
            self.rec = RecoveryState(recovery, plan)

        entry_index = self.cm.get_function_index(entry)
        status, error, value = "ok", "", None
        try:
            value = self.call(entry_index, tuple(args))
        except DetectedByDuplication as exc:
            status, error = "detected", str(exc)
        except RollbackSignal as exc:
            # Defensive: a signal escaping every recovery frame degrades to
            # the fail-stop detection it would have been without recovery.
            status, error = "detected", str(exc)
        except HangDetected as exc:
            status, error = "hang", str(exc) or "cycle budget exceeded"
        except MpiAbort as exc:
            status, error = "abort", str(exc)
        except Trap as exc:
            status, error = "trap", f"{type(exc).__name__}: {exc}"
        except RecursionError:
            status, error = "trap", "StackOverflow: host recursion limit"
        except (ZeroDivisionError, OverflowError, ValueError) as exc:
            # Defensive: guarded codegen should prevent these, but a fault
            # can push values into odd corners; treat as a crash symptom.
            status, error = "trap", f"host-level {type(exc).__name__}: {exc}"
        return RunResult(
            status,
            self.cycles,
            value=value,
            error=error,
            injection_hit=self.inj_hit,
            profile=self.prof,
            recovery=self.rec.telemetry if self.rec is not None else None,
        )

    def call(self, cfi: int, args: Tuple) -> object:
        """Invoke compiled function ``cfi`` (used by generated call steps).

        This is the block-dispatch hot loop: attribute lookups are hoisted
        into locals and the loop body is a single indexed call per block.
        With recovery disabled (``self.rec is None``, the default) the loop
        is byte-identical to the historical one bar the single delegation
        test below.
        """
        if self.rec is not None:
            return self._call_recover(cfi, args)
        depth = self.depth + 1
        if depth > self.DEFAULT_MAX_DEPTH:
            raise StackOverflow("call depth limit exceeded")
        self.depth = depth
        sp0 = self.sp
        cf = self.cfuncs[cfi]
        frame: List = [None] * cf.nslots
        if args:
            frame[: len(args)] = args
        fns = cf.block_fns if cfi != self.inj_cfi else self.inj_fns
        bi = fns[0](frame, self)
        while bi >= 0:
            bi = fns[bi](frame, self)
        self.depth = depth - 1
        self.sp = sp0
        return self.ret

    def _call_recover(self, cfi: int, args: Tuple) -> object:
        """Recovery-aware twin of :meth:`call`.

        Same dispatch loop, plus two responsibilities: capture a snapshot
        whenever control reaches one of this function's region boundaries,
        and handle :class:`RollbackSignal` by restoring the most recent
        snapshot — or escalating outward when the policy's ladder refuses.

        Each frame keeps at most one live snapshot (``mine``), replaced on
        recapture; frames push onto ``rec.stack`` in call order and pop on
        return, so whenever a signal reaches a frame that holds a snapshot,
        that snapshot is the stack top (deeper frames already unwound and
        popped theirs).
        """
        rec = self.rec
        depth = self.depth + 1
        if depth > self.DEFAULT_MAX_DEPTH:
            raise StackOverflow("call depth limit exceeded")
        self.depth = depth
        sp0 = self.sp
        cf = self.cfuncs[cfi]
        frame: List = [None] * cf.nslots
        if args:
            frame[: len(args)] = args
        fns = cf.block_fns if cfi != self.inj_cfi else self.inj_fns
        boundaries = rec.plan.get(cfi)
        stack = rec.stack
        mine: Optional[Snapshot] = None
        bi = 0
        while True:
            try:
                while bi >= 0:
                    if boundaries is not None and bi in boundaries and (
                        rec.should_snapshot(self.cycles)
                    ):
                        # Only cells[:sp] are defined program state: cells
                        # past sp are dead residue of returned frames, and
                        # any live pointer is below sp — copying the prefix
                        # keeps snapshots proportional to the live stack,
                        # not the 64k-cell arena.
                        snap = Snapshot(
                            cfi,
                            bi,
                            self.cells[: self.sp],
                            self.sp,
                            self.cycles,
                            list(frame),
                            len(self.output_log),
                            self.inj_seen,
                            self.inj_hit,
                        )
                        if mine is not None:
                            stack.pop()
                        stack.append(snap)
                        mine = snap
                        rec.telemetry.snapshots += 1
                        rec.last_snapshot_cycles = self.cycles
                        if rec.policy.snapshot_cost:
                            self.cycles += rec.policy.snapshot_cost
                    bi = fns[bi](frame, self)
                break
            except RollbackSignal as signal:
                if mine is None:
                    raise  # some enclosing frame owns the nearest snapshot
                reason = rec.on_detection(mine, self.cycles)
                if reason is not None:
                    stack.pop()
                    mine = None
                    if stack:
                        raise  # escalate to the enclosing region
                    raise DetectedByDuplication(
                        f"{signal.check_name} failed for "
                        f"{signal.instruction!r} at "
                        f"{signal.function}:{signal.block} "
                        f"(recovery escalated: {reason})",
                        check_name=signal.check_name,
                        function=signal.function,
                        block=signal.block,
                        instruction=signal.instruction,
                    ) from None
                # Roll back: nested frames were unwound by the signal, so
                # restoring memory, sp, depth, and this frame's registers
                # re-creates the snapshot instant exactly.  Cycles stay
                # monotonic — wasted work counts toward the hang budget.
                self.cells[: mine.sp] = mine.cells
                self.sp = mine.sp
                self.depth = depth
                self.ret = None
                del stack[stack.index(mine) + 1 :]
                del self.output_log[mine.out_len :]
                self.inj_seen = mine.inj_seen
                if self.inj_hit:
                    # Transient-fault model: the flip already happened once;
                    # the re-execution must not replay it.
                    self.inj_occ = 0
                bi = mine.bi
        if mine is not None:
            stack.pop()
        self.depth = depth - 1
        self.sp = sp0
        return self.ret

    # -- memory helpers (runtime-internal accesses use the same trap rules) -------

    def alloc(self, count: int) -> int:
        addr = self.sp
        new_sp = addr + count
        if new_sp > len(self.cells):
            raise StackOverflow(f"stack exhausted allocating {count} cells")
        self.sp = new_sp
        return addr

    def checked_load(self, addr: int):
        if addr < 0:
            self.trap_mem(addr)
        try:
            v = self.cells[addr]
        except IndexError:
            self.trap_mem(addr)
        if v is None:
            self.trap_mem(addr)
        return v

    def checked_store(self, addr: int, value) -> None:
        if addr < 0:
            self.trap_mem(addr)
        try:
            old = self.cells[addr]
        except IndexError:
            self.trap_mem(addr)
        if old is None:
            self.trap_mem(addr)
        self.cells[addr] = value

    def read_global(self, name: str):
        """Read a global's current contents (scalar, or list for arrays)."""
        gv = self.module.get_global(name)
        base = self.cm.global_addr[name]
        if gv.value_type.is_array():
            return list(self.cells[base : base + gv.cell_count])
        return self.cells[base]

    # -- trap raisers (called from generated code) -----------------------------------

    def trap_mem(self, addr) -> None:
        raise MemoryFault(f"invalid address {addr}")

    def trap_div(self) -> None:
        raise ArithmeticFault("integer division by zero")

    def trap_fptosi(self) -> None:
        raise ArithmeticFault("float-to-int conversion out of range")

    def trap_unreachable(self) -> None:
        raise UnreachableExecuted("executed 'unreachable'")

    def hang(self) -> None:
        raise HangDetected(f"exceeded cycle budget {self.budget}")

    def check_failed(self, site: int = -1) -> None:
        """A duplication check diverged (called from generated code).

        ``site`` indexes ``cm.check_sites`` (baked in at compile time) and
        resolves to the failing check's function, block, and checked value.
        With recovery armed this raises the non-terminal
        :class:`RollbackSignal` instead of the fail-stop detection.
        """
        if 0 <= site < len(self.cm.check_sites):
            fn_name, block_name, check_name, value_name = self.cm.check_sites[site]
        else:
            fn_name = block_name = value_name = "?"
            check_name = "ipas.check"
        if self.rec is not None:
            raise RollbackSignal(fn_name, block_name, check_name, value_name)
        raise DetectedByDuplication(
            f"{check_name} failed for {value_name!r} at {fn_name}:{block_name}",
            check_name=check_name,
            function=fn_name,
            block=block_name,
            instruction=value_name,
        )

    def recovery_pin(self) -> None:
        """Forbid rollback past this instant (irreversible communication —
        an MPI collective — just executed; replaying it would desynchronise
        the job)."""
        if self.rec is not None:
            self.rec.pin()

    # -- I/O and MPI bindings (called from generated code) ------------------------------

    def io_print(self, value) -> None:
        if self.collect_output:
            self.output_log.append(value)

    def mpi_rank(self) -> int:
        return self.mpi.rank

    def mpi_size(self) -> int:
        return self.mpi.size

    def mpi_barrier(self) -> None:
        self.mpi.barrier(self)

    def mpi_allreduce_sum_f64(self, value):
        return self.mpi.allreduce_sum(self, value)

    def mpi_allreduce_sum_i64(self, value):
        return self.mpi.allreduce_sum(self, value)

    def mpi_allreduce_min_f64(self, value):
        return self.mpi.allreduce_min(self, value)

    def mpi_allreduce_max_f64(self, value):
        return self.mpi.allreduce_max(self, value)

    def mpi_allreduce_max_i64(self, value):
        return self.mpi.allreduce_max(self, value)

    def mpi_bcast_f64(self, value, root):
        return self.mpi.bcast(self, value, root)

    def mpi_bcast_i64(self, value, root):
        return self.mpi.bcast(self, value, root)

    def mpi_allreduce_sum_f64_array(self, addr, count) -> None:
        self.mpi.allreduce_array(self, addr, count)

    def mpi_allreduce_sum_i64_array(self, addr, count) -> None:
        self.mpi.allreduce_array(self, addr, count)

    def mpi_sendrecv_f64(self, send_addr, recv_addr, count, peer) -> None:
        self.mpi.sendrecv(self, send_addr, recv_addr, count, peer)


def run_module(
    module: Module,
    entry: str = "main",
    overrides: Optional[Dict[str, object]] = None,
    cycle_budget: Optional[int] = None,
) -> Tuple[RunResult, Interpreter]:
    """One-shot convenience: compile, run, and return (result, interpreter)."""
    interp = Interpreter(module)
    if overrides:
        for name, value in overrides.items():
            interp.set_global_override(name, value)
    result = interp.run(entry, cycle_budget=cycle_budget)
    return result, interp
