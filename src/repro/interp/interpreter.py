"""The IR interpreter (virtual machine).

Drives the block functions produced by :mod:`repro.interp.compiler`.  One
``Interpreter`` wraps one compiled module and is reused — ``run()`` resets
all mutable state, so statistical fault-injection campaigns pay module
compilation once and then execute thousands of runs at full speed.

Executions are fully deterministic: identical inputs (globals) produce
identical outputs, cycle counts, and block profiles — the foundation for
golden-run comparison, duplicate-and-compare checking, and reproducible
campaigns.
"""

from __future__ import annotations

from math import copysign as _copysign
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..ir.instructions import Instruction
from ..ir.module import Module
from ..recover.regions import build_plan
from ..recover.runtime import (
    RecoveryPolicy,
    RecoveryState,
    RecoveryTelemetry,
    RollbackSignal,
    Snapshot,
)
from ..recover.warm import (
    GoldenResync,
    SnapshotLadder,
    WarmStart,
    _TrackState,
    exact_state_eq,
)
from .compiler import CompiledModule
from .costmodel import CostModel
from .errors import (
    ArithmeticFault,
    DetectedByDuplication,
    ExecutionError,
    HangDetected,
    MemoryFault,
    MpiAbort,
    StackOverflow,
    Trap,
    UnreachableExecuted,
)


class SerialMpi:
    """Single-rank MPI semantics (identity collectives)."""

    rank = 0
    size = 1

    def barrier(self, interp: "Interpreter") -> None:
        pass

    def allreduce_sum(self, interp: "Interpreter", value):
        return value

    def allreduce_min(self, interp: "Interpreter", value):
        return value

    def allreduce_max(self, interp: "Interpreter", value):
        return value

    def bcast(self, interp: "Interpreter", value, root: int):
        return value

    def allreduce_array(self, interp: "Interpreter", addr: int, count: int) -> None:
        # Touch the cells so bounds violations trap even at one rank.
        for i in range(count):
            interp.checked_load(addr + i)

    def sendrecv(
        self, interp: "Interpreter", send_addr: int, recv_addr: int, count: int, peer: int
    ) -> None:
        # With one rank the only valid peer is ourselves: a local copy.
        for i in range(count):
            interp.checked_store(recv_addr + i, interp.checked_load(send_addr + i))


class RunResult:
    """Outcome of one interpreted execution."""

    __slots__ = (
        "status", "cycles", "value", "error", "injection_hit", "profile",
        "recovery", "resynced", "warm_index",
    )

    def __init__(
        self,
        status: str,
        cycles: int,
        value=None,
        error: str = "",
        injection_hit: bool = False,
        profile: Optional[List[int]] = None,
        recovery: Optional[RecoveryTelemetry] = None,
        resynced: bool = False,
        warm_index: int = -1,
    ):
        #: 'ok' | 'trap' | 'hang' | 'detected' | 'abort'
        self.status = status
        self.cycles = cycles
        self.value = value
        self.error = error
        self.injection_hit = injection_hit
        self.profile = profile
        #: RecoveryTelemetry when the run executed under a RecoveryPolicy
        self.recovery = recovery
        #: the run finished early by proving bit-identity to the golden run
        self.resynced = resynced
        #: ladder rung the run warm-started from (-1 = cold start)
        self.warm_index = warm_index

    @property
    def completed(self) -> bool:
        return self.status == "ok"

    def __repr__(self) -> str:
        return f"<RunResult {self.status} cycles={self.cycles}>"


class Interpreter:
    """Executes a compiled module; reusable across many runs."""

    # Generated block code hits ``state.cycles`` / ``state.budget`` /
    # ``state.prof`` / ``state.cells`` on every block; __slots__ turns those
    # into fixed-offset loads instead of instance-dict lookups.
    __slots__ = (
        "cm", "module", "cfuncs", "stack_cells", "mpi", "collect_output",
        "global_overrides", "_cells_template", "_reset_image", "cells", "sp",
        "cycles", "budget", "ret", "depth", "prof", "output_log", "inj_cfi",
        "inj_fns", "inj_seen", "inj_occ", "inj_bit", "inj_hit", "inj_inst",
        "inj_bi", "inj_mode", "inj_fire", "inj_corrupt",
        "rec", "_rec_plans", "trk", "_resume_frames",
        "_resume_next",
    )

    DEFAULT_STACK_CELLS = 1 << 16
    DEFAULT_MAX_DEPTH = 2000
    NO_BUDGET = 1 << 62

    def __init__(
        self,
        module_or_compiled: Union[Module, CompiledModule],
        cost_model: Optional[CostModel] = None,
        stack_cells: int = DEFAULT_STACK_CELLS,
        mpi=None,
        collect_output: bool = True,
    ):
        if isinstance(module_or_compiled, CompiledModule):
            self.cm = module_or_compiled
        else:
            self.cm = CompiledModule(module_or_compiled, cost_model)
        self.module = self.cm.module
        self.cfuncs = self.cm.cfuncs
        self.stack_cells = stack_cells
        self.mpi = mpi if mpi is not None else SerialMpi()
        self.collect_output = collect_output
        self.global_overrides: Dict[str, Sequence] = {}
        # Globals + zeroed stack, built once: reset() is one list copy
        # instead of a fresh 64k-cell extend per run (campaigns reset
        # thousands of times per second).
        self._cells_template: List = list(self.cm.global_template)
        self._cells_template.extend([0] * stack_cells)
        # Template with global_overrides already applied, rebuilt lazily on
        # the first reset() after an override change: per-trial reset is one
        # flat list copy instead of copy + per-override writes.
        self._reset_image: Optional[List] = None

        # mutable run state (initialised by reset)
        self.cells: List = []
        self.sp = 0
        self.cycles = 0
        self.budget = self.NO_BUDGET
        self.ret = None
        self.depth = 0
        self.prof: Optional[List[int]] = None
        self.output_log: List = []
        self.inj_cfi = -1
        self.inj_fns: Optional[List[Callable]] = None
        self.inj_seen = 0
        self.inj_occ = 0
        self.inj_bit = 0
        self.inj_hit = False
        self.inj_inst = None
        self.inj_bi = -1
        self.inj_mode = "1bit"
        self.inj_fire: Optional[Callable] = None
        self.inj_corrupt: Optional[Callable] = None
        #: RecoveryState while a run executes under a RecoveryPolicy
        self.rec: Optional[RecoveryState] = None
        self._rec_plans: Dict[str, Dict[int, frozenset]] = {}
        #: _TrackState while a run captures a ladder or resyncs against one
        self.trk: Optional[_TrackState] = None
        # warm-start resume chain (consumed left to right by resume_call)
        self._resume_frames = None
        self._resume_next = 0

    # -- configuration ----------------------------------------------------------

    def set_global_override(self, name: str, value) -> None:
        """Persistently override a global's initial contents (program input).

        ``value`` is a scalar or a sequence no longer than the global's cell
        count.  Applied on every subsequent ``run()``.  The override's
        contents are frozen into the reset image at the next ``run()`` —
        mutating a list after passing it here has no further effect.
        """
        gv = self.module.get_global(name)
        if isinstance(value, (list, tuple)):
            if len(value) > gv.cell_count:
                raise ValueError(
                    f"override for {name} has {len(value)} cells, "
                    f"global has {gv.cell_count}"
                )
        self.global_overrides[name] = value
        self._reset_image = None

    def clear_global_overrides(self) -> None:
        self.global_overrides.clear()
        self._reset_image = None

    # -- state management ----------------------------------------------------------

    def reset(self, cells: bool = True) -> None:
        image = self._reset_image
        if image is None:
            # Bake overrides into the template once; campaigns reset
            # thousands of times per second and the overrides never change
            # mid-campaign.
            image = self._cells_template.copy()
            for name, value in self.global_overrides.items():
                base = self.cm.global_addr[name]
                if isinstance(value, (list, tuple)):
                    image[base : base + len(value)] = list(value)
                else:
                    image[base] = value
            self._reset_image = image
        if cells:
            self.cells = image.copy()
        self.sp = self.cm.stack_base
        self.cycles = 0
        self.ret = None
        self.depth = 0
        self.prof = None
        self.output_log = []
        self.inj_cfi = -1
        self.inj_fns = None
        self.inj_seen = 0
        self.inj_occ = 0
        self.inj_bit = 0
        self.inj_hit = False
        self.inj_inst = None
        self.inj_bi = -1
        self.inj_mode = "1bit"
        self.inj_fire = None
        self.inj_corrupt = None
        self.rec = None
        self.trk = None
        self._resume_frames = None
        self._resume_next = 0

    # -- execution -----------------------------------------------------------------

    def run(
        self,
        entry: str = "main",
        args: Sequence = (),
        injection=None,
        profile: bool = False,
        cycle_budget: Optional[int] = None,
        recovery: Optional[RecoveryPolicy] = None,
        warm: Optional[WarmStart] = None,
    ) -> RunResult:
        """Execute ``entry`` from a fresh state.

        ``injection`` is an optional ``(instruction, occurrence, bit)``
        triple: after the ``occurrence``-th dynamic execution of
        ``instruction``, flip ``bit`` in its result value.  Pluggable
        fault models pass a ``repro.faults.models.InjectionSpec``
        instead, carrying the epilogue mode and the model's corruption
        and firing closures.

        ``cycle_budget`` bounds execution (hang detection); ``None`` means
        effectively unlimited.

        ``recovery`` (a :class:`~repro.recover.RecoveryPolicy`) arms the
        rollback runtime: fired ``ipas.check.*`` intrinsics restore the
        most recent region snapshot and re-execute instead of failing the
        run, escalating to the fail-stop ``detected`` status when the
        policy's ladder is exhausted.  ``None`` (the default) executes
        exactly as before — recovery is strictly opt-in.

        ``warm`` (a :class:`~repro.recover.WarmStart`) restores a golden
        ladder rung instead of starting at instruction 0 and executes only
        the suffix; with ``warm.resync`` armed (and no recovery policy) the
        run finishes with the golden result as soon as its state provably
        re-converges with the golden run.  The result is bit-identical to
        the cold run in every observable field.
        """
        # A warm restore replaces the whole arena, so the reset image copy
        # (a full-arena memcpy) would be dead work on that path.
        self.reset(cells=warm is None or warm.snapshot is None)
        self.budget = cycle_budget if cycle_budget is not None else self.NO_BUDGET
        if profile:
            self.prof = [0] * self.cm.total_blocks
        if injection is not None:
            if type(injection) is tuple:
                # The legacy transient-1bit triple: the historical fast
                # path, byte-identical codegen and arming.
                inst, occurrence, bit = injection
                if occurrence < 1:
                    raise ValueError("occurrence is 1-based")
                cfi, bi, fn = self.cm.injected_block_fn(inst)
                self.inj_occ = occurrence
                self.inj_bit = bit
            else:
                # An InjectionSpec from a pluggable fault model
                # (repro.faults.models): the epilogue mode and the
                # corruption/firing closures come from the model.
                inst = injection.instruction
                if injection.occurrence < 1:
                    raise ValueError("occurrence is 1-based")
                cfi, bi, fn = self.cm.injected_block_fn(
                    inst, mode=injection.mode
                )
                self.inj_occ = injection.occurrence
                self.inj_mode = injection.mode
                self.inj_corrupt = injection.corrupt
                self.inj_fire = injection.fire
            fns = list(self.cfuncs[cfi].block_fns)
            fns[bi] = fn
            self.inj_cfi = cfi
            self.inj_fns = fns
            self.inj_inst = inst
            self.inj_bi = bi
        if recovery is not None:
            plan = self._rec_plans.get(entry)
            if plan is None:
                plan = build_plan(self.cm, entry)
                self._rec_plans[entry] = plan
            self.rec = RecoveryState(recovery, plan)
        warm_index = -1
        if warm is not None:
            if warm.snapshot is not None:
                warm_index = warm.snapshot.index
                self.inj_seen = warm.inj_seen
            # Resync needs the frame-mirroring dispatch loop; recovery
            # telemetry must replay in full, so resync stays off with a
            # policy armed.
            if (
                warm.resync
                and recovery is None
                and warm.ladder is not None
                and warm.ladder.snapshots
            ):
                trk = _TrackState()
                trk.resync_pts = warm.ladder.snapshots
                trk.golden_cycles = warm.ladder.golden_cycles
                if warm.snapshot is not None:
                    # Rungs at or before the restore point are already
                    # behind the trial in state-space; start the cursor
                    # (and the offset-probe window) just past them.
                    trk.ri = warm.snapshot.index + 1
                trk.rebuild_cand()
                self.trk = trk

        entry_index = self.cm.get_function_index(entry)
        status, error, value = "ok", "", None
        resynced = False
        try:
            if warm is not None and warm.snapshot is not None:
                value = self._resume_from(warm)
            else:
                value = self.call(entry_index, tuple(args))
        except GoldenResync as exc:
            # The trial's state matched a golden rung bit-for-bit after the
            # flip fired: the remaining execution equals the golden suffix.
            # ``delta`` shifts the cycle count for offset rendezvous (the
            # suffix's cycle charges are a function of the matched state,
            # so the trial finishes exactly ``delta`` off the golden run).
            resynced = True
            assert warm is not None
            value = warm.ladder.golden_value
            self.cycles = warm.ladder.golden_cycles + exc.delta
        except DetectedByDuplication as exc:
            status, error = "detected", str(exc)
        except RollbackSignal as exc:
            # Defensive: a signal escaping every recovery frame degrades to
            # the fail-stop detection it would have been without recovery.
            status, error = "detected", str(exc)
        except HangDetected as exc:
            status, error = "hang", str(exc) or "cycle budget exceeded"
        except MpiAbort as exc:
            status, error = "abort", str(exc)
        except Trap as exc:
            status, error = "trap", f"{type(exc).__name__}: {exc}"
        except RecursionError:
            status, error = "trap", "StackOverflow: host recursion limit"
        except (ZeroDivisionError, OverflowError, ValueError) as exc:
            # Defensive: guarded codegen should prevent these, but a fault
            # can push values into odd corners; treat as a crash symptom.
            status, error = "trap", f"host-level {type(exc).__name__}: {exc}"
        self.trk = None
        self._resume_frames = None
        return RunResult(
            status,
            self.cycles,
            value=value,
            error=error,
            injection_hit=self.inj_hit,
            profile=self.prof,
            recovery=self.rec.telemetry if self.rec is not None else None,
            resynced=resynced,
            warm_index=warm_index,
        )

    def call(self, cfi: int, args: Tuple) -> object:
        """Invoke compiled function ``cfi`` (used by generated call steps).

        This is the block-dispatch hot loop: attribute lookups are hoisted
        into locals and the loop body is a single indexed call per block.
        With recovery and tracking disabled (``self.rec is None and
        self.trk is None``, the default) the loop is byte-identical to the
        historical one bar the single delegation test below.
        """
        if self.rec is not None or self.trk is not None:
            return self._call_tracked(cfi, args)
        depth = self.depth + 1
        if depth > self.DEFAULT_MAX_DEPTH:
            raise StackOverflow("call depth limit exceeded")
        self.depth = depth
        sp0 = self.sp
        cf = self.cfuncs[cfi]
        frame: List = [None] * cf.nslots
        if args:
            frame[: len(args)] = args
        fns = cf.block_fns if cfi != self.inj_cfi else self.inj_fns
        bi = fns[0](frame, self)
        while bi >= 0:
            bi = fns[bi](frame, self)
        self.depth = depth - 1
        self.sp = sp0
        return self.ret

    def _call_tracked(self, cfi: int, args: Tuple, _resume=None) -> object:
        """Recovery/tracking-aware twin of :meth:`call`.

        Same dispatch loop, plus up to three responsibilities depending on
        what is armed:

        * **recovery** (``self.rec``): capture a region snapshot whenever
          control reaches one of this function's region boundaries, and
          handle :class:`RollbackSignal` by restoring the most recent
          snapshot — or escalating outward when the policy's ladder
          refuses.  Each frame keeps at most one live snapshot (``mine``),
          replaced on recapture; frames push onto ``rec.stack`` in call
          order and pop on return, so whenever a signal reaches a frame
          that holds a snapshot, that snapshot is the stack top.

        * **ladder capture** (``self.trk.capturing``, golden run only):
          mirror the live call stack in ``trk.frames`` and capture a
          full-state :class:`WarmSnapshot` rung at the configured cycle
          stride and at region boundaries.

        * **golden resync** (``self.trk.resync_pts``, warm trials): mirror
          the call stack and, once the injected flip has fired, compare
          against upcoming golden rungs — a bit-exact match raises
          :class:`GoldenResync` (the run's remaining execution provably
          equals the golden suffix).

        ``_resume`` (a :class:`~repro.recover.warm.WarmFrame`) re-enters a
        suspended frame mid-block: a compiled *resume block* skips the
        already-executed prefix, re-issues the pending call via
        :meth:`resume_call` (chaining to the next warm frame), and falls
        through to the normal dispatch loop — with no cycle recharge, since
        the block was charged at entry before the rung was captured.
        """
        rec = self.rec
        trk = self.trk
        depth = self.depth + 1
        if depth > self.DEFAULT_MAX_DEPTH:
            raise StackOverflow("call depth limit exceeded")
        self.depth = depth
        resume_fn = None
        mine: Optional[Snapshot] = None
        if _resume is None:
            sp0 = self.sp
            cf = self.cfuncs[cfi]
            frame: List = [None] * cf.nslots
            if args:
                frame[: len(args)] = args
            bi = 0
            call_k = 0
        else:
            wf = _resume
            cfi = wf.cfi
            bi = wf.bi
            sp0 = wf.sp0
            cf = self.cfuncs[cfi]
            frame = list(wf.regs)
            if rec is not None and wf.rec_mine is not None:
                # Restore this frame's live recovery snapshot as a fresh
                # copy (trials must never mutate the shared ladder); the
                # pinned flag is the one frozen at capture time — pin()
                # mutates snapshots after the fact.
                src = wf.rec_mine
                mine = Snapshot(
                    src.cfi,
                    src.bi,
                    src.cells,
                    src.sp,
                    src.cycles,
                    src.frame,
                    src.out_len,
                    src.inj_seen,
                    src.tainted,
                )
                mine.pinned = wf.rec_pinned
                rec.stack.append(mine)
            if wf.call_k is None:
                call_k = 0  # innermost frame: re-enter the loop at bi
            else:
                call_k = wf.call_k + 1  # the pending call counts as made
                resume_fn = self.cm.resume_block_fn(
                    cfi,
                    bi,
                    wf.call_k,
                    self.inj_inst
                    if cfi == self.inj_cfi and bi == self.inj_bi
                    else None,
                    mode=self.inj_mode,
                )
        fns = cf.block_fns if cfi != self.inj_cfi else self.inj_fns
        record = None
        if trk is not None:
            if trk.frames and _resume is None:
                trk.frames[-1][2] += 1  # the parent initiated one more call
            record = [cfi, bi, call_k, frame, sp0, mine]
            trk.frames.append(record)
        if rec is None and trk is not None and not trk.capturing:
            # Resync-only warm trial: no recovery policy means no
            # RollbackSignal can reach this frame, so the loop needs no
            # try/except and no snapshot logic — it runs the entire trial
            # suffix, so every avoided per-block instruction matters.
            try:
                if resume_fn is not None:
                    bi = resume_fn(frame, self)
                while bi >= 0:
                    if self.trk is None:
                        # Resync gave up (or ran out of rungs) somewhere
                        # below this frame: finish at full lean-loop speed.
                        while bi >= 0:
                            bi = fns[bi](frame, self)
                        break
                    record[1] = bi
                    record[2] = 0
                    if self.inj_hit:
                        if self.cycles >= trk.next_resync:
                            self._try_resync(trk)  # may raise GoldenResync
                        else:
                            for snap, cregs in trk.cand:
                                if frame == cregs:
                                    self._try_probe(trk, snap)
                                    break
                    bi = fns[bi](frame, self)
            finally:
                trk.frames.pop()
            self.depth = depth - 1
            self.sp = sp0
            return self.ret
        boundaries = rec.plan.get(cfi) if rec is not None else None
        stack = rec.stack if rec is not None else None
        capturing = trk is not None and trk.capturing
        cap_boundaries = trk.plan.get(cfi) if capturing else None
        resync = trk is not None and trk.resync_pts is not None
        while True:
            try:
                if resume_fn is not None:
                    fn = resume_fn
                    resume_fn = None
                    bi = fn(frame, self)
                while bi >= 0:
                    if record is not None:
                        record[1] = bi
                        record[2] = 0
                    if capturing:
                        c = self.cycles
                        if c >= trk.next_capture or (
                            cap_boundaries is not None
                            and bi in cap_boundaries
                            and c - trk.last_capture >= trk.region_spacing
                        ):
                            trk.capture(self)
                    elif (
                        resync
                        and self.inj_hit
                        and self.cycles >= trk.next_resync
                    ):
                        self._try_resync(trk)  # may raise GoldenResync
                    if boundaries is not None and bi in boundaries and (
                        rec.should_snapshot(self.cycles)
                    ):
                        # Only cells[:sp] are defined program state: cells
                        # past sp are dead residue of returned frames, and
                        # any live pointer is below sp — copying the prefix
                        # keeps snapshots proportional to the live stack,
                        # not the 64k-cell arena.
                        snap = Snapshot(
                            cfi,
                            bi,
                            self.cells[: self.sp],
                            self.sp,
                            self.cycles,
                            list(frame),
                            len(self.output_log),
                            self.inj_seen,
                            self.inj_hit,
                        )
                        if mine is not None:
                            stack.pop()
                        stack.append(snap)
                        mine = snap
                        if record is not None:
                            record[5] = snap
                        rec.telemetry.snapshots += 1
                        rec.last_snapshot_cycles = self.cycles
                        if rec.policy.snapshot_cost:
                            self.cycles += rec.policy.snapshot_cost
                    bi = fns[bi](frame, self)
                break
            except RollbackSignal as signal:
                if mine is None:
                    raise  # some enclosing frame owns the nearest snapshot
                reason = rec.on_detection(mine, self.cycles)
                if reason is not None:
                    stack.pop()
                    mine = None
                    if record is not None:
                        record[5] = None
                    if stack:
                        raise  # escalate to the enclosing region
                    raise DetectedByDuplication(
                        f"{signal.check_name} failed for "
                        f"{signal.instruction!r} at "
                        f"{signal.function}:{signal.block} "
                        f"(recovery escalated: {reason})",
                        check_name=signal.check_name,
                        function=signal.function,
                        block=signal.block,
                        instruction=signal.instruction,
                    ) from None
                # Roll back: nested frames were unwound by the signal, so
                # restoring memory, sp, depth, and this frame's registers
                # re-creates the snapshot instant exactly.  Cycles stay
                # monotonic — wasted work counts toward the hang budget.
                self.cells[: mine.sp] = mine.cells
                self.sp = mine.sp
                self.depth = depth
                self.ret = None
                del stack[stack.index(mine) + 1 :]
                del self.output_log[mine.out_len :]
                self.inj_seen = mine.inj_seen
                if self.inj_hit:
                    # Single-shot fault models: the corruption already
                    # happened once; the re-execution must not replay it
                    # (inj_seen restarts below inj_occ, so zeroing the
                    # occurrence disarms both the 1bit and once epilogues).
                    # Multi-shot injectors never reach this path —
                    # check_failed fail-stops instead of signalling.
                    self.inj_occ = 0
                if trk is not None:
                    del trk.frames[trk.frames.index(record) + 1 :]
                bi = mine.bi
        if mine is not None:
            stack.pop()
        if record is not None:
            trk.frames.pop()
        self.depth = depth - 1
        self.sp = sp0
        return self.ret

    # -- warm-start execution (snapshot-ladder trials) -----------------------------

    def resume_call(self) -> object:
        """Re-issue a suspended call (invoked from compiled resume blocks).

        Consumes the next frame of the warm-start resume chain, so nested
        suspended frames re-enter one another exactly as the original call
        instructions did.
        """
        k = self._resume_next
        self._resume_next = k + 1
        return self._call_tracked(0, (), _resume=self._resume_frames[k])

    def _resume_from(self, warm: WarmStart) -> object:
        """Restore a ladder rung and execute the suffix."""
        snap = warm.snapshot
        self.cells = list(snap.cells)
        self.sp = snap.sp
        self.cycles = snap.cycles
        self.output_log = list(snap.out_log)
        rec = self.rec
        if rec is not None:
            # Replay the golden run's telemetry position so a corrected
            # trial reports counts bit-identical to its cold twin.
            rec.telemetry.snapshots = snap.rec_snapshots
            rec.last_snapshot_cycles = snap.rec_last_cycles
        self._resume_frames = snap.frames
        self._resume_next = 1
        return self._call_tracked(0, (), _resume=snap.frames[0])

    def capture_ladder(
        self,
        entry: str = "main",
        args: Sequence = (),
        stride: int = 1,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> SnapshotLadder:
        """Run a golden execution, capturing a full-state snapshot ladder.

        Rungs are captured whenever the cycle counter crosses the next
        ``stride`` multiple, plus at region boundaries (function entries
        and loop headers from :mod:`repro.recover.regions`) at least
        ``stride // 4`` cycles apart — region boundaries are where frames
        are shallow and restores are cheap.  Pass the campaign's
        ``recovery`` policy so rung-embedded recovery state matches what
        cold trials would have at the same instant.
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.reset()
        self.budget = self.NO_BUDGET
        self.prof = [0] * self.cm.total_blocks
        plan = self._rec_plans.get(entry)
        if plan is None:
            plan = build_plan(self.cm, entry)
            self._rec_plans[entry] = plan
        if recovery is not None:
            self.rec = RecoveryState(recovery, plan)
        trk = _TrackState()
        trk.capturing = True
        trk.plan = plan
        trk.stride = stride
        trk.region_spacing = max(stride // 4, 1)
        trk.next_capture = stride
        trk.last_capture = 0
        trk.ladder = []
        self.trk = trk
        try:
            value = self.call(self.cm.get_function_index(entry), tuple(args))
        finally:
            self.trk = None
        return SnapshotLadder(trk.ladder, stride, self.cycles, value, entry)

    def _try_resync(self, trk: _TrackState) -> None:
        """Compare against the next golden rung once its cycle count is due.

        Rung cycle counts are strictly increasing and trial cycles are
        monotonic, so a single catch-up index suffices; each rung is
        compared at most once per trial (at exact cycle equality — any
        overshoot proves the trial's cycle path diverged at that rung and
        moves on).

        Every missed rendezvous after the first targeted rung counts as a
        failure; after ``trk.max_fails`` of them the trial gives up on
        resync entirely — ``self.trk`` detaches so every subsequent call
        dispatches through the lean loop.  Rungs passed before the flip
        fired (the catch-up on the first check) are not evidence of
        divergence and are skipped free of charge.
        """
        pts = trk.resync_pts
        i = trk.ri
        n = len(pts)
        c = self.cycles
        while i < n and pts[i].cycles < c:
            i += 1
        fail = False
        if i < n and pts[i].cycles == c:
            if self._resync_match(pts[i], trk):
                raise GoldenResync
            fail = True  # compared bit-for-bit and diverged: rung is spent
            i += 1
        elif trk.primed:
            fail = True  # the targeted rung was overshot post-flip
        trk.primed = True
        if i != trk.ri:
            trk.ri = i
            trk.rebuild_cand()
        if i >= n:
            # No rungs left: resync can never fire again, so detach and
            # let every dispatch loop finish at lean speed.
            trk.next_resync = self.NO_BUDGET
            self.trk = None
            return
        trk.next_resync = pts[i].cycles
        if fail:
            trk.fails += 1
            if trk.fails >= trk.max_fails:
                trk.next_resync = self.NO_BUDGET
                self.trk = None

    def _try_probe(self, trk: _TrackState, snap) -> None:
        """Full-state compare against one offset-probe candidate rung.

        Triggered by the register prefilter (the innermost frame's register
        file equals the rung's), with no cycle-equality requirement: a
        match at ``snap.cycles + delta`` finishes with the golden value and
        ``golden_cycles + delta`` — the suffix's cycle charges depend only
        on the matched state.  The hang budget is the one cycle-coupled
        observable, so a shifted finish that would cross it disqualifies
        the shortcut (the trial simply keeps executing, like its cold twin,
        toward the hang).
        """
        if self._resync_match(snap, trk):
            delta = self.cycles - snap.cycles
            if trk.golden_cycles + delta <= self.budget:
                raise GoldenResync(delta)
        trk.probe_dead.add(snap.index)
        trk.probe_fails += 1
        trk.rebuild_cand()

    def _resync_match(self, snap, trk: _TrackState) -> bool:
        """Bit-exact state comparison against one golden rung.

        Ordered cheapest-first: frame shapes, register files, output log,
        then the full cells image — a C-speed ``==`` reject followed by a
        type/sign-exact verification against the rung's precomputed
        signature (``==`` alone would equate ``1``/``1.0``/``True`` and
        ``0.0``/``-0.0``, which diverge downstream).
        """
        frames = trk.frames
        sframes = snap.frames
        if len(frames) != len(sframes) or self.sp != snap.sp:
            return False
        for r, wf in zip(frames, sframes):
            k = 0 if wf.call_k is None else wf.call_k + 1
            if r[0] != wf.cfi or r[1] != wf.bi or r[2] != k or r[4] != wf.sp0:
                return False
            if not exact_state_eq(r[3], wf.regs):
                return False
        if not exact_state_eq(self.output_log, snap.out_log):
            return False
        cells = self.cells
        if cells != snap.cells:
            return False
        suspects, types, zeros, signs = snap.state_signature()
        if suspects is None:
            if list(map(type, cells)) != types:
                return False
        elif [type(cells[i]) for i in suspects] != types:
            return False
        for idx, sign in zip(zeros, signs):
            if _copysign(1.0, cells[idx]) != sign:
                return False
        return True

    # -- memory helpers (runtime-internal accesses use the same trap rules) -------

    def alloc(self, count: int) -> int:
        addr = self.sp
        new_sp = addr + count
        if new_sp > len(self.cells):
            raise StackOverflow(f"stack exhausted allocating {count} cells")
        self.sp = new_sp
        return addr

    def checked_load(self, addr: int):
        if addr < 0:
            self.trap_mem(addr)
        try:
            v = self.cells[addr]
        except IndexError:
            self.trap_mem(addr)
        if v is None:
            self.trap_mem(addr)
        return v

    def checked_store(self, addr: int, value) -> None:
        if addr < 0:
            self.trap_mem(addr)
        try:
            old = self.cells[addr]
        except IndexError:
            self.trap_mem(addr)
        if old is None:
            self.trap_mem(addr)
        self.cells[addr] = value

    def read_global(self, name: str):
        """Read a global's current contents (scalar, or list for arrays)."""
        gv = self.module.get_global(name)
        base = self.cm.global_addr[name]
        if gv.value_type.is_array():
            return list(self.cells[base : base + gv.cell_count])
        return self.cells[base]

    # -- trap raisers (called from generated code) -----------------------------------

    def trap_mem(self, addr) -> None:
        raise MemoryFault(f"invalid address {addr}")

    def trap_div(self) -> None:
        raise ArithmeticFault("integer division by zero")

    def trap_fptosi(self) -> None:
        raise ArithmeticFault("float-to-int conversion out of range")

    def trap_unreachable(self) -> None:
        raise UnreachableExecuted("executed 'unreachable'")

    def hang(self) -> None:
        raise HangDetected(f"exceeded cycle budget {self.budget}")

    def check_failed(self, site: int = -1) -> None:
        """A duplication check diverged (called from generated code).

        ``site`` indexes ``cm.check_sites`` (baked in at compile time) and
        resolves to the failing check's function, block, and checked value.
        With recovery armed this raises the non-terminal
        :class:`RollbackSignal` instead of the fail-stop detection.
        """
        if 0 <= site < len(self.cm.check_sites):
            fn_name, block_name, check_name, value_name = self.cm.check_sites[site]
        else:
            fn_name = block_name = value_name = "?"
            check_name = "ipas.check"
        if self.rec is not None and self.inj_mode != "multi":
            raise RollbackSignal(fn_name, block_name, check_name, value_name)
        # Multi-shot injectors (intermittent/persistent models) corrupt
        # deterministically on re-execution, so a rollback could never
        # correct the run — escalate straight to the fail-stop detection.
        raise DetectedByDuplication(
            f"{check_name} failed for {value_name!r} at {fn_name}:{block_name}",
            check_name=check_name,
            function=fn_name,
            block=block_name,
            instruction=value_name,
        )

    def recovery_pin(self) -> None:
        """Forbid rollback past this instant (irreversible communication —
        an MPI collective — just executed; replaying it would desynchronise
        the job)."""
        if self.rec is not None:
            self.rec.pin()

    # -- I/O and MPI bindings (called from generated code) ------------------------------

    def io_print(self, value) -> None:
        if self.collect_output:
            self.output_log.append(value)

    def mpi_rank(self) -> int:
        return self.mpi.rank

    def mpi_size(self) -> int:
        return self.mpi.size

    def mpi_barrier(self) -> None:
        self.mpi.barrier(self)

    def mpi_allreduce_sum_f64(self, value):
        return self.mpi.allreduce_sum(self, value)

    def mpi_allreduce_sum_i64(self, value):
        return self.mpi.allreduce_sum(self, value)

    def mpi_allreduce_min_f64(self, value):
        return self.mpi.allreduce_min(self, value)

    def mpi_allreduce_max_f64(self, value):
        return self.mpi.allreduce_max(self, value)

    def mpi_allreduce_max_i64(self, value):
        return self.mpi.allreduce_max(self, value)

    def mpi_bcast_f64(self, value, root):
        return self.mpi.bcast(self, value, root)

    def mpi_bcast_i64(self, value, root):
        return self.mpi.bcast(self, value, root)

    def mpi_allreduce_sum_f64_array(self, addr, count) -> None:
        self.mpi.allreduce_array(self, addr, count)

    def mpi_allreduce_sum_i64_array(self, addr, count) -> None:
        self.mpi.allreduce_array(self, addr, count)

    def mpi_sendrecv_f64(self, send_addr, recv_addr, count, peer) -> None:
        self.mpi.sendrecv(self, send_addr, recv_addr, count, peer)


def run_module(
    module: Module,
    entry: str = "main",
    overrides: Optional[Dict[str, object]] = None,
    cycle_budget: Optional[int] = None,
) -> Tuple[RunResult, Interpreter]:
    """One-shot convenience: compile, run, and return (result, interpreter)."""
    interp = Interpreter(module)
    if overrides:
        for name, value in overrides.items():
            interp.set_global_override(name, value)
    result = interp.run(entry, cycle_budget=cycle_budget)
    return result, interp
