"""Run-time events of the IR interpreter.

The exception taxonomy mirrors the paper's outcome categories (§5.5):
*symptoms* (traps, hangs — recoverable by checkpoint/restart in a real HPC
system), and *detections* (an IPAS duplication check fired).  Masked runs and
SOC runs terminate normally and are told apart by the workload's
verification routine.
"""

from __future__ import annotations


class ExecutionError(Exception):
    """Base class for everything the interpreter can raise while running."""


class Trap(ExecutionError):
    """An architecture-level symptom: the program crashed observably."""


class MemoryFault(Trap):
    """Out-of-bounds, unmapped, or negative address access."""


class ArithmeticFault(Trap):
    """Integer division/remainder by zero, or float-to-int of NaN/Inf."""


class StackOverflow(Trap):
    """The simulated stack region or call depth was exhausted."""


class UnreachableExecuted(Trap):
    """Control reached an ``unreachable`` instruction."""


class HangDetected(ExecutionError):
    """The run exceeded its cycle budget.

    The paper treats "substantially longer execution time" as an observable
    symptom; the interpreter realises that with a configurable budget,
    normally a multiple of the fault-free run's cycle count.
    """


class DetectedByDuplication(ExecutionError):
    """An ``ipas.check.*`` intrinsic observed a divergence between an
    original instruction and its duplicate — the fault was caught.

    Carries the failing check's location (``function``, ``block``) and the
    name of the checked value (``instruction``) so detections are
    diagnosable without re-running under a debugger.
    """

    def __init__(
        self,
        message: str = "",
        check_name: str = "",
        function: str = "",
        block: str = "",
        instruction: str = "",
    ):
        super().__init__(message or "duplication check fired")
        self.check_name = check_name
        self.function = function
        self.block = block
        self.instruction = instruction


class MpiAbort(ExecutionError):
    """Another rank failed; the whole (simulated) MPI job aborts, which is
    an observable system-level symptom (paper §4.4.1)."""


class InterpreterBug(ExecutionError):
    """An internal inconsistency — never expected on valid IR."""
