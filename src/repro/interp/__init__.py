"""repro.interp — compiled IR interpreter, cost model, and trap semantics."""

from .costmodel import CostModel
from .compiler import CompiledModule, flip_f64, flip_int
from .errors import (
    ArithmeticFault,
    DetectedByDuplication,
    ExecutionError,
    HangDetected,
    InterpreterBug,
    MemoryFault,
    MpiAbort,
    StackOverflow,
    Trap,
    UnreachableExecuted,
)
from .interpreter import Interpreter, RunResult, SerialMpi, run_module

__all__ = [
    "CostModel", "CompiledModule", "flip_f64", "flip_int",
    "ArithmeticFault", "DetectedByDuplication", "ExecutionError",
    "HangDetected", "InterpreterBug", "MemoryFault", "MpiAbort",
    "StackOverflow", "Trap", "UnreachableExecuted",
    "Interpreter", "RunResult", "SerialMpi", "run_module",
]
