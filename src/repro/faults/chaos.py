"""Chaos harness: test-only failure injection for the campaign supervisor.

The supervisor's contract — campaign results bit-identical to an
undisturbed serial run, even while workers die and checkpoints tear — is
only worth stating if something exercises it.  :class:`ChaosMonkey` is
that something: armed inside worker processes (never in the parent), it
kills the worker or delays a chunk when it reaches a chosen trial index.

Cross-process coordination uses marker files in a state directory: a
"fire once" event touches its marker atomically (``O_CREAT | O_EXCL``),
so a *respawned* worker retrying the same trial does not re-fire and the
retried trial completes normally — which is exactly what keeps the
results bit-identical.  Events created with ``once=False`` fire every
time and model genuine poison trials (the quarantine path).

``corrupt_checkpoint`` garbles or truncates checkpoint lines, modelling
disk-level corruption and mid-write crashes for the recovery tests.

:class:`ServiceChaos` extends the harness to the campaign service
(:mod:`repro.service`): coordinator kills after durable commits, dropped
worker acks, delayed replies, and connection resets — the failure modes a
fleet-scale screening service actually sees between hosts.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, Iterable, Optional

#: exit code chaos-killed workers die with (distinguishable in waitpid).
CHAOS_EXIT_CODE = 17


def _fire_once_marker(state_dir: str, kind: str, index: int) -> bool:
    """Atomically claim the fire-once marker for event ``kind-index``.

    ``O_CREAT | O_EXCL`` makes the claim race-free across processes and
    durable across respawns/restarts sharing ``state_dir``: the first
    claimant fires, everyone after (including a resurrected coordinator
    or worker) sees ``False`` and stays healthy.
    """
    marker = os.path.join(state_dir, f"{kind}-{index}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class ChaosMonkey:
    """Deterministic failure injector, inherited by workers at fork.

    ``kill_at`` — trial indexes whose worker calls ``os._exit`` just
    before executing them.  ``hang_at`` — ``{index: seconds}`` sleeps
    injected before the trial, used to blow the supervisor's wall-clock
    deadline.  With ``once=True`` (default) each event fires a single
    time across all workers and respawns; ``once=False`` makes every
    attempt fail (a poison trial).
    """

    def __init__(
        self,
        kill_at: Iterable[int] = (),
        hang_at: Optional[Dict[int, float]] = None,
        once: bool = True,
        state_dir: Optional[str] = None,
    ):
        self.kill_at = frozenset(kill_at)
        self.hang_at = dict(hang_at or {})
        self.once = once
        self.state_dir = state_dir or tempfile.mkdtemp(prefix="ipas-chaos-")
        os.makedirs(self.state_dir, exist_ok=True)
        self._armed = False

    def arm(self) -> None:
        """Called by the worker main loop after fork.  The parent process
        never arms, so a serial fallback cannot chaos-kill the campaign."""
        self._armed = True

    def _fire_once(self, kind: str, index: int) -> bool:
        if not self.once:
            return True
        return _fire_once_marker(self.state_dir, kind, index)

    def before_trial(self, index: int) -> None:
        if not self._armed:
            return
        delay = self.hang_at.get(index)
        if delay is not None and self._fire_once("hang", index):
            time.sleep(delay)
        if index in self.kill_at and self._fire_once("kill", index):
            os._exit(CHAOS_EXIT_CODE)

    def __repr__(self) -> str:
        return (
            f"<ChaosMonkey kill={sorted(self.kill_at)} "
            f"hang={self.hang_at} once={self.once}>"
        )


def _parse_chaos_tokens(spec: str) -> Dict:
    """Worker chaos grammar → ``ChaosMonkey`` kwargs; raises ``ValueError``
    naming the first bad token.  Split from construction so the CLI can
    validate a ``--chaos`` string at parse time without building the
    injector (and its state directory)."""
    kill_at = set()
    hang_at: Dict[int, float] = {}
    once = True
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            kind, _, rest = part.partition("@")
            if kind == "kill":
                if rest.endswith("!"):
                    once = False
                    rest = rest[:-1]
                kill_at.add(int(rest))
            elif kind == "hang":
                index_text, _, seconds_text = rest.partition(":")
                hang_at[int(index_text)] = float(seconds_text)
            else:
                raise ValueError(kind)
        except (ValueError, TypeError):
            raise ValueError(
                f"bad chaos event {part!r}: expected kill@IDX[!] or hang@IDX:SECONDS"
            )
    return {"kill_at": kill_at, "hang_at": hang_at, "once": once}


def validate_chaos_spec(spec: str) -> None:
    """Raise ``ValueError`` naming the bad token if ``spec`` is malformed."""
    _parse_chaos_tokens(spec)


def parse_chaos_spec(spec: str, state_dir: Optional[str] = None) -> ChaosMonkey:
    """CLI chaos grammar: comma-separated events.

    * ``kill@IDX`` — kill the worker about to execute trial ``IDX`` (once);
    * ``kill@IDX!`` — kill on *every* attempt (poison trial → quarantine);
    * ``hang@IDX:SECONDS`` — sleep before trial ``IDX`` (once).

    ``kill@5,hang@9:2.5`` is a one-worker-killed-one-chunk-delayed run.
    A ``!`` on any kill event makes all kill events persistent.
    """
    return ChaosMonkey(state_dir=state_dir, **_parse_chaos_tokens(spec))


class ServiceChaos:
    """Failure injector for the campaign service (:mod:`repro.service`).

    Where :class:`ChaosMonkey` sabotages forked workers, this one
    sabotages the *coordinator* and the network between it and its
    workers:

    * ``kill_at_commit=N`` — the coordinator ``os._exit``\\ s right after
      its ``N``-th trial commit reaches the journal (crash-after-durable);
      the restart path must resume every in-flight job.
    * ``drop_ack_at={K, ...}`` — the ``K``-th worker ack is read off the
      socket and silently discarded: nothing commits, no reply is sent,
      the worker times out and its lease is requeued (lost-ack model).
    * ``delay_response_at={K: seconds}`` — the coordinator's ``K``-th
      reply is delayed (slow network / overloaded coordinator).
    * ``reset_at={K, ...}`` — the connection delivering the ``K``-th
      inbound message is aborted before any reply (connection reset).

    Ordinals are 1-based and counted per coordinator incarnation, but the
    fire-once markers live in ``state_dir`` (same mechanism as
    :class:`ChaosMonkey`), so a restarted coordinator pointed at the same
    state directory does not replay events that already fired — which is
    what lets a kill-restart test reuse one ``--chaos`` spec verbatim.
    """

    def __init__(
        self,
        kill_at_commit: Optional[int] = None,
        drop_ack_at: Iterable[int] = (),
        delay_response_at: Optional[Dict[int, float]] = None,
        reset_at: Iterable[int] = (),
        state_dir: Optional[str] = None,
    ):
        self.kill_at_commit = kill_at_commit
        self.drop_ack_at = frozenset(drop_ack_at)
        self.delay_response_at = dict(delay_response_at or {})
        self.reset_at = frozenset(reset_at)
        self.state_dir = state_dir or tempfile.mkdtemp(prefix="ipas-service-chaos-")
        os.makedirs(self.state_dir, exist_ok=True)
        self._messages = 0
        self._acks = 0
        self._replies = 0
        self._commits = 0

    def on_message(self) -> bool:
        """Count one inbound message; ``True`` → abort this connection."""
        self._messages += 1
        return self._messages in self.reset_at and _fire_once_marker(
            self.state_dir, "reset", self._messages
        )

    def on_ack(self) -> bool:
        """Count one worker ack; ``True`` → drop it silently (no commit,
        no reply)."""
        self._acks += 1
        return self._acks in self.drop_ack_at and _fire_once_marker(
            self.state_dir, "drop-ack", self._acks
        )

    def reply_delay(self) -> float:
        """Seconds to stall before sending the next reply (0 = none)."""
        self._replies += 1
        delay = self.delay_response_at.get(self._replies)
        if delay is not None and _fire_once_marker(
            self.state_dir, "delay", self._replies
        ):
            return delay
        return 0.0

    def on_commit(self) -> None:
        """Count one durably journaled trial commit; may never return.

        Called *after* the journal flush, so the kill models the worst
        honest crash: state durable, ack not yet sent.
        """
        self._commits += 1
        if (
            self.kill_at_commit is not None
            and self._commits >= self.kill_at_commit
            and _fire_once_marker(
                self.state_dir, "kill-coordinator", self.kill_at_commit
            )
        ):
            os._exit(CHAOS_EXIT_CODE)

    def __repr__(self) -> str:
        return (
            f"<ServiceChaos kill_at_commit={self.kill_at_commit} "
            f"drop_ack={sorted(self.drop_ack_at)} "
            f"delay={self.delay_response_at} reset={sorted(self.reset_at)}>"
        )


def _parse_service_chaos_tokens(spec: str) -> Dict:
    """Service chaos grammar → ``ServiceChaos`` kwargs; raises
    ``ValueError`` naming the first bad token."""
    kill_at_commit: Optional[int] = None
    drop_ack_at = set()
    delay_response_at: Dict[int, float] = {}
    reset_at = set()
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            kind, _, rest = part.partition("@")
            if kind == "kill":
                kill_at_commit = int(rest)
            elif kind == "drop-ack":
                drop_ack_at.add(int(rest))
            elif kind == "delay":
                ordinal_text, _, seconds_text = rest.partition(":")
                delay_response_at[int(ordinal_text)] = float(seconds_text)
            elif kind == "reset":
                reset_at.add(int(rest))
            else:
                raise ValueError(kind)
        except (ValueError, TypeError):
            raise ValueError(
                f"bad service chaos event {part!r}: expected kill@N, "
                f"drop-ack@N, delay@N:SECONDS, or reset@N"
            )
    return {
        "kill_at_commit": kill_at_commit,
        "drop_ack_at": drop_ack_at,
        "delay_response_at": delay_response_at,
        "reset_at": reset_at,
    }


def validate_service_chaos_spec(spec: str) -> None:
    """Raise ``ValueError`` naming the bad token if ``spec`` is malformed."""
    _parse_service_chaos_tokens(spec)


def parse_service_chaos_spec(
    spec: str, state_dir: Optional[str] = None
) -> ServiceChaos:
    """Coordinator chaos grammar: comma-separated events.

    * ``kill@N`` — kill the coordinator after its ``N``-th journaled commit;
    * ``drop-ack@N`` — silently discard the ``N``-th worker ack;
    * ``delay@N:SECONDS`` — stall the ``N``-th reply;
    * ``reset@N`` — abort the connection delivering the ``N``-th message.

    Pass a persistent ``state_dir`` (e.g. inside the journal directory) so
    a restarted coordinator with the same spec does not re-fire events.
    """
    return ServiceChaos(state_dir=state_dir, **_parse_service_chaos_tokens(spec))


def corrupt_checkpoint(path: str, mode: str = "garble", line: int = -1) -> None:
    """Damage a checkpoint file in place (tests and chaos drills).

    ``mode="garble"`` rewrites the body of the chosen line so its CRC no
    longer matches; ``mode="truncate"`` cuts the chosen line in half,
    modelling a crash mid-write.  ``line`` indexes the file's lines
    (negative counts from the end; the header is line 0).
    """
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError(f"{path} is empty")
    target = line if line >= 0 else len(lines) + line
    if not 0 <= target < len(lines):
        raise ValueError(f"line {line} out of range for {len(lines)} lines")
    if mode == "garble":
        # Nudge the first digit so the line stays valid JSON but its CRC
        # no longer matches — the silent-bit-flip case CRCs exist for.
        text = lines[target]
        for k, ch in enumerate(text):
            if ch.isdigit():
                text = text[:k] + str((int(ch) + 1) % 10) + text[k + 1 :]
                break
        lines[target] = text
    elif mode == "truncate":
        lines[target] = lines[target][: max(1, len(lines[target]) // 2)]
        lines = lines[: target + 1]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
        if mode != "truncate":
            fh.write("\n")
