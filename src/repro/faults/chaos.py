"""Chaos harness: test-only failure injection for the campaign supervisor.

The supervisor's contract — campaign results bit-identical to an
undisturbed serial run, even while workers die and checkpoints tear — is
only worth stating if something exercises it.  :class:`ChaosMonkey` is
that something: armed inside worker processes (never in the parent), it
kills the worker or delays a chunk when it reaches a chosen trial index.

Cross-process coordination uses marker files in a state directory: a
"fire once" event touches its marker atomically (``O_CREAT | O_EXCL``),
so a *respawned* worker retrying the same trial does not re-fire and the
retried trial completes normally — which is exactly what keeps the
results bit-identical.  Events created with ``once=False`` fire every
time and model genuine poison trials (the quarantine path).

``corrupt_checkpoint`` garbles or truncates checkpoint lines, modelling
disk-level corruption and mid-write crashes for the recovery tests.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, Iterable, Optional

#: exit code chaos-killed workers die with (distinguishable in waitpid).
CHAOS_EXIT_CODE = 17


class ChaosMonkey:
    """Deterministic failure injector, inherited by workers at fork.

    ``kill_at`` — trial indexes whose worker calls ``os._exit`` just
    before executing them.  ``hang_at`` — ``{index: seconds}`` sleeps
    injected before the trial, used to blow the supervisor's wall-clock
    deadline.  With ``once=True`` (default) each event fires a single
    time across all workers and respawns; ``once=False`` makes every
    attempt fail (a poison trial).
    """

    def __init__(
        self,
        kill_at: Iterable[int] = (),
        hang_at: Optional[Dict[int, float]] = None,
        once: bool = True,
        state_dir: Optional[str] = None,
    ):
        self.kill_at = frozenset(kill_at)
        self.hang_at = dict(hang_at or {})
        self.once = once
        self.state_dir = state_dir or tempfile.mkdtemp(prefix="ipas-chaos-")
        os.makedirs(self.state_dir, exist_ok=True)
        self._armed = False

    def arm(self) -> None:
        """Called by the worker main loop after fork.  The parent process
        never arms, so a serial fallback cannot chaos-kill the campaign."""
        self._armed = True

    def _fire_once(self, kind: str, index: int) -> bool:
        if not self.once:
            return True
        marker = os.path.join(self.state_dir, f"{kind}-{index}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def before_trial(self, index: int) -> None:
        if not self._armed:
            return
        delay = self.hang_at.get(index)
        if delay is not None and self._fire_once("hang", index):
            time.sleep(delay)
        if index in self.kill_at and self._fire_once("kill", index):
            os._exit(CHAOS_EXIT_CODE)

    def __repr__(self) -> str:
        return (
            f"<ChaosMonkey kill={sorted(self.kill_at)} "
            f"hang={self.hang_at} once={self.once}>"
        )


def parse_chaos_spec(spec: str, state_dir: Optional[str] = None) -> ChaosMonkey:
    """CLI chaos grammar: comma-separated events.

    * ``kill@IDX`` — kill the worker about to execute trial ``IDX`` (once);
    * ``kill@IDX!`` — kill on *every* attempt (poison trial → quarantine);
    * ``hang@IDX:SECONDS`` — sleep before trial ``IDX`` (once).

    ``kill@5,hang@9:2.5`` is a one-worker-killed-one-chunk-delayed run.
    A ``!`` on any kill event makes all kill events persistent.
    """
    kill_at = set()
    hang_at: Dict[int, float] = {}
    once = True
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            kind, _, rest = part.partition("@")
            if kind == "kill":
                if rest.endswith("!"):
                    once = False
                    rest = rest[:-1]
                kill_at.add(int(rest))
            elif kind == "hang":
                index_text, _, seconds_text = rest.partition(":")
                hang_at[int(index_text)] = float(seconds_text)
            else:
                raise ValueError(kind)
        except (ValueError, TypeError):
            raise ValueError(
                f"bad chaos event {part!r}: expected kill@IDX[!] or hang@IDX:SECONDS"
            )
    return ChaosMonkey(kill_at=kill_at, hang_at=hang_at, once=once, state_dir=state_dir)


def corrupt_checkpoint(path: str, mode: str = "garble", line: int = -1) -> None:
    """Damage a checkpoint file in place (tests and chaos drills).

    ``mode="garble"`` rewrites the body of the chosen line so its CRC no
    longer matches; ``mode="truncate"`` cuts the chosen line in half,
    modelling a crash mid-write.  ``line`` indexes the file's lines
    (negative counts from the end; the header is line 0).
    """
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError(f"{path} is empty")
    target = line if line >= 0 else len(lines) + line
    if not 0 <= target < len(lines):
        raise ValueError(f"line {line} out of range for {len(lines)} lines")
    if mode == "garble":
        # Nudge the first digit so the line stays valid JSON but its CRC
        # no longer matches — the silent-bit-flip case CRCs exist for.
        text = lines[target]
        for k, ch in enumerate(text):
            if ch.isdigit():
                text = text[:k] + str((int(ch) + 1) % 10) + text[k + 1 :]
                break
        lines[target] = text
    elif mode == "truncate":
        lines[target] = lines[target][: max(1, len(lines[target]) // 2)]
        lines = lines[: target + 1]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines))
        if mode != "truncate":
            fh.write("\n")
