"""repro.faults — FlipIt-style statistical fault injection."""

from .model import (
    FaultSite,
    injectable_instructions,
    is_injectable,
    result_bits,
)
from .models import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultModel,
    InjectionSpec,
    Intermittent,
    PatternFault,
    Persistent,
    PlannedFault,
    Transient1Bit,
    TransientMultiBit,
    get_fault_model,
    make_corrupter,
    parse_fault_model_spec,
    validate_fault_model_spec,
)
from .outcomes import (
    Outcome,
    OutcomeCounts,
    margin_of_error,
    parse_outcome,
    soc_reduction_percent,
)
from .campaign import Campaign, CampaignResult, OutputVerifier, TrialRecord
from .mpi_campaign import MpiCampaign, MpiCampaignResult, MpiTrialRecord
from .sanitizer import (
    CoverageViolation,
    module_is_protected,
    sanitize_records,
    sanitizer_enabled,
)
from .parallel import (
    CampaignCheckpoint,
    CampaignStats,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointWarning,
    campaign_fingerprint,
    entry_matches_site,
    fork_available,
    record_from_entry,
    resolve_jobs,
    run_campaign,
    trial_entry,
    verify_checkpoint,
)
from .supervisor import (
    PoolCollapse,
    SupervisorPolicy,
    TrialFailure,
    WorkerFailureError,
    backoff_delay,
    run_supervised,
)
from .chaos import (
    ChaosMonkey,
    ServiceChaos,
    parse_chaos_spec,
    parse_service_chaos_spec,
    validate_chaos_spec,
    validate_service_chaos_spec,
)

__all__ = [
    "FaultSite", "injectable_instructions", "is_injectable", "result_bits",
    "DEFAULT_FAULT_MODEL", "FAULT_MODELS", "FaultModel", "InjectionSpec",
    "Intermittent", "PatternFault", "Persistent", "PlannedFault",
    "Transient1Bit", "TransientMultiBit", "get_fault_model",
    "make_corrupter", "parse_fault_model_spec", "validate_fault_model_spec",
    "Outcome", "OutcomeCounts", "margin_of_error", "parse_outcome",
    "soc_reduction_percent",
    "Campaign", "CampaignResult", "OutputVerifier", "TrialRecord",
    "MpiCampaign", "MpiCampaignResult", "MpiTrialRecord",
    "CoverageViolation", "module_is_protected", "sanitize_records",
    "sanitizer_enabled",
    "CampaignCheckpoint", "CampaignStats", "campaign_fingerprint",
    "CheckpointError", "CheckpointMismatchError", "CheckpointWarning",
    "entry_matches_site", "record_from_entry", "trial_entry",
    "fork_available", "resolve_jobs", "run_campaign", "verify_checkpoint",
    "PoolCollapse", "SupervisorPolicy", "TrialFailure",
    "WorkerFailureError", "backoff_delay", "run_supervised",
    "ChaosMonkey", "ServiceChaos", "parse_chaos_spec",
    "parse_service_chaos_spec", "validate_chaos_spec",
    "validate_service_chaos_spec",
]
