"""Fault-tolerant supervision of campaign worker pools.

The parallel engine's workers execute untrusted-by-construction work: every
trial deliberately corrupts interpreter state, and at production scale the
harness itself — not the science — dominates failures (fleet-scale SDC
studies run millions of trials and treat injector robustness as a
first-class problem).  A ``multiprocessing.Pool`` cannot express the
recovery we need: one dead worker poisons the pool, and one hung worker
stalls the campaign forever.

This module owns the workers directly — one forked process and one duplex
pipe each — and supervises them:

* **Death detection.**  A worker that exits (crash, OOM kill, chaos) closes
  its pipe; the supervisor sees EOF, attributes the failure to the first
  unacknowledged trial of the in-flight chunk (results are acked in order,
  so that is the trial being executed), and requeues the rest.
* **Hang detection.**  Each dispatched chunk carries a wall-clock deadline
  (``trial_timeout`` × chunk length) on top of the interpreter's own cycle
  budget; a worker past its deadline is killed and handled like a death.
* **Respawn with backoff.**  Dead workers are replaced, up to
  ``max_respawns``, with capped exponential backoff while failures are
  consecutive.
* **Quarantine.**  A trial that repeatedly kills its worker is a *poison
  trial*: after ``max_retries`` re-attempts it is delivered as a structured
  :class:`TrialFailure` instead of aborting the campaign.
* **Graceful collapse.**  When the pool cannot be sustained (respawn budget
  exhausted, or ``on_worker_failure="serial"``), the supervisor drains what
  completed and raises :class:`PoolCollapse` carrying the undelivered
  items; the caller finishes them in-process.

Everything here is generic over ``fn(payload) -> result``: the statistical
campaign and the MPI campaign both run on it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from multiprocessing import connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: supported reactions to a worker death/hang.
ON_FAILURE_CHOICES = ("respawn", "serial", "abort")

DEFAULT_MAX_RETRIES = 2
DEFAULT_MAX_RESPAWNS = 8
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


def backoff_delay(
    consecutive_failures: int,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
) -> float:
    """Capped exponential backoff: ``base * 2^(n-1)``, clamped to ``cap``.

    Shared by worker respawn (here) and service lease requeue
    (:mod:`repro.service.coordinator`), so both retry ladders have one
    shape and one pair of knobs.
    """
    if consecutive_failures <= 0:
        return 0.0
    return min(base * (2 ** (consecutive_failures - 1)), cap)


class WorkerFailureError(RuntimeError):
    """A worker failed and the policy said to abort (or a trial raised)."""


class PoolCollapse(Exception):
    """The worker pool cannot continue; ``remaining`` holds the
    undelivered ``(index, payload)`` items for in-process completion."""

    def __init__(self, remaining: List[Tuple[int, Any]], reason: str):
        super().__init__(reason)
        self.remaining = remaining
        self.reason = reason


class TrialFailure:
    """Structured record of a harness-level trial failure (quarantine).

    Unlike the five scientific outcomes, this one says nothing about the
    program under injection — it says the *harness* could not complete the
    trial: every worker that attempted it died (``reason="crash"``) or
    blew its wall-clock deadline (``reason="hang"``).
    """

    __slots__ = ("reason", "attempts", "workers_lost", "detail")

    def __init__(self, reason: str, attempts: int, workers_lost: int, detail: str = ""):
        self.reason = reason
        self.attempts = attempts
        self.workers_lost = workers_lost
        self.detail = detail

    def as_dict(self) -> Dict:
        return {
            "reason": self.reason,
            "attempts": self.attempts,
            "workers_lost": self.workers_lost,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TrialFailure":
        return cls(
            data.get("reason", "unknown"),
            data.get("attempts", 0),
            data.get("workers_lost", 0),
            data.get("detail", ""),
        )

    def __repr__(self) -> str:
        return (
            f"<TrialFailure {self.reason} after {self.attempts} attempts "
            f"({self.workers_lost} workers lost)>"
        )


class SupervisorPolicy:
    """Knobs controlling worker recovery.

    ``trial_timeout`` — wall-clock seconds allowed per trial; a chunk's
    deadline is ``trial_timeout × len(chunk)``.  ``None`` disables hang
    detection (the interpreter's cycle budget still bounds *simulated*
    hangs).  ``max_retries`` — re-attempts granted to a trial whose worker
    died before it is quarantined.  ``on_worker_failure`` — ``"respawn"``
    (default), ``"serial"`` (collapse to in-process execution on first
    failure), or ``"abort"`` (raise).  ``max_respawns`` bounds replacement
    workers per campaign; ``backoff_base``/``backoff_cap`` shape the
    exponential respawn delay.
    """

    __slots__ = (
        "trial_timeout",
        "max_retries",
        "on_worker_failure",
        "max_respawns",
        "backoff_base",
        "backoff_cap",
    )

    def __init__(
        self,
        trial_timeout: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        on_worker_failure: str = "respawn",
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
    ):
        if on_worker_failure not in ON_FAILURE_CHOICES:
            raise ValueError(
                f"on_worker_failure must be one of {ON_FAILURE_CHOICES}, "
                f"got {on_worker_failure!r}"
            )
        if trial_timeout is not None and trial_timeout <= 0:
            raise ValueError(f"trial_timeout must be positive, got {trial_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        self.trial_timeout = trial_timeout
        self.max_retries = max_retries
        self.on_worker_failure = on_worker_failure
        self.max_respawns = max_respawns
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    @classmethod
    def from_env(cls) -> "SupervisorPolicy":
        """Defaults, overridable per process by ``IPAS_TRIAL_TIMEOUT``,
        ``IPAS_MAX_RETRIES``, and ``IPAS_ON_WORKER_FAILURE``."""
        timeout_env = os.environ.get("IPAS_TRIAL_TIMEOUT")
        retries_env = os.environ.get("IPAS_MAX_RETRIES")
        failure_env = os.environ.get("IPAS_ON_WORKER_FAILURE")
        try:
            trial_timeout = float(timeout_env) if timeout_env else None
        except ValueError:
            raise ValueError(
                f"IPAS_TRIAL_TIMEOUT must be a number, got {timeout_env!r}"
            )
        try:
            max_retries = int(retries_env) if retries_env else DEFAULT_MAX_RETRIES
        except ValueError:
            raise ValueError(f"IPAS_MAX_RETRIES must be an integer, got {retries_env!r}")
        return cls(
            trial_timeout=trial_timeout,
            max_retries=max_retries,
            on_worker_failure=failure_env or "respawn",
        )

    @classmethod
    def resolve(
        cls,
        policy: Optional["SupervisorPolicy"] = None,
        trial_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        on_worker_failure: Optional[str] = None,
    ) -> "SupervisorPolicy":
        """The effective policy: explicit kwargs over ``policy`` over env."""
        base = policy if policy is not None else cls.from_env()
        if trial_timeout is None and max_retries is None and on_worker_failure is None:
            return base
        return cls(
            trial_timeout=(
                trial_timeout if trial_timeout is not None else base.trial_timeout
            ),
            max_retries=max_retries if max_retries is not None else base.max_retries,
            on_worker_failure=(
                on_worker_failure
                if on_worker_failure is not None
                else base.on_worker_failure
            ),
            max_respawns=base.max_respawns,
            backoff_base=base.backoff_base,
            backoff_cap=base.backoff_cap,
        )

    def __repr__(self) -> str:
        return (
            f"<SupervisorPolicy timeout={self.trial_timeout} "
            f"retries={self.max_retries} on_failure={self.on_worker_failure!r} "
            f"respawns={self.max_respawns}>"
        )


# -- worker side ---------------------------------------------------------------


def _worker_main(conn, fn, chaos) -> None:
    """Worker loop: receive a chunk of ``(index, payload)``, ack each result
    in order, signal chunk completion, repeat until the ``None`` sentinel."""
    if chaos is not None:
        chaos.arm()
    try:
        while True:
            chunk = conn.recv()
            if chunk is None:
                return
            for index, payload in chunk:
                if chaos is not None:
                    chaos.before_trial(index)
                started = time.perf_counter()
                try:
                    result = fn(payload)
                except BaseException:
                    conn.send(("err", index, traceback.format_exc()))
                    return
                conn.send(("ok", index, result, time.perf_counter() - started))
            conn.send(("done",))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# -- supervisor side -----------------------------------------------------------


class _Worker:
    __slots__ = ("proc", "conn", "inflight", "deadline", "wid")

    def __init__(self, proc, conn, wid: int = 0):
        self.proc = proc
        self.conn = conn
        self.inflight: List[Tuple[int, Any]] = []
        self.deadline: Optional[float] = None
        #: stable lane id for result attribution (respawns get fresh ids,
        #: so a trace shows replacement workers as new lanes)
        self.wid = wid


def _bump(stats, attr: str, amount=1) -> None:
    if stats is not None:
        setattr(stats, attr, getattr(stats, attr) + amount)


def run_supervised(
    fn: Callable[[Any], Any],
    items: Sequence[Tuple[int, Any]],
    n_jobs: int,
    deliver: Callable[[int, Any, float], None],
    policy: Optional[SupervisorPolicy] = None,
    stats=None,
    chaos=None,
    chunk_size: Optional[int] = None,
) -> None:
    """Map ``fn`` over ``items`` with a supervised pool of forked workers.

    ``deliver(index, result, seconds, wid)`` fires in completion order,
    with ``wid`` the lane id of the worker that produced the result
    (respawned workers get fresh ids); a
    quarantined item delivers a :class:`TrialFailure` as its result.
    Payloads and results cross the pipe and must pickle; ``fn`` itself is
    inherited by fork and may close over arbitrary state.  Raises
    :class:`PoolCollapse` (with the undelivered items) when the pool cannot
    continue, or :class:`WorkerFailureError` under the ``"abort"`` policy.
    """
    policy = SupervisorPolicy.resolve(policy)
    if chunk_size is None:
        chunk_size = max(1, min(16, len(items) // (n_jobs * 2) or 1))
    ctx = multiprocessing.get_context("fork")

    pending: deque = deque(items)
    total = len(items)
    delivered = [0]
    retry_counts: Dict[int, int] = {}
    workers: Dict[Any, _Worker] = {}  # conn -> worker
    respawn_at: List[float] = []  # scheduled respawn times (monotonic)
    respawns_done = 0
    consecutive_failures = 0
    next_wid = [0]

    def spawn() -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn, fn, chaos), daemon=True
        )
        proc.start()
        child_conn.close()  # our copy; EOF must reach us when the child dies
        workers[parent_conn] = _Worker(proc, parent_conn, next_wid[0])
        next_wid[0] += 1

    def dispatch(worker: _Worker) -> None:
        if not pending:
            return
        chunk = [pending.popleft() for _ in range(min(chunk_size, len(pending)))]
        worker.inflight = list(chunk)
        if policy.trial_timeout is not None:
            worker.deadline = time.monotonic() + policy.trial_timeout * len(chunk)
        try:
            worker.conn.send(chunk)
        except (BrokenPipeError, OSError):
            # Died between chunks: no trial is to blame — requeue wholesale.
            worker.inflight = []
            pending.extendleft(reversed(chunk))
            worker_failed(worker, "crash")

    def reap(worker: _Worker, kill: bool) -> None:
        workers.pop(worker.conn, None)
        try:
            worker.conn.close()
        except OSError:
            pass
        if kill and worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)

    def drain_and_collect() -> List[Tuple[int, Any]]:
        """Deliver already-acked results, then gather every undelivered
        item (pending + in-flight) exactly once."""
        remaining: List[Tuple[int, Any]] = list(pending)
        pending.clear()
        for worker in list(workers.values()):
            try:
                while worker.conn.poll():
                    message = worker.conn.recv()
                    if message[0] == "ok":
                        _ack(worker, message)
            except (EOFError, OSError):
                pass
            remaining.extend(worker.inflight)
            worker.inflight = []
            reap(worker, kill=True)
        remaining.sort(key=lambda item: item[0])
        return remaining

    def _ack(worker: _Worker, message) -> None:
        nonlocal consecutive_failures
        _kind, index, result, seconds = message
        for k, (i, _payload) in enumerate(worker.inflight):
            if i == index:
                del worker.inflight[k]
                break
        consecutive_failures = 0
        deliver(index, result, seconds, worker.wid)
        delivered[0] += 1

    def worker_failed(worker: _Worker, reason: str) -> None:
        nonlocal consecutive_failures, respawns_done
        unacked = list(worker.inflight)
        worker.inflight = []
        reap(worker, kill=True)
        _bump(stats, "worker_deaths")
        if reason == "hang":
            _bump(stats, "hangs")
        if unacked:
            culprit_index, culprit_payload = unacked[0]
            survivors = unacked[1:]
            attempts = retry_counts.get(culprit_index, 0) + 1
            retry_counts[culprit_index] = attempts
            if attempts > policy.max_retries:
                _bump(stats, "quarantined")
                deliver(
                    culprit_index,
                    TrialFailure(
                        reason=reason,
                        attempts=attempts,
                        workers_lost=attempts,
                        detail=(
                            f"trial killed {attempts} workers "
                            f"(max_retries={policy.max_retries})"
                        ),
                    ),
                    0.0,
                    worker.wid,
                )
                delivered[0] += 1
            else:
                _bump(stats, "retries")
                pending.appendleft((culprit_index, culprit_payload))
            _bump(stats, "requeued", len(survivors))
            pending.extend(survivors)
        if policy.on_worker_failure == "abort":
            drain_and_collect()
            raise WorkerFailureError(f"worker {worker.proc.pid} failed ({reason})")
        if policy.on_worker_failure == "serial":
            raise PoolCollapse(drain_and_collect(), f"worker failed ({reason})")
        consecutive_failures += 1
        still_needed = delivered[0] < total
        if still_needed and respawns_done < policy.max_respawns:
            delay = backoff_delay(
                consecutive_failures, policy.backoff_base, policy.backoff_cap
            )
            _bump(stats, "backoff_seconds", delay)
            respawn_at.append(time.monotonic() + delay)
            respawns_done += 1

    n_workers = max(1, min(n_jobs, (total + chunk_size - 1) // chunk_size))
    try:
        for _ in range(n_workers):
            spawn()
        for worker in list(workers.values()):
            dispatch(worker)

        while delivered[0] < total:
            now = time.monotonic()
            # Respawns that have cleared their backoff.
            due = [t for t in respawn_at if t <= now]
            for t in due:
                respawn_at.remove(t)
                spawn()
                _bump(stats, "respawns")
            # Hand work to any idle worker (post-death requeues).
            for worker in list(workers.values()):
                if not worker.inflight and pending:
                    dispatch(worker)

            if not workers:
                if respawn_at:
                    time.sleep(max(0.0, min(respawn_at) - time.monotonic()))
                    continue
                raise PoolCollapse(
                    drain_and_collect(),
                    f"pool collapsed (respawn budget {policy.max_respawns} spent)",
                )

            deadlines = [w.deadline for w in workers.values() if w.deadline]
            wakeups = deadlines + respawn_at
            timeout = max(0.0, min(wakeups) - now) + 0.01 if wakeups else None
            ready = connection.wait(list(workers), timeout)

            for conn in ready:
                worker = workers.get(conn)
                if worker is None:
                    continue
                try:
                    while True:
                        message = conn.recv()
                        kind = message[0]
                        if kind == "ok":
                            _ack(worker, message)
                        elif kind == "done":
                            # inflight empties only through in-order acks; a
                            # "done" arriving while trials are unacked belongs
                            # to an earlier chunk (the idle loop can dispatch
                            # ahead of it) and must not clear them.
                            if not worker.inflight:
                                worker.deadline = None
                                dispatch(worker)
                        elif kind == "err":
                            raise WorkerFailureError(
                                f"trial {message[1]} raised in worker:\n{message[2]}"
                            )
                        if not conn.poll():
                            break
                except (EOFError, OSError):
                    worker_failed(worker, "crash")

            # Hung workers: past the chunk deadline with work still unacked.
            if policy.trial_timeout is not None:
                now = time.monotonic()
                for worker in list(workers.values()):
                    if (
                        worker.inflight
                        and worker.deadline is not None
                        and now > worker.deadline
                    ):
                        worker_failed(worker, "hang")

        for worker in list(workers.values()):
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            reap(worker, kill=False)
    finally:
        for worker in list(workers.values()):
            reap(worker, kill=True)
