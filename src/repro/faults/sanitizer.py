"""Static-vs-dynamic consistency sanitizer.

The coverage prover (:mod:`repro.analysis.coverage`) claims that only
``ESCAPES``-classified fault sites can produce a silent output corruption.
Every injection campaign is an experiment that can falsify that claim —
and with it the interpreter's check semantics, the injector's bit
addressing, or the duplication pass's shadow wiring.  This module turns
each campaign into that test: after a protected campaign's records are
assembled, any trial whose dynamic outcome is ``SOC`` but whose static
verdict is ``DETECTED`` or ``MASKED`` raises :class:`CoverageViolation`
naming the site, instead of silently polluting the training labels.

Enforcement is deliberately **parent-side** (after record assembly): in
parallel campaigns a worker exception is quarantined as
``TRIAL_FAILURE`` by the supervisor, which would swallow exactly the
signal the sanitizer exists to raise.

The sweep is lazy and cheap: only ``SOC`` records trigger a per-site
classification (memoised in the analysis), and unprotected modules — no
``ipas.check.*`` calls — are skipped entirely, since an all-``ESCAPES``
report can never fire.  Set ``IPAS_SANITIZE=0`` to disable (e.g. when
deliberately stress-testing the injector against a stale module).
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from ..analysis.coverage import CoverageAnalysis, Verdict
from ..ir.instructions import CallInst
from ..ir.intrinsics import is_check_intrinsic
from ..ir.module import Module
from .outcomes import Outcome


class CoverageViolation(AssertionError):
    """A dynamic SOC at a site the prover classified as covered.

    Raised with the full site identity so the discrepancy is reproducible:
    either the prover is unsound or the protection/injection machinery is
    broken — both are bugs, never campaign noise.
    """

    def __init__(self, record, verdict: Verdict):
        self.record = record
        self.verdict = verdict
        site = record.site
        inst = site.instruction
        fn = inst.function
        super().__init__(
            f"static/dynamic coverage violation: fault site "
            f"{fn.name if fn else '?'}/{inst.parent.name if inst.parent else '?'}"
            f"[{inst.name or inst.opcode}] occ={site.occurrence} "
            f"bit={site.bit} was classified {verdict.value.upper()} by the "
            f"coverage prover but the trial completed as SOC — the "
            f"interpreter, injector, or duplication pass is inconsistent "
            f"with the static model"
        )


def sanitizer_enabled() -> bool:
    return os.environ.get("IPAS_SANITIZE", "1") != "0"


def module_is_protected(module: Module) -> bool:
    """Whether the module carries any ``ipas.check.*`` call."""
    if getattr(module, "check_sites", None):
        return True
    for inst in module.instructions():
        if isinstance(inst, CallInst) and is_check_intrinsic(inst.callee):
            return True
    return False


def coverage_for(module: Module) -> Optional[CoverageAnalysis]:
    """A (cached-on-module) coverage analysis, or None when pointless."""
    if not module_is_protected(module):
        return None
    cached = getattr(module, "_coverage_sanitizer", None)
    if cached is None:
        cached = CoverageAnalysis(module)
        module._coverage_sanitizer = cached
    return cached


def sanitize_records(records: Iterable, module: Module, model=None) -> None:
    """Raise :class:`CoverageViolation` on the first impossible SOC record.

    ``records`` may contain ``None`` holes (skipped trials) and records of
    any campaign flavour — anything with ``.outcome`` and
    ``.site.instruction`` participates.

    ``model`` is the campaign's :class:`~repro.faults.models.FaultModel`:
    the prover's claim is stated for single transient bit-flips, so only
    models with ``sanitizer_covered`` are swept — a multi-bit or
    persistent SOC at a duplicated site falsifies nothing.
    """
    if not sanitizer_enabled():
        return
    if model is not None and not model.sanitizer_covered:
        return
    coverage = None
    for record in records:
        if record is None or record.outcome is not Outcome.SOC:
            continue
        if coverage is None:
            coverage = coverage_for(module)
            if coverage is None:
                return  # unprotected module: every SOC is legitimate
        verdict = coverage.classify(record.site.instruction).verdict
        if verdict is not Verdict.ESCAPES:
            raise CoverageViolation(record, verdict)
