"""Statistical fault injection campaigns (paper §4.1 and §5.4).

A :class:`Campaign` wraps one interpreter (one program + input) and drives
many single-fault runs:

1. a *golden* (fault-free) profiled run establishes per-instruction dynamic
   execution counts, the cycle baseline, and the reference outputs;
2. each trial samples a fault site uniformly over the *dynamic* stream of
   injectable instruction executions (weighted by execution count, as FlipIt
   does when injecting into random instruction instances), plus a uniform
   random bit of the result;
3. the run's outcome is classified per §5.5 using the interpreter status and
   the workload's verification routine.

Determinism: a campaign with the same seed replays identically — for any
``n_jobs``, because the trial list is pre-sampled serially before execution
(see :mod:`repro.faults.parallel`).
"""

from __future__ import annotations

import bisect
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..interp.interpreter import Interpreter, RunResult
from ..ir.module import Module
from ..recover.runtime import RecoveryPolicy, RecoveryTelemetry
from ..recover.warm import WarmStart
from .model import FaultSite, injectable_instructions, is_injectable, result_bits
from .models import get_fault_model
from .outcomes import Outcome, OutcomeCounts, parse_outcome


class OutputVerifier:
    """Protocol for workload verification routines (paper Table 2).

    ``capture`` snapshots whatever the routine needs from a golden run;
    ``check`` decides whether a completed faulty run's output is acceptable.
    The default implementation compares the module's ``output`` globals
    exactly — workloads override with tolerance/energy/sortedness checks.
    """

    def capture(self, interp: Interpreter):
        return {
            g.name: interp.read_global(g.name) for g in interp.module.output_globals()
        }

    def check(self, interp: Interpreter, golden) -> bool:
        for name, expected in golden.items():
            if interp.read_global(name) != expected:
                return False
        return True


class TrialRecord:
    """One fault-injection run.

    ``failure`` is normally ``None``; it carries a
    :class:`~repro.faults.supervisor.TrialFailure` when the outcome is
    ``TRIAL_FAILURE`` — the harness, not the program, failed the trial.

    ``recovery`` is a :class:`~repro.recover.RecoveryTelemetry` when the
    trial executed under the rollback runtime, else ``None``.

    ``warm`` is transient execution metadata from warm-start campaigns —
    a ``(rung_index, resynced, prefix_cycles_saved)`` triple, or ``None``
    for cold trials.  It describes *how* the trial ran, not what happened,
    so it is deliberately excluded from ``to_dict``/checkpoints: warm and
    cold campaigns produce byte-identical records on disk.
    """

    __slots__ = (
        "site", "outcome", "status", "cycles", "failure", "recovery", "warm",
    )

    def __init__(
        self,
        site: FaultSite,
        outcome: Outcome,
        status: str,
        cycles: int,
        failure=None,
        recovery: Optional[RecoveryTelemetry] = None,
        warm: Optional[Tuple[int, bool, int]] = None,
    ):
        self.site = site
        self.outcome = outcome
        self.status = status
        self.cycles = cycles
        self.failure = failure
        self.recovery = recovery
        self.warm = warm

    @property
    def instruction(self):
        return self.site.instruction

    def to_dict(self, site_index: Optional[int] = None) -> Dict:
        """JSON-compatible form (checkpoints, training-data export).

        The fault site is identified by its index into the module's stable
        ``injectable_instructions`` order; pass ``site_index`` when the
        caller has it precomputed (per-record lookup scans the module).
        """
        inst = self.site.instruction
        if site_index is None:
            fn = inst.function
            module = fn.parent if fn is not None else None
            if module is None:
                raise ValueError(f"{inst!r} is not attached to a module")
            for i, candidate in enumerate(injectable_instructions(module)):
                if candidate is inst:
                    site_index = i
                    break
            else:
                raise ValueError(f"{inst!r} is not an injectable instruction")
        fn = inst.function
        data = {
            "site_index": site_index,
            "opcode": inst.opcode,
            "function": fn.name if fn else None,
            "occurrence": self.site.occurrence,
            "bit": self.site.bit,
            "outcome": self.outcome.value,
            "status": self.status,
            "cycles": self.cycles,
        }
        if self.failure is not None:
            data["failure"] = self.failure.as_dict()
        if self.recovery is not None:
            data["recovery"] = self.recovery.as_dict()
        return data

    @classmethod
    def from_dict(
        cls, data: Dict, module_or_sites: Union[Module, Sequence]
    ) -> "TrialRecord":
        """Rebuild a record against a module (or a precomputed
        ``injectable_instructions`` list, for bulk restoration)."""
        if isinstance(module_or_sites, Module):
            eligible = injectable_instructions(module_or_sites)
        else:
            eligible = module_or_sites
        inst = eligible[data["site_index"]]
        if inst.opcode != data["opcode"]:
            raise ValueError(
                f"site {data['site_index']} is {inst.opcode!r}, "
                f"record says {data['opcode']!r}: module mismatch"
            )
        site = FaultSite(inst, data["occurrence"], data["bit"])
        failure = None
        if data.get("failure"):
            from .supervisor import TrialFailure

            failure = TrialFailure.from_dict(data["failure"])
        recovery = None
        if data.get("recovery"):
            recovery = RecoveryTelemetry.from_dict(data["recovery"])
        outcome = parse_outcome(
            data.get("outcome"), f"trial record for site {data['site_index']}"
        )
        return cls(
            site,
            outcome,
            data["status"],
            data["cycles"],
            failure=failure,
            recovery=recovery,
        )

    def __repr__(self) -> str:
        return f"<TrialRecord {self.outcome.value} at {self.site!r}>"


class CampaignResult:
    """All trials of one campaign plus aggregate counts."""

    def __init__(
        self,
        records: List[TrialRecord],
        counts: OutcomeCounts,
        golden_cycles: int,
        seed: int,
    ):
        self.records = records
        self.counts = counts
        self.golden_cycles = golden_cycles
        self.seed = seed
        #: CampaignStats when run through the parallel engine, else None
        self.stats = None

    def records_with_outcome(self, outcome: Outcome) -> List[TrialRecord]:
        return [r for r in self.records if r.outcome is outcome]

    def __len__(self) -> int:
        return len(self.records)


class Campaign:
    """Statistical fault injection against one interpreter instance."""

    #: default ladder density: auto stride targets about this many rungs.
    #: Dense ladders pay off twice — shorter restored prefixes *and* more
    #: rendezvous points for golden resync — and a rung is only a list of
    #: cell references, so capture stays cheap well past a hundred rungs.
    DEFAULT_LADDER_RUNGS = 128

    def __init__(
        self,
        interp: Interpreter,
        verifier: Optional[OutputVerifier] = None,
        entry: str = "main",
        budget_factor: float = 20.0,
        recovery: Optional[RecoveryPolicy] = None,
        warm_start: bool = False,
        snapshot_stride: Optional[int] = None,
        fault_model=None,
    ):
        self.interp = interp
        self.verifier = verifier or OutputVerifier()
        self.entry = entry
        self.budget_factor = budget_factor
        #: the pluggable corruption model (None = transient single-bit flip,
        #: byte-identical to the historical behavior). Accepts a FaultModel
        #: instance or a spec string like ``"transient-multibit:k=3"``.
        self.fault_model = get_fault_model(fault_model)
        #: RecoveryPolicy arming rollback re-execution for every trial (and
        #: the golden run, so snapshot cost lands in the cycle baseline);
        #: None keeps the historical fail-stop behavior byte-identical.
        self.recovery = recovery
        #: execute trials from golden-run ladder rungs (prefix memoization);
        #: outcome records are bit-identical to cold-start at any n_jobs.
        self.warm_start = warm_start
        #: cycles between ladder rungs (None = golden_cycles / 24)
        self.snapshot_stride = snapshot_stride
        self._golden_cycles: Optional[int] = None
        self._golden_capture = None
        self._ladder = None
        self._sites: List = []  # (instruction, dynamic_count)
        self._cumulative: List[int] = []
        self._total_weight = 0

    # -- golden run --------------------------------------------------------------

    def prepare(self) -> None:
        """Run the golden profiled execution and index the fault space."""
        if self._golden_cycles is not None:
            return
        result = self.interp.run(self.entry, profile=True, recovery=self.recovery)
        if result.status != "ok":
            raise RuntimeError(
                f"golden run failed ({result.status}): {result.error}"
            )
        self._golden_cycles = result.cycles
        self._golden_capture = self.verifier.capture(self.interp)
        assert result.profile is not None
        cm = self.interp.cm
        cumulative: List[int] = []
        total = 0
        sites = []
        for inst in injectable_instructions(self.interp.module):
            gid = cm.block_gids.get(id(inst.parent))
            if gid is None:
                continue
            count = result.profile[gid]
            if count <= 0:
                continue
            sites.append((inst, count))
            total += count
            cumulative.append(total)
        if not sites:
            raise RuntimeError("program executed no injectable instructions")
        self._sites = sites
        self._cumulative = cumulative
        self._total_weight = total

    @property
    def golden_cycles(self) -> int:
        self.prepare()
        assert self._golden_cycles is not None
        return self._golden_cycles

    @property
    def golden_capture(self):
        self.prepare()
        return self._golden_capture

    @property
    def total_dynamic_injectable(self) -> int:
        """Size of the dynamic fault population (for margin-of-error math)."""
        self.prepare()
        return self._total_weight

    @property
    def cycle_budget(self) -> int:
        return int(self.budget_factor * self.golden_cycles) + 10_000

    # -- warm-start ladder --------------------------------------------------------

    @property
    def effective_stride(self) -> int:
        """The rung spacing actually used (resolves the auto default)."""
        if self.snapshot_stride is not None:
            return max(int(self.snapshot_stride), 1)
        return max(self.golden_cycles // self.DEFAULT_LADDER_RUNGS, 1)

    def ensure_ladder(self):
        """Capture (once) the golden snapshot ladder for warm-start trials.

        Called by the parallel engine in the parent before forking, so
        every worker inherits the same rungs copy-on-write.
        """
        if self._ladder is None:
            self.prepare()
            ladder = self.interp.capture_ladder(
                self.entry,
                stride=self.effective_stride,
                recovery=self.recovery,
            )
            if ladder.golden_cycles != self._golden_cycles:
                raise RuntimeError(
                    f"ladder capture diverged from the golden run "
                    f"({ladder.golden_cycles} vs {self._golden_cycles} cycles)"
                )
            self._ladder = ladder
        return self._ladder

    # -- sampling -------------------------------------------------------------------

    def sample_site(self, rng: random.Random) -> FaultSite:
        """One fault site, uniform over dynamic injectable executions."""
        self.prepare()
        pick = rng.randrange(self._total_weight)
        index = bisect.bisect_right(self._cumulative, pick)
        inst, count = self._sites[index]
        occurrence = rng.randint(1, count)
        bit = rng.randrange(result_bits(inst))
        return FaultSite(inst, occurrence, bit)

    def fingerprint(self, n_trials: int, seed: int = 0) -> str:
        """Stable identity of this campaign's trial plan — the checkpoint
        resume key and the service job id (see
        :func:`repro.faults.parallel.campaign_fingerprint`)."""
        from .parallel import campaign_fingerprint

        return campaign_fingerprint(self, n_trials, seed)

    def sample_trials(self, n_trials: int, seed: int = 0) -> List[FaultSite]:
        """The full trial plan, pre-sampled serially from the seed.

        This is the determinism anchor of the parallel engine: sampling
        consumes the RNG exactly as the historical sample-then-run loop did,
        so the planned sites are bit-identical for every worker count.
        """
        self.prepare()
        rng = random.Random(seed)
        model = self.fault_model
        return [model.sample_site(self, rng) for _ in range(n_trials)]

    # -- execution ---------------------------------------------------------------------

    def run_site(self, site: FaultSite) -> TrialRecord:
        """Execute one injection run and classify its outcome."""
        self.prepare()
        model = self.fault_model
        warm = None
        if self.warm_start:
            ladder = self.ensure_ladder()
            # Multi-shot models may fire before the planned occurrence:
            # plan the rung against the *first* possible firing so the
            # restored prefix never skips a corruption.
            first = model.first_occurrence(site)
            plan_at = (
                site
                if first == site.occurrence
                else FaultSite(site.instruction, first, site.bit)
            )
            snap, inj_seen = ladder.plan_site(self.interp.cm, plan_at)
            warm = WarmStart(
                ladder,
                snap,
                inj_seen=inj_seen,
                # Resync must not shortcut recovery trials: their rollback
                # telemetry has to replay in full to stay bit-identical.
                # Multi-shot faults keep corrupting after the first firing,
                # so their tails can never rendezvous with the golden run.
                resync=self.recovery is None and not model.multi_shot,
            )
        result = self.interp.run(
            self.entry,
            injection=model.injection_for(site),
            cycle_budget=self.cycle_budget,
            recovery=self.recovery,
            warm=warm,
        )
        outcome = self.classify(result)
        warm_info = None
        if warm is not None:
            warm_info = (
                result.warm_index,
                result.resynced,
                warm.snapshot.cycles if warm.snapshot is not None else 0,
            )
        return TrialRecord(
            site,
            outcome,
            result.status,
            result.cycles,
            recovery=result.recovery,
            warm=warm_info,
        )

    def classify(self, result: RunResult) -> Outcome:
        if result.status in ("trap", "abort"):
            return Outcome.CRASH
        if result.status == "hang":
            return Outcome.HANG
        if result.status == "detected":
            return Outcome.DETECTED
        if result.resynced:
            # The run's state re-converged bit-exactly with the golden run
            # after the flip fired, so its outputs equal the golden outputs
            # — any verifier accepts its own golden capture.
            return Outcome.MASKED
        if self.verifier.check(self.interp, self._golden_capture):
            # A verified-correct completion that needed at least one
            # rollback is a detection the recovery runtime turned into a
            # corrected run; without rollbacks it is ordinary masking.
            if result.recovery is not None and result.recovery.rollbacks:
                return Outcome.CORRECTED
            return Outcome.MASKED
        return Outcome.SOC

    def run(
        self,
        n_trials: int,
        seed: int = 0,
        n_jobs: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        progress: bool = False,
        on_trial: Optional[Callable] = None,
        trial_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        on_worker_failure: Optional[str] = None,
        supervision=None,
        strict_resume: bool = False,
        chaos=None,
        obs=None,
    ) -> CampaignResult:
        """The whole campaign: ``n_trials`` independent single-fault runs.

        ``n_jobs`` shards trials over persistent worker processes (default:
        ``IPAS_JOBS`` env, else in-process); results are bit-identical for
        every worker count, including under worker failure — dead or hung
        workers are requeued and respawned per the supervision policy
        (``trial_timeout``/``max_retries``/``on_worker_failure``, or a full
        ``supervision=SupervisorPolicy(...)``).  ``checkpoint_path``
        flushes completed trials to a resumable, CRC-protected JSONL file;
        ``progress`` prints live throughput to stderr;
        ``on_trial(index, record)`` fires per completed trial.
        ``obs`` (a :class:`repro.obs.Observation`) arms trace emission and
        metrics export; ``None`` keeps the observability layer entirely
        out of the execution path.
        """
        from .parallel import run_campaign

        return run_campaign(
            self,
            n_trials,
            seed=seed,
            n_jobs=n_jobs,
            checkpoint_path=checkpoint_path,
            progress=progress,
            on_trial=on_trial,
            trial_timeout=trial_timeout,
            max_retries=max_retries,
            on_worker_failure=on_worker_failure,
            supervision=supervision,
            strict_resume=strict_resume,
            chaos=chaos,
            obs=obs,
        )
