"""Statistical fault injection into parallel (simulated MPI) jobs.

The paper's campaigns inject into "random instances of an instruction, bits
within a byte, and MPI ranks" (§4.1, FlipIt) but evaluate coverage on
single-process runs (§6); this module closes that loop as an extension:
single-bit faults land in a *random rank* of a multi-rank job, and the
outcome taxonomy is applied at **job level** — one rank's detection or
crash aborts the whole job (§4.4.1), so symptoms and detections propagate.

Site sampling is exact per rank: a profiled job run records every rank's
block-execution counts, so (rank, instruction, occurrence, bit) is sampled
uniformly over the union of all ranks' dynamic injectable executions.
"""

from __future__ import annotations

import bisect
import random
import time
import warnings
from typing import Callable, List, Optional, Tuple

from ..interp.interpreter import Interpreter
from ..parallel.mpi import JobResult, MpiJob
from ..recover.runtime import RecoveryPolicy, RecoveryTelemetry
from .campaign import OutputVerifier
from .model import FaultSite, injectable_instructions, result_bits
from .models import get_fault_model
from .outcomes import Outcome, OutcomeCounts
from .sanitizer import sanitize_records


def _aggregate_recovery(result: JobResult) -> Optional[RecoveryTelemetry]:
    """Sum per-rank recovery telemetry into one job-level record."""
    total: Optional[RecoveryTelemetry] = None
    for rank_result in result.rank_results:
        telemetry = getattr(rank_result, "recovery", None)
        if telemetry is None:
            continue
        if total is None:
            total = RecoveryTelemetry()
        total.snapshots += telemetry.snapshots
        total.rollbacks += telemetry.rollbacks
        total.reexec_cycles += telemetry.reexec_cycles
        total.escalations += telemetry.escalations
        if telemetry.max_rollback_cycles > total.max_rollback_cycles:
            total.max_rollback_cycles = telemetry.max_rollback_cycles
        if telemetry.escalation_reason:
            total.escalation_reason = telemetry.escalation_reason
    return total


class MpiTrialRecord:
    """One parallel fault-injection run.

    ``recovery`` aggregates every rank's rollback telemetry when the job
    ran under the recovery runtime, else ``None``.
    """

    __slots__ = ("site", "rank", "outcome", "job_status", "recovery")

    def __init__(
        self,
        site: FaultSite,
        rank: int,
        outcome: Outcome,
        job_status: str,
        recovery: Optional[RecoveryTelemetry] = None,
    ):
        self.site = site
        self.rank = rank
        self.outcome = outcome
        self.job_status = job_status
        self.recovery = recovery

    def __repr__(self) -> str:
        return f"<MpiTrialRecord {self.outcome.value} rank={self.rank}>"


class MpiCampaignResult:
    def __init__(self, records: List[MpiTrialRecord], counts: OutcomeCounts, golden_cycles: int):
        self.records = records
        self.counts = counts
        self.golden_cycles = golden_cycles
        #: CampaignStats when run through the supervised pool, else None
        self.stats = None

    def __len__(self) -> int:
        return len(self.records)


class MpiCampaign:
    """Fault injection against one MpiJob (module + input + rank count)."""

    def __init__(
        self,
        job: MpiJob,
        verifier: Optional[OutputVerifier] = None,
        entry: str = "main",
        budget_factor: float = 10.0,
        recovery: Optional[RecoveryPolicy] = None,
        warm_start: bool = False,
        fault_model=None,
    ):
        model = get_fault_model(fault_model)
        if model.name != "transient-1bit":
            # The MPI sampler replicates the single-process RNG order
            # inline; non-default models would need their planning threaded
            # through the rank dimension too.  Refuse rather than silently
            # running the wrong corruption.
            raise NotImplementedError(
                f"MpiCampaign only supports the default transient-1bit "
                f"fault model, got {model.spec()!r}"
            )
        self.fault_model = model
        if warm_start:
            # A multi-rank job has no consistent cross-rank snapshot: rank
            # threads rendezvous inside collectives, so a cycle-stride ladder
            # captured on one rank is meaningless to the others.  Degrade
            # loudly rather than silently changing semantics.
            warnings.warn(
                "warm-start snapshot ladders are single-process only; "
                "MpiCampaign runs trials cold",
                RuntimeWarning,
                stacklevel=2,
            )
        self.warm_start = False
        self.job = job
        self.verifier = verifier or OutputVerifier()
        self.entry = entry
        self.budget_factor = budget_factor
        #: RecoveryPolicy arming per-rank rollback re-execution; snapshots
        #: are pinned at every collective, so rollback never replays an
        #: exchange (see :meth:`repro.parallel.mpi.RankMpi._exchange`).
        self.recovery = recovery
        self._golden_cycles: Optional[int] = None
        self._golden_capture = None
        # flattened dynamic population: (rank, instruction, count)
        self._sites: List[Tuple[int, object, int]] = []
        self._cumulative: List[int] = []
        self._total_weight = 0

    def prepare(self) -> None:
        if self._golden_cycles is not None:
            return
        result = self.job.run(self.entry, profile=True, recovery=self.recovery)
        if result.status != "ok":
            raise RuntimeError(f"golden parallel run failed: {result.status}")
        self._golden_cycles = result.job_cycles
        self._golden_capture = self.verifier.capture(self.job.interpreters[0])
        cm = self.job.cm
        eligible = injectable_instructions(cm.module)
        total = 0
        for rank, rank_result in enumerate(result.rank_results):
            assert rank_result is not None and rank_result.profile is not None
            profile = rank_result.profile
            for inst in eligible:
                gid = cm.block_gids.get(id(inst.parent))
                if gid is None:
                    continue
                count = profile[gid]
                if count > 0:
                    self._sites.append((rank, inst, count))
                    total += count
                    self._cumulative.append(total)
        if not self._sites:
            raise RuntimeError("no injectable dynamic instructions in any rank")
        self._total_weight = total

    @property
    def golden_cycles(self) -> int:
        self.prepare()
        assert self._golden_cycles is not None
        return self._golden_cycles

    @property
    def cycle_budget(self) -> int:
        return int(self.budget_factor * self.golden_cycles) + 10_000

    def sample(self, rng: random.Random) -> Tuple[FaultSite, int]:
        """A (site, rank) pair uniform over all ranks' dynamic executions."""
        self.prepare()
        pick = rng.randrange(self._total_weight)
        index = bisect.bisect_right(self._cumulative, pick)
        rank, inst, count = self._sites[index]
        occurrence = rng.randint(1, count)
        bit = rng.randrange(result_bits(inst))
        return FaultSite(inst, occurrence, bit), rank

    def run_site(self, site: FaultSite, rank: int) -> MpiTrialRecord:
        self.prepare()
        result = self.job.run(
            self.entry,
            injection=(site.as_injection(), rank),
            cycle_budget=self.cycle_budget,
            recovery=self.recovery,
        )
        outcome = self.classify(result)
        return MpiTrialRecord(
            site, rank, outcome, result.status, recovery=_aggregate_recovery(result)
        )

    def classify(self, result: JobResult) -> Outcome:
        if result.status == "detected":
            return Outcome.DETECTED
        if result.status in ("trap", "abort"):
            return Outcome.CRASH
        if result.status == "hang":
            return Outcome.HANG
        # Job completed: verify rank 0's outputs (all ranks agree in the
        # zero-and-allreduce workload pattern; corrupted ranks diverge and
        # the divergence lands in the assembled outputs).
        if self.verifier.check(self.job.interpreters[0], self._golden_capture):
            recovery = _aggregate_recovery(result)
            if recovery is not None and recovery.rollbacks:
                return Outcome.CORRECTED
            return Outcome.MASKED
        return Outcome.SOC

    def sample_trials(
        self, n_trials: int, seed: int = 0
    ) -> List[Tuple[FaultSite, int]]:
        """The full (site, rank) plan, pre-sampled serially from the seed."""
        self.prepare()
        rng = random.Random(seed)
        return [self.sample(rng) for _ in range(n_trials)]

    def run(
        self,
        n_trials: int,
        seed: int = 0,
        n_jobs: Optional[int] = None,
        trial_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        on_worker_failure: Optional[str] = None,
        supervision=None,
        chaos=None,
        obs=None,
    ) -> MpiCampaignResult:
        from .parallel import CampaignStats, fork_available, resolve_jobs
        from .supervisor import (
            PoolCollapse,
            SupervisorPolicy,
            TrialFailure,
            run_supervised,
        )

        self.prepare()
        trials = self.sample_trials(n_trials, seed)
        n_jobs = resolve_jobs(n_jobs)
        policy = SupervisorPolicy.resolve(
            supervision,
            trial_timeout=trial_timeout,
            max_retries=max_retries,
            on_worker_failure=on_worker_failure,
        )
        # obs (repro.obs.Observation) shares its metrics registry with the
        # stats and receives per-trial trace spans, exactly like the
        # single-process engine.
        tracer = obs.open_trace() if obs is not None else None
        stats = CampaignStats(
            n_trials, n_jobs,
            registry=obs.registry if obs is not None else None,
        )

        def run_one(i):
            site, rank = trials[i]
            record = self.run_site(site, rank)
            # Only plain values cross the process boundary; the parent
            # rebuilds records against its own pre-sampled (site, rank) plan.
            rec_wire = (
                record.recovery.as_wire() if record.recovery is not None else None
            )
            return record.outcome.value, record.job_status, rec_wire

        records: List[Optional[MpiTrialRecord]] = [None] * n_trials
        counts = OutcomeCounts()

        def deliver(i, result, seconds, wid=0):
            site, rank = trials[i]
            if isinstance(result, TrialFailure):
                record = MpiTrialRecord(site, rank, Outcome.TRIAL_FAILURE, "harness")
            else:
                outcome_value, job_status, rec_wire = result
                recovery = (
                    RecoveryTelemetry.from_wire(rec_wire)
                    if rec_wire is not None
                    else None
                )
                record = MpiTrialRecord(
                    site, rank, Outcome(outcome_value), job_status, recovery=recovery
                )
            records[i] = record
            counts.record(record.outcome)
            stats.record(record.outcome, seconds, record.recovery)
            if tracer is not None:
                tracer.trial(
                    i, wid, seconds, record.outcome.value,
                    args={
                        "trial": i,
                        "rank": rank,
                        "status": record.job_status,
                        "bit": site.bit,
                    },
                )

        perf = time.perf_counter
        pending = list(range(n_trials))
        try:
            if n_jobs <= 1 or n_trials <= 1 or not fork_available():
                for i in pending:
                    t0 = perf()
                    deliver(i, run_one(i), perf() - t0)
            else:
                try:
                    run_supervised(
                        run_one,
                        [(i, i) for i in pending],
                        n_jobs,
                        deliver,
                        policy=policy,
                        stats=stats,
                        chaos=chaos,
                    )
                except PoolCollapse as collapse:
                    stats.serial_fallback = True
                    for i, payload in collapse.remaining:
                        t0 = perf()
                        deliver(i, run_one(payload), perf() - t0)
        finally:
            stats.finish()
            if obs is not None:
                obs.close()
        # Same parent-side consistency sweep as the serial/parallel engine:
        # an SOC at a statically covered site is a harness bug, not data.
        sanitize_records(records, self.job.cm.module)
        result = MpiCampaignResult(records, counts, self.golden_cycles)
        result.stats = stats
        return result
