"""Outcome taxonomy for fault-injection runs (paper Fig. 2 and §5.5).

* ``CRASH`` / ``HANG`` — observable symptoms; a real HPC system recovers
  these with checkpoint/restart, so they do not corrupt science.
* ``DETECTED`` — an inserted duplication check caught the fault.
* ``MASKED`` — the run completed and the verification routine accepted the
  output: the error was absorbed by the algorithm.
* ``SOC`` — silent output corruption: completed, but the output is wrong.
* ``TRIAL_FAILURE`` — a harness failure, not a program outcome: the trial
  was quarantined because every worker that attempted it died or hung (see
  :mod:`repro.faults.supervisor`).  Never occurs in an undisturbed run.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Dict, Iterable


class Outcome(str, Enum):
    CRASH = "crash"
    HANG = "hang"
    DETECTED = "detected"
    MASKED = "masked"
    SOC = "soc"
    TRIAL_FAILURE = "trial_failure"

    @property
    def is_symptom(self) -> bool:
        return self in (Outcome.CRASH, Outcome.HANG)


class OutcomeCounts:
    """Aggregated outcome proportions of a campaign (one Fig. 5 bar)."""

    def __init__(self):
        self.counts: Dict[Outcome, int] = {o: 0 for o in Outcome}

    def record(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, outcome: Outcome) -> float:
        total = self.total
        return self.counts[outcome] / total if total else 0.0

    @property
    def symptom_fraction(self) -> float:
        return self.fraction(Outcome.CRASH) + self.fraction(Outcome.HANG)

    @property
    def soc_fraction(self) -> float:
        return self.fraction(Outcome.SOC)

    @property
    def detected_fraction(self) -> float:
        return self.fraction(Outcome.DETECTED)

    @property
    def masked_fraction(self) -> float:
        return self.fraction(Outcome.MASKED)

    def _present(self) -> Iterable[Outcome]:
        """The scientific outcomes, plus TRIAL_FAILURE only when nonzero.

        Quarantined trials are a harness artifact; undisturbed campaigns
        keep the five-outcome schema of the paper's figures.
        """
        for o in Outcome:
            if o is not Outcome.TRIAL_FAILURE or self.counts[o]:
                yield o

    def as_dict(self) -> Dict[str, float]:
        return {o.value: self.fraction(o) for o in self._present()}

    def __repr__(self) -> str:
        parts = ", ".join(f"{o.value}={self.counts[o]}" for o in self._present())
        return f"<OutcomeCounts {parts}>"


def soc_reduction_percent(unprotected_soc: float, protected_soc: float) -> float:
    """Percentage SOC reduction relative to the unprotected case (Fig. 6)."""
    if unprotected_soc <= 0:
        return 0.0
    return 100.0 * (1.0 - protected_soc / unprotected_soc)


def margin_of_error(fraction: float, n: int, confidence: float = 0.95) -> float:
    """Normal-approximation margin of error for a proportion (paper §5.4).

    The paper reports margins of 0.68%–1.34% for 1,024-run campaigns at 95%
    confidence; this reproduces that calculation for our campaign sizes.
    """
    if n <= 0:
        return 1.0
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence}")
    return z * math.sqrt(fraction * (1.0 - fraction) / n)
