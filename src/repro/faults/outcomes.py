"""Outcome taxonomy for fault-injection runs (paper Fig. 2 and §5.5).

* ``CRASH`` / ``HANG`` — observable symptoms; a real HPC system recovers
  these with checkpoint/restart, so they do not corrupt science.
* ``DETECTED`` — an inserted duplication check caught the fault and the
  run fail-stopped (the paper's terminal detection outcome).
* ``CORRECTED`` — an extension beyond the paper: a duplication check caught
  the fault and the :mod:`repro.recover` runtime rolled the run back to a
  region snapshot and re-executed it to a verified-correct completion.
  Never occurs unless recovery was explicitly enabled.
* ``MASKED`` — the run completed and the verification routine accepted the
  output: the error was absorbed by the algorithm.
* ``SOC`` — silent output corruption: completed, but the output is wrong.
* ``TRIAL_FAILURE`` — a harness failure, not a program outcome: the trial
  was quarantined because every worker that attempted it died or hung (see
  :mod:`repro.faults.supervisor`).  Never occurs in an undisturbed run.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Dict, Iterable


class Outcome(str, Enum):
    CRASH = "crash"
    HANG = "hang"
    DETECTED = "detected"
    CORRECTED = "corrected"
    MASKED = "masked"
    SOC = "soc"
    TRIAL_FAILURE = "trial_failure"

    @property
    def is_symptom(self) -> bool:
        return self in (Outcome.CRASH, Outcome.HANG)


#: outcomes hidden from serialized counts when zero, so runs that never
#: produce them keep the paper's five-outcome schema
_ELIDE_WHEN_ZERO = (Outcome.CORRECTED, Outcome.TRIAL_FAILURE)


def parse_outcome(value, context: str = "") -> Outcome:
    """``Outcome(value)`` with a diagnosable error for unknown strings.

    Checkpoints and exported records written by a newer engine may carry
    outcome values this build does not know; the resulting ``ValueError``
    names the offending value, where it came from (``context``), and the
    outcomes this engine understands.
    """
    try:
        return Outcome(value)
    except ValueError:
        known = ", ".join(o.value for o in Outcome)
        where = f" ({context})" if context else ""
        raise ValueError(
            f"unknown outcome {value!r}{where}; this engine knows: {known}. "
            f"The record may have been written by a newer engine."
        ) from None


class OutcomeCounts:
    """Aggregated outcome proportions of a campaign (one Fig. 5 bar)."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: Dict[Outcome, int] = {o: 0 for o in Outcome}

    def record(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, outcome: Outcome) -> float:
        total = self.total
        return self.counts[outcome] / total if total else 0.0

    @property
    def symptom_fraction(self) -> float:
        return self.fraction(Outcome.CRASH) + self.fraction(Outcome.HANG)

    @property
    def soc_fraction(self) -> float:
        return self.fraction(Outcome.SOC)

    @property
    def detected_fraction(self) -> float:
        return self.fraction(Outcome.DETECTED)

    @property
    def corrected_fraction(self) -> float:
        return self.fraction(Outcome.CORRECTED)

    @property
    def masked_fraction(self) -> float:
        return self.fraction(Outcome.MASKED)

    def _present(self) -> Iterable[Outcome]:
        """The scientific outcomes, plus CORRECTED / TRIAL_FAILURE only
        when nonzero.

        Corrected trials exist only under the opt-in recovery runtime and
        quarantined trials are a harness artifact; undisturbed campaigns
        keep the five-outcome schema of the paper's figures.
        """
        for o in Outcome:
            if o not in _ELIDE_WHEN_ZERO or self.counts[o]:
                yield o

    def as_dict(self) -> Dict[str, float]:
        return {o.value: self.fraction(o) for o in self._present()}

    def as_counts_dict(self) -> Dict[str, int]:
        """Raw counts, same presence rules as :meth:`as_dict`."""
        return {o.value: self.counts[o] for o in self._present()}

    @classmethod
    def from_counts_dict(cls, data: Dict[str, int]) -> "OutcomeCounts":
        """Inverse of :meth:`as_counts_dict`; unknown outcome keys raise a
        clear :class:`ValueError` (see :func:`parse_outcome`)."""
        counts = cls()
        for key, value in data.items():
            counts.counts[parse_outcome(key, "OutcomeCounts.from_counts_dict")] += int(
                value
            )
        return counts

    def __repr__(self) -> str:
        parts = ", ".join(f"{o.value}={self.counts[o]}" for o in self._present())
        return f"<OutcomeCounts {parts}>"


def soc_reduction_percent(unprotected_soc: float, protected_soc: float) -> float:
    """Percentage SOC reduction relative to the unprotected case (Fig. 6)."""
    if unprotected_soc <= 0:
        return 0.0
    return 100.0 * (1.0 - protected_soc / unprotected_soc)


def margin_of_error(fraction: float, n: int, confidence: float = 0.95) -> float:
    """Normal-approximation margin of error for a proportion (paper §5.4).

    The paper reports margins of 0.68%–1.34% for 1,024-run campaigns at 95%
    confidence; this reproduces that calculation for our campaign sizes.
    """
    if n <= 0:
        return 1.0
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence}")
    return z * math.sqrt(fraction * (1.0 - fraction) / n)
