"""The fault model (paper §3).

Transient single-bit flips in the *result value* of hardware instructions:

* **eligible**: ALU/FPU binary operations, address arithmetic (``gep``),
  casts, comparisons, selects, and values returned from calls;
* **excluded**: loads and stores (memory and caches are ECC-protected),
  control flow (branches — handled by control-flow checking techniques),
  phis (a compiler artifact, not a hardware instruction), allocas (frame
  pointer bookkeeping), atomics (memory-sourced), and void-valued
  instructions.
"""

from __future__ import annotations

from typing import List

from ..ir.function import Function
from ..ir.instructions import (
    BinaryOperator,
    CallInst,
    CastInst,
    FCmpInst,
    GEPInst,
    ICmpInst,
    Instruction,
    SelectInst,
)
from ..ir.module import Module


def is_injectable(inst: Instruction) -> bool:
    """Whether the fault model allows flipping this instruction's result."""
    if not inst.produces_value():
        return False
    if isinstance(inst, (BinaryOperator, GEPInst, CastInst, ICmpInst, FCmpInst, SelectInst)):
        return True
    if isinstance(inst, CallInst):
        # Values returned from calls are register contents (paper §3);
        # IPAS's own check intrinsics are excluded (they are void anyway,
        # but be explicit for future check variants).
        return not inst.callee.name.startswith("ipas.check")
    return False


def injectable_instructions(module: Module) -> List[Instruction]:
    """All eligible static instructions of a module, in a stable order."""
    return [inst for inst in module.instructions() if is_injectable(inst)]


def result_bits(inst: Instruction) -> int:
    """Number of flippable bits in the instruction's result value.

    Raises :class:`TypeError` for result types the fault model has no
    register representation for (void, labels, aggregates) — such an
    instruction should never have passed :func:`is_injectable`, so a
    clear error here beats an ``AttributeError`` deep in a campaign.
    """
    t = inst.type
    if t.is_pointer():
        return 64
    if t.is_float() or t.is_integer():
        bits = getattr(t, "bits", None)
        if isinstance(bits, int) and bits > 0:
            return bits
    raise TypeError(
        f"no register representation for {inst.opcode!r} result type "
        f"{t!r}: expected a pointer, float, or sized integer"
    )


class FaultSite:
    """One concrete fault: (static instruction, dynamic occurrence, bit)."""

    __slots__ = ("instruction", "occurrence", "bit")

    def __init__(self, instruction: Instruction, occurrence: int, bit: int):
        if occurrence < 1:
            raise ValueError("occurrence is 1-based")
        if not 0 <= bit < result_bits(instruction):
            raise ValueError(
                f"bit {bit} out of range for {instruction.opcode} "
                f"({result_bits(instruction)} bits)"
            )
        self.instruction = instruction
        self.occurrence = occurrence
        self.bit = bit

    def as_injection(self):
        """The (instruction, occurrence, bit) triple the interpreter takes."""
        return (self.instruction, self.occurrence, self.bit)

    def __repr__(self) -> str:
        fn = self.instruction.function
        return (
            f"<FaultSite {self.instruction.opcode} in "
            f"{fn.name if fn else '?'} occ={self.occurrence} bit={self.bit}>"
        )
