"""Parallel fault-injection campaign engine.

Statistical campaigns are embarrassingly parallel — every trial is an
independent interpreter run — but naive parallelisation breaks the two
properties the experiments lean on: *determinism* (a campaign with the same
seed must replay identically, §5.4) and *amortised compilation* (workers
must not recompile the module per trial).  This engine keeps both:

* **Deterministic sharding.**  The full trial list (fault sites + bits) is
  pre-sampled *serially* from the seed before any worker starts, so the
  sampled faults — and therefore every per-trial outcome — are bit-identical
  for any worker count, including ``n_jobs=1`` falling back to the plain
  in-process loop.  Trials are only *executed* out of order; results are
  reassembled by trial index.

* **Persistent, supervised workers.**  Workers are forked from the prepared
  parent (``fork`` start method), so they inherit the compiled module, the
  golden capture, and the indexed fault space — zero recompilation, one
  ``Interpreter`` per worker reused across its whole shard.  Trials travel
  to workers as indexes and come back as ``(outcome, status, cycles,
  recovery)`` — IR objects never cross the process boundary.  The pool is run by
  :mod:`repro.faults.supervisor`: dead or hung workers are detected, their
  trials requeued, replacements respawned with capped backoff, poison
  trials quarantined, and a collapsed pool degrades to in-process serial
  execution — as does a platform without ``fork``.

* **Checkpointing (format v2).**  With a checkpoint path, completed trials
  are flushed to a JSONL file keyed by a campaign fingerprint (module +
  trial plan hash).  Every line carries a CRC32 of its canonical payload;
  flushes are atomic (tmp + rename), so a reader never observes a torn
  file; loading tolerates a truncated tail and skips corrupted lines with
  a warning; a fingerprint mismatch is explicit (warn-and-discard by
  default, :class:`CheckpointMismatchError` under ``strict_resume``).

* **Observability.**  A :class:`CampaignStats` tracks trials/sec,
  per-outcome latency histograms, worker utilization, ETA, and harness
  health (worker deaths, hangs, respawns, retries, quarantines); the CLI's
  ``--progress`` flag renders it live.

``IPAS_JOBS`` sets the default worker count for every campaign entry point
(CLI, experiment drivers); ``n_jobs=0`` means one worker per CPU.
``IPAS_TRIAL_TIMEOUT``, ``IPAS_MAX_RETRIES``, and ``IPAS_ON_WORKER_FAILURE``
set the supervision defaults the same way.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time
import warnings
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.registry import LATENCY_BUCKETS_MS, MetricsRegistry
from ..recover.runtime import RecoveryTelemetry
from .model import FaultSite
from .outcomes import Outcome, OutcomeCounts, parse_outcome
from .sanitizer import sanitize_records
from .supervisor import (
    PoolCollapse,
    SupervisorPolicy,
    TrialFailure,
    WorkerFailureError,
    run_supervised,
)

#: trials handed to a worker per dispatch; large enough to amortise IPC,
#: small enough to keep the shards balanced and the checkpoint fresh.
DEFAULT_CHUNK = 16

CHECKPOINT_VERSION = 2


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``IPAS_JOBS``, else 1.

    ``0`` (or any negative value) selects one worker per available CPU.
    """
    if n_jobs is None:
        env = os.environ.get("IPAS_JOBS")
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(f"IPAS_JOBS must be an integer, got {env!r}")
        else:
            n_jobs = 1
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return n_jobs


def fork_available() -> bool:
    """Whether the persistent-worker pool can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- observability ------------------------------------------------------------
#
# The bucket bounds and every counter below are declared in the
# ``repro.obs`` metric catalog; ``CampaignStats`` is a campaign-shaped view
# over a :class:`~repro.obs.MetricsRegistry`, which owns aggregation,
# deterministic merge, and serialization.


def _counter_prop(metric: str, doc: str):
    """Attribute-style access to one registry counter.

    Keeps the historical ``stats.worker_deaths += 1`` surface (the
    supervisor and tests use it) while the registry stays the single
    source of truth.
    """

    def fget(self):
        return self.registry.counter(metric).value

    def fset(self, value):
        self.registry.counter(metric).value = value

    return property(fget, fset, doc=doc)


class CampaignStats:
    """Throughput, latency, and harness-health instrumentation.

    Every counter lives in ``self.registry`` (a
    :class:`repro.obs.MetricsRegistry`) under a declared metric name; the
    attribute properties below are views.  Pass a shared registry to
    aggregate several campaigns (or an ``Observation``'s registry) —
    otherwise each stats object gets its own.
    """

    __slots__ = ("n_trials", "n_jobs", "started", "finished", "registry",
                 "_prior_elapsed")

    def __init__(
        self, n_trials: int, n_jobs: int,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.n_trials = n_trials
        self.n_jobs = n_jobs
        self.started = time.perf_counter()
        self.finished: Optional[float] = None
        self.registry = registry if registry is not None else MetricsRegistry()
        #: wall time absorbed from a resumed checkpoint's stats summary
        self._prior_elapsed = 0.0

    # -- registry-backed counters ------------------------------------------
    completed = _counter_prop(
        "ipas_trials_completed_total", "trials executed (cumulative)")
    resumed = _counter_prop(
        "ipas_trials_resumed_total", "trials restored from a checkpoint")
    busy_seconds = _counter_prop(
        "ipas_worker_busy_seconds_total", "summed per-trial wall time")
    # harness health (maintained by the supervisor)
    worker_deaths = _counter_prop(
        "ipas_worker_deaths_total", "workers lost to crash or hang-kill")
    hangs = _counter_prop("ipas_worker_hangs_total", "deadline kills")
    respawns = _counter_prop(
        "ipas_worker_respawns_total", "replacement workers forked")
    retries = _counter_prop(
        "ipas_trial_retries_total", "re-dispatches of a suspect trial")
    requeued = _counter_prop(
        "ipas_trials_requeued_total", "innocent chunk-mates requeued")
    quarantined = _counter_prop(
        "ipas_trials_quarantined_total", "trials delivered as TrialFailure")
    backoff_seconds = _counter_prop(
        "ipas_backoff_seconds_total", "respawn backoff accumulated")
    # recovery runtime (nonzero only when trials run with rollback)
    snapshots = _counter_prop(
        "ipas_recovery_snapshots_total", "region snapshots captured")
    rollbacks = _counter_prop(
        "ipas_recovery_rollbacks_total", "rollback re-executions")
    reexec_cycles = _counter_prop(
        "ipas_recovery_reexec_cycles_total", "cycles discarded and re-executed")
    escalations = _counter_prop(
        "ipas_recovery_escalations_total", "rollbacks refused")
    # warm-start engine (nonzero only for warm campaigns)
    warm_restores = _counter_prop(
        "ipas_warm_restores_total", "trials started from a ladder rung")
    golden_resyncs = _counter_prop(
        "ipas_warm_resyncs_total", "trials finished by golden resync")
    warm_cycles_saved = _counter_prop(
        "ipas_warm_cycles_saved_total", "prefix cycles skipped via restores")

    @property
    def serial_fallback(self) -> bool:
        """The pool collapsed into an in-process run."""
        return bool(self.registry.gauge("ipas_serial_fallback").value)

    @serial_fallback.setter
    def serial_fallback(self, value) -> None:
        self.registry.gauge("ipas_serial_fallback").value = int(bool(value))

    # -- per-outcome views (labeled metrics rendered as plain dicts) -------

    def _by_outcome(self, metric: str) -> Dict:
        return {
            dict(labels).get("outcome", ""): inst
            for labels, inst in self.registry.samples(metric).items()
        }

    @property
    def outcome_counts(self) -> Dict[str, int]:
        return {k: c.value for k, c in self._by_outcome("ipas_trials_total").items()}

    @property
    def latency_sum(self) -> Dict[str, float]:
        return {
            k: h.total / 1000.0
            for k, h in self._by_outcome("ipas_trial_latency_ms").items()
        }

    @property
    def latency_max(self) -> Dict[str, float]:
        return {
            k: g.value
            for k, g in self._by_outcome("ipas_trial_latency_seconds_max").items()
        }

    @property
    def histograms(self) -> Dict[str, List[int]]:
        return {
            k: list(h.counts)
            for k, h in self._by_outcome("ipas_trial_latency_ms").items()
        }

    # -- recording ---------------------------------------------------------

    def record(
        self, outcome: Outcome, seconds: float, recovery=None, warm=None,
        cycles: Optional[int] = None,
    ) -> None:
        key = outcome.value
        reg = self.registry
        reg.counter("ipas_trials_completed_total").value += 1
        reg.counter("ipas_worker_busy_seconds_total").value += seconds
        if recovery is not None:
            reg.counter("ipas_recovery_snapshots_total").value += recovery.snapshots
            reg.counter("ipas_recovery_rollbacks_total").value += recovery.rollbacks
            reg.counter(
                "ipas_recovery_reexec_cycles_total"
            ).value += recovery.reexec_cycles
            reg.counter(
                "ipas_recovery_escalations_total"
            ).value += recovery.escalations
        if warm is not None:
            warm_index, resynced, saved = warm
            if warm_index >= 0:
                reg.counter("ipas_warm_restores_total").value += 1
                reg.counter("ipas_warm_cycles_saved_total").value += saved
            if resynced:
                reg.counter("ipas_warm_resyncs_total").value += 1
        reg.counter("ipas_trials_total", outcome=key).value += 1
        reg.histogram("ipas_trial_latency_ms", outcome=key).observe(seconds * 1000.0)
        reg.gauge("ipas_trial_latency_seconds_max", outcome=key).observe_max(seconds)
        if cycles is not None:
            reg.histogram("ipas_trial_cycles", outcome=key).observe(cycles)

    def absorb(self, stats_data: Dict) -> None:
        """Fold a previous run's persisted metrics in (checkpoint resume).

        ``stats_data`` is a registry snapshot from a checkpoint header; the
        resumed campaign then reports *cumulative* telemetry — outcome
        tallies, latency, recovery and harness events across every restart.
        ``completed`` and ``resumed`` stay restart-local (work performed by
        *this* run vs. records restored from disk), so progress accounting
        keeps its established meaning.
        """
        prior = MetricsRegistry.from_dict(stats_data)
        self._prior_elapsed += prior.counter(
            "ipas_campaign_elapsed_seconds_total"
        ).value
        prior.counter("ipas_trials_completed_total").value = 0
        prior.counter("ipas_trials_resumed_total").value = 0
        self.registry.merge(prior)

    def finish(self) -> None:
        if self.finished is None:
            self.finished = time.perf_counter()
            self.registry.counter(
                "ipas_campaign_elapsed_seconds_total"
            ).value += self.finished - self.started

    # -- derived metrics ---------------------------------------------------

    @property
    def elapsed(self) -> float:
        end = self.finished if self.finished is not None else time.perf_counter()
        return max(end - self.started + self._prior_elapsed, 1e-9)

    @property
    def trials_per_second(self) -> float:
        return self.completed / self.elapsed

    @property
    def utilization(self) -> float:
        """Fraction of worker capacity spent executing trials (0..1)."""
        return min(self.busy_seconds / (self.elapsed * max(self.n_jobs, 1)), 1.0)

    @property
    def remaining(self) -> int:
        return max(self.n_trials - self.resumed - self.completed, 0)

    @property
    def eta_seconds(self) -> float:
        rate = self.trials_per_second
        return self.remaining / rate if rate > 0 else float("inf")

    @property
    def harness_events(self) -> int:
        """Total supervisor actions — 0 means an undisturbed run."""
        return self.worker_deaths + self.respawns + self.retries + self.quarantined

    @property
    def recovery_events(self) -> int:
        """Total rollback-runtime activity — 0 when recovery is off."""
        return self.snapshots + self.rollbacks + self.escalations

    @property
    def warm_events(self) -> int:
        """Total warm-start activity — 0 for cold campaigns."""
        return self.warm_restores + self.golden_resyncs

    @property
    def mean_rollback_cycles(self) -> float:
        """Mean re-executed cycles per rollback (detection distance)."""
        return self.reexec_cycles / self.rollbacks if self.rollbacks else 0.0

    def mean_latency(self, outcome: str) -> float:
        n = self.outcome_counts.get(outcome, 0)
        return self.latency_sum.get(outcome, 0.0) / n if n else 0.0

    def as_dict(self) -> Dict:
        """JSON-compatible snapshot (benchmarks persist this)."""
        data: Dict = {
            "n_trials": self.n_trials,
            "n_jobs": self.n_jobs,
            "completed": self.completed,
            "resumed": self.resumed,
            "elapsed_seconds": self.elapsed,
            "trials_per_second": self.trials_per_second,
            "worker_utilization": self.utilization,
            "busy_seconds": self.busy_seconds,
            "outcomes": dict(self.outcome_counts),
            "latency_mean_ms": {
                k: 1000.0 * self.mean_latency(k) for k in self.outcome_counts
            },
            "latency_max_ms": {
                k: 1000.0 * v for k, v in self.latency_max.items()
            },
            "latency_histogram_bounds_ms": list(LATENCY_BUCKETS_MS),
            "latency_histograms": {k: list(v) for k, v in self.histograms.items()},
            "harness": {
                "worker_deaths": self.worker_deaths,
                "hangs": self.hangs,
                "respawns": self.respawns,
                "retries": self.retries,
                "requeued": self.requeued,
                "quarantined": self.quarantined,
                "backoff_seconds": self.backoff_seconds,
                "serial_fallback": self.serial_fallback,
            },
        }
        if self.recovery_events:
            data["recovery"] = {
                "snapshots": self.snapshots,
                "rollbacks": self.rollbacks,
                "reexec_cycles": self.reexec_cycles,
                "mean_rollback_cycles": self.mean_rollback_cycles,
                "escalations": self.escalations,
                "corrected": self.outcome_counts.get(Outcome.CORRECTED.value, 0),
            }
        if self.warm_events:
            data["warm_start"] = {
                "restores": self.warm_restores,
                "golden_resyncs": self.golden_resyncs,
                "prefix_cycles_saved": self.warm_cycles_saved,
            }
        return data

    def progress_line(self) -> str:
        done = self.resumed + self.completed
        eta = self.eta_seconds
        eta_text = f"{eta:5.1f}s" if eta != float("inf") else "   ?  "
        line = (
            f"[{done}/{self.n_trials}] "
            f"{self.trials_per_second:7.1f} trials/s  "
            f"util {self.utilization:4.0%}  eta {eta_text}"
        )
        if self.rollbacks or self.escalations:
            corrected = self.outcome_counts.get(Outcome.CORRECTED.value, 0)
            line += (
                f"  [rollbacks {self.rollbacks} corrected {corrected}"
                f" escalated {self.escalations}]"
            )
        if self.warm_events:
            line += (
                f"  [warm {self.warm_restores} resync {self.golden_resyncs}]"
            )
        if self.harness_events:
            line += (
                f"  [deaths {self.worker_deaths} respawns {self.respawns}"
                f" retries {self.retries} quar {self.quarantined}"
                + (" serial-fallback" if self.serial_fallback else "")
                + "]"
            )
        return line

    def __repr__(self) -> str:
        return (
            f"<CampaignStats {self.completed}/{self.n_trials} "
            f"{self.trials_per_second:.1f}/s util={self.utilization:.0%}>"
        )


# -- checkpointing -------------------------------------------------------------


class CheckpointWarning(UserWarning):
    """A checkpoint was discarded, cleaned, or partially recovered."""


class CheckpointError(RuntimeError):
    """A checkpoint problem the caller asked to be strict about."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint belongs to a different campaign (or format version)."""


def _canonical(entry: Dict) -> str:
    return json.dumps(
        {k: entry[k] for k in sorted(entry) if k != "crc"},
        separators=(",", ":"),
    )


def _entry_crc(entry: Dict) -> int:
    return zlib.crc32(_canonical(entry).encode()) & 0xFFFFFFFF


def _seal(entry: Dict) -> Dict:
    entry["crc"] = _entry_crc(entry)
    return entry


def _checked_loads(raw: str):
    """Parse one checkpoint line → ``(entry, None)`` or ``(None, error)``.

    ``error`` is ``"unparseable"`` (torn write) or ``"crc"`` (bit damage
    to an otherwise well-formed line).
    """
    try:
        entry = json.loads(raw)
    except json.JSONDecodeError:
        return None, "unparseable"
    if not isinstance(entry, dict):
        return None, "unparseable"
    if entry.get("crc") != _entry_crc(entry):
        return None, "crc"
    return entry, None


def sealed_line(entry: Dict) -> str:
    """Serialize ``entry`` as one checkpoint-v2 journal line: canonical
    JSON with a ``crc`` field sealing the payload.  The service job
    journal (:mod:`repro.service.journal`) shares this line format with
    campaign checkpoints so one reader/auditor covers both."""
    return json.dumps(_seal(dict(entry)))


def checked_line(raw: str):
    """Public counterpart of :func:`sealed_line`: parse one sealed line →
    ``(entry, None)`` or ``(None, "unparseable"|"crc")``."""
    return _checked_loads(raw)


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` (or ``path`` itself when it
    is a directory), making a just-renamed or just-created entry durable.

    ``os.replace`` makes a rename atomic but not durable: until the parent
    directory's metadata reaches the disk, a power loss can roll the
    rename back.  Best-effort — platforms that cannot open or fsync a
    directory are skipped silently rather than failing the flush.
    """
    directory = path if os.path.isdir(path) else (os.path.dirname(path) or ".")
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def trial_entry(index: int, site: FaultSite, site_index: int, record) -> Dict:
    """Canonical (unsealed) checkpoint entry for one completed trial.

    This is the single wire/disk schema for trial results: checkpoint
    lines, service acks, and cached service results all carry exactly
    this dict, so "bit-identical records" can be asserted by comparing
    entries directly.
    """
    entry = {
        "i": index,
        "site_index": site_index,
        "occurrence": site.occurrence,
        "bit": site.bit,
        "outcome": record.outcome.value,
        "status": record.status,
        "cycles": record.cycles,
    }
    failure = getattr(record, "failure", None)
    if failure is not None:
        entry["failure"] = failure.as_dict()
    recovery = getattr(record, "recovery", None)
    if recovery is not None:
        entry["recovery"] = recovery.as_dict()
    return entry


def entry_matches_site(entry: Dict, site: FaultSite, site_index: int) -> bool:
    """Whether a persisted/wire entry matches the deterministic plan slot.

    Guards resume and service commit alike: an entry whose identity
    fields disagree with the locally sampled plan is discarded and the
    trial re-runs.
    """
    return (
        entry.get("site_index") == site_index
        and entry.get("occurrence") == site.occurrence
        and entry.get("bit") == site.bit
    )


def record_from_entry(entry: Dict, site: FaultSite, context: str):
    """Reconstruct a ``TrialRecord`` from a checkpoint/wire entry.

    ``context`` names the source in the error raised for an unknown
    outcome string (forward-compat guard).
    """
    from .campaign import TrialRecord

    failure = (
        TrialFailure.from_dict(entry["failure"]) if entry.get("failure") else None
    )
    recovery = (
        RecoveryTelemetry.from_dict(entry["recovery"])
        if entry.get("recovery")
        else None
    )
    return TrialRecord(
        site,
        parse_outcome(entry["outcome"], context),
        entry["status"],
        entry["cycles"],
        failure=failure,
        recovery=recovery,
    )


class CampaignCheckpoint:
    """Versioned, corruption-resistant JSONL checkpoint (format v2).

    Layout: a header line ``{"version", "fingerprint", "n_trials", "seed",
    "crc"}`` followed by one line per completed trial, each carrying a
    ``crc`` — CRC32 of the line's canonical JSON without the ``crc`` field.
    Flushes write the whole file to ``<path>.tmp`` and atomically rename,
    so a crash at any instant leaves the previous complete version on
    disk.  Loading drops a torn final line and skips CRC-damaged lines
    (each with a :class:`CheckpointWarning`); the affected trials simply
    re-run.  A header that does not match this campaign is discarded with
    a warning — or raised as :class:`CheckpointMismatchError` when
    ``strict`` is set.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        n_trials: int,
        seed: int,
        flush_interval: int = DEFAULT_CHUNK,
        model: str = "transient-1bit",
    ):
        self.path = path
        self.fingerprint = fingerprint
        self.n_trials = n_trials
        self.seed = seed
        #: fault-model spec of the campaign writing/resuming this file.
        #: Headers without the key are legacy files: always transient-1bit.
        self.model = model
        self.flush_interval = flush_interval
        self._record_lines: List[str] = []
        self._pending = 0
        self._open = False
        #: CampaignStats whose registry snapshot is persisted into the
        #: header on every flush (None skips the summary)
        self.stats = None
        # diagnostics from the last load()
        self.mismatch: Optional[str] = None
        self.corrupted_lines = 0
        self.truncated_tail = False
        #: metrics snapshot recovered from a resumed header, for
        #: :meth:`CampaignStats.absorb` (None for pre-stats checkpoints)
        self.prior_stats: Optional[Dict] = None

    def load(self, strict: bool = False) -> Dict[int, Dict]:
        """Completed trial dicts by index; ``{}`` if absent or mismatched."""
        self.mismatch = None
        self.corrupted_lines = 0
        self.truncated_tail = False
        self.prior_stats = None
        try:
            with open(self.path) as fh:
                text = fh.read()
        except OSError:
            return {}
        lines = text.split("\n")
        while lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return {}
        header, error = _checked_loads(lines[0])
        if header is None:
            self.mismatch = f"unreadable header ({error})"
        elif header.get("version") != CHECKPOINT_VERSION:
            self.mismatch = (
                f"unsupported checkpoint version {header.get('version')!r} "
                f"(this engine writes v{CHECKPOINT_VERSION})"
            )
        elif header.get("model", "transient-1bit") != self.model:
            # Trial records from different corruption models must never be
            # merged — refuse outright rather than warn-and-discard, so the
            # operator consciously picks a new checkpoint path.
            raise CheckpointMismatchError(
                f"{self.path}: fault-model mismatch: checkpoint was written "
                f"by {header.get('model', 'transient-1bit')!r} but this "
                f"campaign runs {self.model!r}; resuming would mix "
                f"incompatible trial plans — use a fresh checkpoint path"
            )
        elif header.get("fingerprint") != self.fingerprint:
            self.mismatch = (
                f"fingerprint mismatch: checkpoint {header.get('fingerprint')!r} "
                f"vs campaign {self.fingerprint!r}"
            )
        elif header.get("n_trials") != self.n_trials or header.get("seed") != self.seed:
            self.mismatch = (
                f"plan mismatch: checkpoint n_trials={header.get('n_trials')} "
                f"seed={header.get('seed')} vs campaign n_trials={self.n_trials} "
                f"seed={self.seed}"
            )
        if self.mismatch:
            if strict:
                raise CheckpointMismatchError(f"{self.path}: {self.mismatch}")
            warnings.warn(
                f"discarding checkpoint {self.path}: {self.mismatch}",
                CheckpointWarning,
                stacklevel=2,
            )
            return {}
        prior_stats = header.get("stats")
        if isinstance(prior_stats, dict):
            self.prior_stats = prior_stats
        completed: Dict[int, Dict] = {}
        keep: List[str] = []
        last = len(lines) - 1
        for lineno, raw in enumerate(lines[1:], start=1):
            entry, error = _checked_loads(raw)
            if entry is None:
                if lineno == last and error == "unparseable":
                    self.truncated_tail = True
                    warnings.warn(
                        f"{self.path}: dropping torn final line (crash mid-write); "
                        f"the trial will re-run",
                        CheckpointWarning,
                        stacklevel=2,
                    )
                else:
                    self.corrupted_lines += 1
                continue
            i = entry.get("i")
            if isinstance(i, int) and 0 <= i < self.n_trials:
                # Forward-compat guard: an outcome string this engine does
                # not know (e.g. "corrected" read by a pre-recovery build)
                # must fail loudly, not as a bare KeyError deep in resume.
                parse_outcome(
                    entry.get("outcome"),
                    f"checkpoint {self.path}:{lineno + 1}, "
                    f"version {CHECKPOINT_VERSION}",
                )
                completed[i] = entry
                keep.append(raw)
            else:
                self.corrupted_lines += 1
        if self.corrupted_lines:
            warnings.warn(
                f"{self.path}: skipped {self.corrupted_lines} corrupted "
                f"checkpoint line(s); the affected trials will re-run",
                CheckpointWarning,
                stacklevel=2,
            )
        self._record_lines = keep
        return completed

    def open_for_append(self, fresh: bool) -> None:
        """Start writing; ``fresh`` drops any previously loaded records.

        The first flush happens immediately, which also *cleans* a
        resumed file: torn or corrupted lines the load skipped are gone
        from the rewritten version.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if fresh:
            self._record_lines = []
        self._open = True
        self.flush()

    def _header_line(self) -> str:
        """The sealed header, rebuilt per flush so the persisted stats
        summary stays fresh.  Extra keys ride inside the CRC; readers only
        validate the four identity fields, so older engines resume these
        files untouched."""
        header: Dict = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "n_trials": self.n_trials,
            "seed": self.seed,
            "model": self.model,
        }
        if self.stats is not None:
            header["stats"] = self.stats.registry.as_dict()
        return json.dumps(_seal(header))

    def append(self, index: int, site: FaultSite, site_index: int, record) -> None:
        assert self._open
        self._record_lines.append(
            sealed_line(trial_entry(index, site, site_index, record))
        )
        self._pending += 1
        # An atomic flush rewrites the whole file, so amortise: the
        # interval grows with the file, keeping total flush work O(n log n).
        if self._pending >= max(self.flush_interval, len(self._record_lines) // 8):
            self.flush()

    def flush(self) -> None:
        """Atomically publish the current state (tmp + rename)."""
        if not self._open:
            return
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as fh:
            fh.write(self._header_line() + "\n")
            if self._record_lines:
                fh.write("\n".join(self._record_lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        # The data is durable (tmp fsynced above); make the *rename*
        # durable too, or a power loss can resurrect the previous file.
        fsync_directory(self.path)
        self._pending = 0

    def close(self) -> None:
        if self._open:
            self.flush()
            self._open = False


def verify_checkpoint(
    path: str,
    fingerprint: Optional[str] = None,
    n_trials: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict:
    """Validate a checkpoint file and report what a resume would recover.

    Returns a JSON-compatible report: header validity, the fingerprint
    match (when an expected ``fingerprint`` is supplied), the number of
    ``recoverable`` trials, the ``lost`` count (trials a resume must
    re-run), corrupted lines, whether the tail was torn, and any
    ``unknown_outcomes`` — structurally valid records whose outcome string
    this engine does not know (each reported as ``{"line", "outcome"}``
    and excluded from ``recoverable``, since a resume would reject them).
    """
    report: Dict = {
        "path": path,
        "exists": False,
        "header_ok": False,
        "version": None,
        "fingerprint": None,
        "fingerprint_ok": None,
        "n_trials": None,
        "seed": None,
        "records": 0,
        "recoverable": 0,
        "lost": None,
        "corrupted_lines": 0,
        "truncated_tail": False,
        "unknown_outcomes": [],
        "error": None,
    }
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        report["error"] = str(exc)
        return report
    report["exists"] = True
    lines = text.split("\n")
    while lines and lines[-1] == "":
        lines.pop()
    if not lines:
        report["error"] = "empty file"
        return report
    header, error = _checked_loads(lines[0])
    if header is None:
        report["error"] = f"unreadable header ({error})"
        return report
    report["version"] = header.get("version")
    report["fingerprint"] = header.get("fingerprint")
    report["n_trials"] = header.get("n_trials")
    report["seed"] = header.get("seed")
    if header.get("version") != CHECKPOINT_VERSION:
        report["error"] = (
            f"unsupported version {header.get('version')!r} "
            f"(this engine reads v{CHECKPOINT_VERSION})"
        )
        return report
    report["header_ok"] = True
    if fingerprint is not None:
        report["fingerprint_ok"] = (
            header.get("fingerprint") == fingerprint
            and (n_trials is None or header.get("n_trials") == n_trials)
            and (seed is None or header.get("seed") == seed)
        )
    expected_trials = n_trials if n_trials is not None else header.get("n_trials")
    indexes = set()
    last = len(lines) - 1
    for lineno, raw in enumerate(lines[1:], start=1):
        entry, error = _checked_loads(raw)
        if entry is None:
            if lineno == last and error == "unparseable":
                report["truncated_tail"] = True
            else:
                report["corrupted_lines"] += 1
            continue
        i = entry.get("i")
        if isinstance(i, int) and (
            not isinstance(expected_trials, int) or 0 <= i < expected_trials
        ):
            report["records"] += 1
            try:
                parse_outcome(entry.get("outcome"))
            except ValueError:
                report["unknown_outcomes"].append(
                    {"line": lineno + 1, "outcome": entry.get("outcome")}
                )
                continue
            indexes.add(i)
        else:
            report["corrupted_lines"] += 1
    report["recoverable"] = len(indexes)
    if isinstance(expected_trials, int):
        report["lost"] = max(expected_trials - len(indexes), 0)
    return report


def campaign_fingerprint(campaign, n_trials: int, seed: int) -> str:
    """Stable identity of one campaign's trial plan.

    Hashes the seed, trial count, budget, golden baseline, and the indexed
    fault space (per-site function, opcode, and dynamic count) — anything
    that changes the sampled trials or their meaning changes the
    fingerprint, so a stale checkpoint can never be resumed into a
    different campaign.
    """
    campaign.prepare()
    h = hashlib.sha256()
    h.update(
        (
            f"{campaign.entry}|{n_trials}|{seed}|{campaign.budget_factor}"
            f"|{campaign.golden_cycles}|{campaign.total_dynamic_injectable}|"
        ).encode()
    )
    recovery = getattr(campaign, "recovery", None)
    if recovery is not None:
        # Only armed recovery changes outcomes; plain campaigns keep their
        # historical fingerprints, so old checkpoints stay resumable.
        h.update(f"{recovery.signature()}|".encode())
    if getattr(campaign, "warm_start", False):
        # Warm-start records are bit-identical to cold ones, but the
        # execution engines differ — keep the checkpoints apart so a warm
        # resume never silently validates cold results (and vice versa).
        h.update(f"warm1|{campaign.effective_stride}|".encode())
    model = getattr(campaign, "fault_model", None)
    if model is not None and model.signature():
        # The default transient single-bit model signs as "" so historical
        # fingerprints survive byte-identical; every other model stamps its
        # full parameterised spec into the plan identity.
        h.update(f"{model.signature()}|".encode())
    for inst, count in campaign._sites:
        fn = inst.function
        h.update(f"{fn.name if fn else '?'}:{inst.opcode}:{count};".encode())
    return h.hexdigest()[:16]


# -- the engine ---------------------------------------------------------------


def run_campaign(
    campaign,
    n_trials: int,
    seed: int = 0,
    n_jobs: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    progress: bool = False,
    on_trial: Optional[Callable[[int, object], None]] = None,
    chunk_size: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    on_worker_failure: Optional[str] = None,
    supervision: Optional[SupervisorPolicy] = None,
    strict_resume: bool = False,
    chaos=None,
    obs=None,
):
    """Execute a campaign's trials, optionally sharded over worker processes.

    Returns the same ``CampaignResult`` (bit-identical records, in trial
    order) for every ``n_jobs``, with a :class:`CampaignStats` attached as
    ``result.stats`` — including under worker death and hangs, which the
    supervisor recovers by requeue + respawn (see
    :mod:`repro.faults.supervisor`).  ``trial_timeout`` / ``max_retries`` /
    ``on_worker_failure`` override the supervision policy (or pass a full
    ``supervision=SupervisorPolicy(...)``).  ``on_trial(index, record)``
    fires as each trial completes (completion order); an exception raised
    from it — including ``KeyboardInterrupt`` — aborts the campaign after
    flushing and closing the checkpoint, which is how interrupted runs stay
    resumable.  ``strict_resume`` turns a checkpoint/campaign mismatch into
    a :class:`CheckpointMismatchError` instead of a warn-and-discard.
    ``chaos`` (tests only) installs a failure injector in the workers.

    ``obs`` (a :class:`repro.obs.Observation`) arms the observability
    layer: trace spans stream to ``obs.trace_path`` and the stats registry
    is shared with (and dumped to) the observation.  ``None`` — the
    default — takes none of those branches; outcomes and fingerprints are
    bit-identical either way, traced or not.
    """
    from contextlib import nullcontext

    from .campaign import CampaignResult, TrialRecord

    n_jobs = resolve_jobs(n_jobs)
    policy = SupervisorPolicy.resolve(
        supervision,
        trial_timeout=trial_timeout,
        max_retries=max_retries,
        on_worker_failure=on_worker_failure,
    )
    tracer = obs.open_trace() if obs is not None else None

    def phase(name: str, **args):
        return tracer.phase(name, **args) if tracer is not None else nullcontext()

    with phase("prepare"):
        campaign.prepare()
    ladder = None
    if getattr(campaign, "warm_start", False):
        # Build the ladder in the parent: forked workers inherit the rungs
        # copy-on-write, so one golden capture serves every worker count —
        # and the rungs (hence every trial) are bit-identical at any n_jobs.
        with phase("ladder-capture"):
            ladder = campaign.ensure_ladder()
    with phase("sample-trials", n_trials=n_trials, seed=seed):
        sites = campaign.sample_trials(n_trials, seed)
    stats = CampaignStats(
        n_trials, n_jobs,
        registry=obs.registry if obs is not None else None,
    )
    records: List[Optional[TrialRecord]] = [None] * n_trials
    site_index_of = {
        id(inst): k for k, (inst, _count) in enumerate(campaign._sites)
    }

    checkpoint = None
    if checkpoint_path:
        with phase("checkpoint-resume"):
            fingerprint = campaign_fingerprint(campaign, n_trials, seed)
            model = getattr(campaign, "fault_model", None)
            checkpoint = CampaignCheckpoint(
                checkpoint_path, fingerprint, n_trials, seed,
                model=model.spec() if model is not None else "transient-1bit",
            )
            completed = checkpoint.load(strict=strict_resume)
            if checkpoint.prior_stats is not None:
                # The header carries the previous run's metrics: absorb them
                # so the resumed campaign reports cumulative telemetry
                # (outcome tallies, latency, recovery and harness events).
                stats.absorb(checkpoint.prior_stats)
            for i, entry in completed.items():
                if records[i] is not None:
                    continue
                site = sites[i]
                if not entry_matches_site(
                    entry, site, site_index_of[id(site.instruction)]
                ):
                    continue  # does not match the deterministic plan; re-run
                records[i] = record_from_entry(
                    entry, site, f"checkpoint {checkpoint_path}"
                )
                stats.resumed += 1
            checkpoint.stats = stats
            checkpoint.open_for_append(fresh=not completed)

    pending = [i for i in range(n_trials) if records[i] is None]
    if ladder is not None and len(pending) > 1:
        # Bucket trials by their restore rung so consecutive chunks hit the
        # same rung (warm caches stay hot in each worker).  Results are
        # reassembled by index, so execution order never affects output.
        bucket = {
            i: (lambda s: s.index if s is not None else -1)(
                ladder.plan_site(campaign.interp.cm, sites[i])[0]
            )
            for i in pending
        }
        pending.sort(key=lambda i: (bucket[i], i))
    trial_site_index = {i: site_index_of[id(sites[i].instruction)] for i in pending}
    last_progress = [stats.started]

    def trace_trial(index: int, record: TrialRecord, seconds: float, wid: int) -> None:
        site = sites[index]
        inst = site.instruction
        fn = inst.function
        tracer.trial(
            index,
            wid,
            seconds,
            record.outcome.value,
            args={
                "trial": index,
                "site": f"{fn.name if fn else '?'}:"
                        f"{inst.parent.name if inst.parent else '?'}",
                "opcode": inst.opcode,
                "occurrence": site.occurrence,
                "bit": site.bit,
                "status": record.status,
                "cycles": record.cycles,
            },
        )
        recovery = record.recovery
        if recovery is not None and recovery.rollbacks:
            tracer.event(
                "rollback", wid, trial=index, rollbacks=recovery.rollbacks,
                reexec_cycles=recovery.reexec_cycles,
            )
        warm = getattr(record, "warm", None)
        if warm is not None and warm[1]:
            tracer.event("golden-resync", wid, trial=index)
        if record.outcome is Outcome.TRIAL_FAILURE:
            tracer.event("quarantine", wid, trial=index)

    def deliver(
        index: int, record: TrialRecord, seconds: float, wid: int = 0
    ) -> None:
        records[index] = record
        stats.record(
            record.outcome, seconds, record.recovery,
            getattr(record, "warm", None), cycles=record.cycles,
        )
        if tracer is not None:
            trace_trial(index, record, seconds, wid)
        if checkpoint is not None:
            checkpoint.append(index, sites[index], trial_site_index[index], record)
        if on_trial is not None:
            on_trial(index, record)
        if progress:
            now = time.perf_counter()
            if now - last_progress[0] >= 0.5 or stats.remaining == 0:
                last_progress[0] = now
                print(stats.progress_line(), file=sys.stderr)

    def run_trial(index: int) -> Tuple[str, str, int, Optional[Tuple], Optional[Tuple]]:
        # Runs in forked workers (which inherit the prepared campaign) and
        # in the parent for the serial-fallback path; only plain values
        # are returned, so results pickle across the pipe.
        record = campaign.run_site(sites[index])
        rec_wire = record.recovery.as_wire() if record.recovery is not None else None
        return (
            record.outcome.value,
            record.status,
            record.cycles,
            rec_wire,
            getattr(record, "warm", None),
        )

    def deliver_wire(index: int, result, seconds: float, wid: int = 0) -> None:
        if isinstance(result, TrialFailure):
            record = TrialRecord(
                sites[index], Outcome.TRIAL_FAILURE, "harness", 0, failure=result
            )
        else:
            outcome_value, status, cycles, rec_wire, warm = result
            recovery = (
                RecoveryTelemetry.from_wire(rec_wire) if rec_wire is not None else None
            )
            record = TrialRecord(
                sites[index],
                Outcome(outcome_value),
                status,
                cycles,
                recovery=recovery,
                warm=warm,
            )
        deliver(index, record, seconds, wid)

    try:
        try:
            with phase("execute", pending=len(pending), n_jobs=n_jobs):
                if len(pending) == 0:
                    pass
                elif n_jobs == 1 or len(pending) == 1 or not fork_available():
                    perf = time.perf_counter
                    for i in pending:
                        t0 = perf()
                        record = campaign.run_site(sites[i])
                        deliver(i, record, perf() - t0)
                else:
                    items = [(i, i) for i in pending]
                    try:
                        run_supervised(
                            run_trial,
                            items,
                            n_jobs,
                            deliver_wire,
                            policy=policy,
                            stats=stats,
                            chaos=chaos,
                            chunk_size=chunk_size,
                        )
                    except PoolCollapse as collapse:
                        # The pool cannot be sustained — finish what is left
                        # in-process.  Same classification path, same results.
                        stats.serial_fallback = True
                        if tracer is not None:
                            tracer.event("serial-fallback", 0, reason=collapse.reason)
                        perf = time.perf_counter
                        for index, payload in collapse.remaining:
                            t0 = perf()
                            deliver_wire(index, run_trial(payload), perf() - t0)
        finally:
            # Runs on success, errors, and KeyboardInterrupt alike: buffered
            # records are flushed and the checkpoint sealed before anything
            # propagates, so an interrupted campaign is always resumable.
            stats.finish()
            if checkpoint is not None:
                checkpoint.close()

        # Static-vs-dynamic consistency sweep, parent-side: a worker exception
        # would be quarantined as TRIAL_FAILURE, so the impossible-SOC check
        # must run here, after assembly, where it can actually abort the run.
        with phase("sanitize"):
            sanitize_records(
                records,
                campaign.interp.module,
                model=getattr(campaign, "fault_model", None),
            )
    finally:
        if obs is not None:
            # Seal the trace and dump the metrics registry even when the
            # campaign aborts — a partial trace is still loadable.
            obs.close()

    counts = OutcomeCounts()
    for record in records:
        assert record is not None
        counts.record(record.outcome)
    result = CampaignResult(records, counts, campaign.golden_cycles, seed)
    result.stats = stats
    return result


# -- generic fork-mapping (legacy helper; the MPI campaign is supervised) ------

_WORKER_FN = None


def _fn_chunk(chunk) -> List:
    return [_WORKER_FN(item) for item in chunk]


def fork_map(fn: Callable, items: Sequence, n_jobs: int, chunk_size: int = DEFAULT_CHUNK):
    """Map ``fn`` over ``items`` with forked workers, yielding results in
    completion order.  ``fn`` and ``items`` are inherited by fork, so ``fn``
    may close over arbitrary unpicklable state; each *result* must pickle.
    Falls back to a plain serial map when fork is unavailable or
    ``n_jobs <= 1``.  No supervision: a worker failure propagates — use
    :func:`repro.faults.supervisor.run_supervised` for recovery.
    """
    if n_jobs <= 1 or len(items) <= 1 or not fork_available():
        for item in items:
            yield fn(item)
        return
    global _WORKER_FN
    chunks = [items[k : k + chunk_size] for k in range(0, len(items), chunk_size)]
    ctx = multiprocessing.get_context("fork")
    _WORKER_FN = fn
    try:
        with ctx.Pool(processes=min(n_jobs, len(chunks))) as pool:
            for shard in pool.imap_unordered(_fn_chunk, chunks):
                for result in shard:
                    yield result
    finally:
        _WORKER_FN = None
