"""Parallel fault-injection campaign engine.

Statistical campaigns are embarrassingly parallel — every trial is an
independent interpreter run — but naive parallelisation breaks the two
properties the experiments lean on: *determinism* (a campaign with the same
seed must replay identically, §5.4) and *amortised compilation* (workers
must not recompile the module per trial).  This engine keeps both:

* **Deterministic sharding.**  The full trial list (fault sites + bits) is
  pre-sampled *serially* from the seed before any worker starts, so the
  sampled faults — and therefore every per-trial outcome — are bit-identical
  for any worker count, including ``n_jobs=1`` falling back to the plain
  in-process loop.  Trials are only *executed* out of order; results are
  reassembled by trial index.

* **Persistent workers.**  Workers are forked from the prepared parent
  (``fork`` start method), so they inherit the compiled module, the golden
  capture, and the indexed fault space — zero recompilation, one
  ``Interpreter`` per worker reused across its whole shard.  Trials travel
  to workers as compact ``(index, site_index, occurrence, bit)`` tuples and
  come back as ``(index, outcome, status, cycles, seconds)`` — IR objects
  never cross the process boundary.  Where ``fork`` is unavailable the
  engine degrades to the serial path.

* **Checkpointing.**  With a checkpoint path, completed trials are flushed
  to a JSONL file keyed by a campaign fingerprint (module + trial plan
  hash).  A restarted campaign with the same fingerprint resumes from the
  completed set; a mismatched fingerprint discards the stale file.

* **Observability.**  A :class:`CampaignStats` tracks trials/sec,
  per-outcome latency histograms, worker utilization, and ETA; the CLI's
  ``--progress`` flag renders it live.

``IPAS_JOBS`` sets the default worker count for every campaign entry point
(CLI, experiment drivers); ``n_jobs=0`` means one worker per CPU.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .model import FaultSite
from .outcomes import Outcome, OutcomeCounts

#: trials handed to a worker per dispatch; large enough to amortise IPC,
#: small enough to keep the shards balanced and the checkpoint fresh.
DEFAULT_CHUNK = 16

CHECKPOINT_VERSION = 1


def resolve_jobs(n_jobs: Optional[int] = None) -> int:
    """Effective worker count: explicit value, else ``IPAS_JOBS``, else 1.

    ``0`` (or any negative value) selects one worker per available CPU.
    """
    if n_jobs is None:
        env = os.environ.get("IPAS_JOBS")
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(f"IPAS_JOBS must be an integer, got {env!r}")
        else:
            n_jobs = 1
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return n_jobs


def fork_available() -> bool:
    """Whether the persistent-worker pool can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


# -- observability ------------------------------------------------------------

#: latency histogram bucket upper bounds, milliseconds (last bucket open).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


class CampaignStats:
    """Throughput and latency instrumentation for one campaign run."""

    def __init__(self, n_trials: int, n_jobs: int):
        self.n_trials = n_trials
        self.n_jobs = n_jobs
        self.started = time.perf_counter()
        self.finished: Optional[float] = None
        self.completed = 0
        self.resumed = 0  # trials restored from a checkpoint, not executed
        self.outcome_counts: Dict[str, int] = {}
        self.latency_sum: Dict[str, float] = {}
        self.latency_max: Dict[str, float] = {}
        self.histograms: Dict[str, List[int]] = {}
        #: summed per-trial wall time across workers (busy time)
        self.busy_seconds = 0.0

    # -- recording ---------------------------------------------------------

    def record(self, outcome: Outcome, seconds: float) -> None:
        key = outcome.value
        self.completed += 1
        self.busy_seconds += seconds
        self.outcome_counts[key] = self.outcome_counts.get(key, 0) + 1
        self.latency_sum[key] = self.latency_sum.get(key, 0.0) + seconds
        self.latency_max[key] = max(self.latency_max.get(key, 0.0), seconds)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        ms = seconds * 1000.0
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if ms <= bound:
                hist[i] += 1
                break
        else:
            hist[-1] += 1

    def finish(self) -> None:
        self.finished = time.perf_counter()

    # -- derived metrics ---------------------------------------------------

    @property
    def elapsed(self) -> float:
        end = self.finished if self.finished is not None else time.perf_counter()
        return max(end - self.started, 1e-9)

    @property
    def trials_per_second(self) -> float:
        return self.completed / self.elapsed

    @property
    def utilization(self) -> float:
        """Fraction of worker capacity spent executing trials (0..1)."""
        return min(self.busy_seconds / (self.elapsed * max(self.n_jobs, 1)), 1.0)

    @property
    def remaining(self) -> int:
        return max(self.n_trials - self.resumed - self.completed, 0)

    @property
    def eta_seconds(self) -> float:
        rate = self.trials_per_second
        return self.remaining / rate if rate > 0 else float("inf")

    def mean_latency(self, outcome: str) -> float:
        n = self.outcome_counts.get(outcome, 0)
        return self.latency_sum.get(outcome, 0.0) / n if n else 0.0

    def as_dict(self) -> Dict:
        """JSON-compatible snapshot (benchmarks persist this)."""
        return {
            "n_trials": self.n_trials,
            "n_jobs": self.n_jobs,
            "completed": self.completed,
            "resumed": self.resumed,
            "elapsed_seconds": self.elapsed,
            "trials_per_second": self.trials_per_second,
            "worker_utilization": self.utilization,
            "busy_seconds": self.busy_seconds,
            "outcomes": dict(self.outcome_counts),
            "latency_mean_ms": {
                k: 1000.0 * self.mean_latency(k) for k in self.outcome_counts
            },
            "latency_max_ms": {
                k: 1000.0 * v for k, v in self.latency_max.items()
            },
            "latency_histogram_bounds_ms": list(LATENCY_BUCKETS_MS),
            "latency_histograms": {k: list(v) for k, v in self.histograms.items()},
        }

    def progress_line(self) -> str:
        done = self.resumed + self.completed
        eta = self.eta_seconds
        eta_text = f"{eta:5.1f}s" if eta != float("inf") else "   ?  "
        return (
            f"[{done}/{self.n_trials}] "
            f"{self.trials_per_second:7.1f} trials/s  "
            f"util {self.utilization:4.0%}  eta {eta_text}"
        )

    def __repr__(self) -> str:
        return (
            f"<CampaignStats {self.completed}/{self.n_trials} "
            f"{self.trials_per_second:.1f}/s util={self.utilization:.0%}>"
        )


# -- checkpointing -------------------------------------------------------------


class CampaignCheckpoint:
    """JSONL checkpoint of completed trials, keyed by campaign fingerprint.

    Layout: a header line ``{"fingerprint", "n_trials", "seed", "version"}``
    followed by one line per completed trial
    ``{"i", "site_index", "occurrence", "bit", "outcome", "status", "cycles"}``.
    Appending is crash-safe: a torn final line is ignored on load.
    """

    def __init__(self, path: str, fingerprint: str, n_trials: int, seed: int):
        self.path = path
        self.fingerprint = fingerprint
        self.n_trials = n_trials
        self.seed = seed
        self._fh = None
        self._pending = 0

    def load(self) -> Dict[int, Dict]:
        """Completed trial dicts by index; ``{}`` if absent or mismatched."""
        try:
            fh = open(self.path)
        except OSError:
            return {}
        completed: Dict[int, Dict] = {}
        with fh:
            header_line = fh.readline()
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError:
                return {}
            if (
                header.get("fingerprint") != self.fingerprint
                or header.get("n_trials") != self.n_trials
                or header.get("seed") != self.seed
                or header.get("version") != CHECKPOINT_VERSION
            ):
                return {}
            for line in fh:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail from a killed writer
                i = entry.get("i")
                if isinstance(i, int) and 0 <= i < self.n_trials:
                    completed[i] = entry
        return completed

    def open_for_append(self, fresh: bool) -> None:
        """Start writing; ``fresh`` truncates (new or mismatched file)."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if fresh:
            self._fh = open(self.path, "w")
            header = {
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "n_trials": self.n_trials,
                "seed": self.seed,
            }
            self._fh.write(json.dumps(header) + "\n")
            self._fh.flush()
        else:
            self._fh = open(self.path, "a")

    def append(self, index: int, site: FaultSite, site_index: int, record) -> None:
        assert self._fh is not None
        entry = {
            "i": index,
            "site_index": site_index,
            "occurrence": site.occurrence,
            "bit": site.bit,
            "outcome": record.outcome.value,
            "status": record.status,
            "cycles": record.cycles,
        }
        self._fh.write(json.dumps(entry) + "\n")
        self._pending += 1
        if self._pending >= DEFAULT_CHUNK:
            self.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None


def campaign_fingerprint(campaign, n_trials: int, seed: int) -> str:
    """Stable identity of one campaign's trial plan.

    Hashes the seed, trial count, budget, golden baseline, and the indexed
    fault space (per-site function, opcode, and dynamic count) — anything
    that changes the sampled trials or their meaning changes the
    fingerprint, so a stale checkpoint can never be resumed into a
    different campaign.
    """
    campaign.prepare()
    h = hashlib.sha256()
    h.update(
        (
            f"{campaign.entry}|{n_trials}|{seed}|{campaign.budget_factor}"
            f"|{campaign.golden_cycles}|{campaign.total_dynamic_injectable}|"
        ).encode()
    )
    for inst, count in campaign._sites:
        fn = inst.function
        h.update(f"{fn.name if fn else '?'}:{inst.opcode}:{count};".encode())
    return h.hexdigest()[:16]


# -- the engine ---------------------------------------------------------------

#: the prepared campaign, inherited by forked workers (never pickled).
_WORKER_CAMPAIGN = None


def _run_chunk(chunk: Sequence[Tuple[int, int, int, int]]) -> List[Tuple]:
    """Worker body: execute one shard of trials on the inherited campaign."""
    campaign = _WORKER_CAMPAIGN
    sites = campaign._sites
    run_site = campaign.run_site
    perf = time.perf_counter
    out = []
    for index, site_index, occurrence, bit in chunk:
        inst, _count = sites[site_index]
        t0 = perf()
        record = run_site(FaultSite(inst, occurrence, bit))
        out.append(
            (index, record.outcome.value, record.status, record.cycles, perf() - t0)
        )
    return out


def run_campaign(
    campaign,
    n_trials: int,
    seed: int = 0,
    n_jobs: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    progress: bool = False,
    on_trial: Optional[Callable[[int, object], None]] = None,
    chunk_size: Optional[int] = None,
):
    """Execute a campaign's trials, optionally sharded over worker processes.

    Returns the same ``CampaignResult`` (bit-identical records, in trial
    order) for every ``n_jobs``, with a :class:`CampaignStats` attached as
    ``result.stats``.  ``on_trial(index, record)`` fires as each trial
    completes (completion order); an exception raised from it aborts the
    campaign after flushing the checkpoint, which is how interactive
    interruption stays resumable.
    """
    from .campaign import CampaignResult, TrialRecord

    n_jobs = resolve_jobs(n_jobs)
    campaign.prepare()
    sites = campaign.sample_trials(n_trials, seed)
    stats = CampaignStats(n_trials, n_jobs)
    records: List[Optional[TrialRecord]] = [None] * n_trials
    site_index_of = {
        id(inst): k for k, (inst, _count) in enumerate(campaign._sites)
    }

    checkpoint = None
    if checkpoint_path:
        fingerprint = campaign_fingerprint(campaign, n_trials, seed)
        checkpoint = CampaignCheckpoint(checkpoint_path, fingerprint, n_trials, seed)
        completed = checkpoint.load()
        for i, entry in completed.items():
            if records[i] is not None:
                continue
            site = sites[i]
            if (
                entry.get("site_index") != site_index_of[id(site.instruction)]
                or entry.get("occurrence") != site.occurrence
                or entry.get("bit") != site.bit
            ):
                continue  # does not match the deterministic plan; re-run
            records[i] = TrialRecord(
                site, Outcome(entry["outcome"]), entry["status"], entry["cycles"]
            )
            stats.resumed += 1
        checkpoint.open_for_append(fresh=not completed)

    pending = [
        (i, site_index_of[id(sites[i].instruction)], sites[i].occurrence, sites[i].bit)
        for i in range(n_trials)
        if records[i] is None
    ]

    last_progress = [stats.started]

    def deliver(index: int, record: TrialRecord, seconds: float) -> None:
        records[index] = record
        stats.record(record.outcome, seconds)
        if checkpoint is not None:
            checkpoint.append(index, sites[index], pending_site_index[index], record)
        if on_trial is not None:
            on_trial(index, record)
        if progress:
            now = time.perf_counter()
            if now - last_progress[0] >= 0.5 or stats.remaining == 0:
                last_progress[0] = now
                print(stats.progress_line(), file=sys.stderr)

    pending_site_index = {i: si for i, si, _occ, _bit in pending}

    try:
        if len(pending) == 0:
            pass
        elif n_jobs == 1 or len(pending) == 1 or not fork_available():
            perf = time.perf_counter
            for i, _si, _occ, _bit in pending:
                t0 = perf()
                record = campaign.run_site(sites[i])
                deliver(i, record, perf() - t0)
        else:
            _run_pool(campaign, pending, n_jobs, chunk_size, sites, deliver)
    finally:
        stats.finish()
        if checkpoint is not None:
            checkpoint.close()

    counts = OutcomeCounts()
    for record in records:
        assert record is not None
        counts.record(record.outcome)
    result = CampaignResult(records, counts, campaign.golden_cycles, seed)
    result.stats = stats
    return result


def _run_pool(campaign, pending, n_jobs, chunk_size, sites, deliver) -> None:
    """Shard ``pending`` trials over a pool of forked persistent workers."""
    from .campaign import TrialRecord

    global _WORKER_CAMPAIGN
    if chunk_size is None:
        chunk_size = max(1, min(DEFAULT_CHUNK, len(pending) // (n_jobs * 2) or 1))
    chunks = [
        pending[k : k + chunk_size] for k in range(0, len(pending), chunk_size)
    ]
    ctx = multiprocessing.get_context("fork")
    _WORKER_CAMPAIGN = campaign
    try:
        with ctx.Pool(processes=min(n_jobs, len(chunks))) as pool:
            for shard in pool.imap_unordered(_run_chunk, chunks):
                for index, outcome_value, status, cycles, seconds in shard:
                    record = TrialRecord(
                        sites[index], Outcome(outcome_value), status, cycles
                    )
                    deliver(index, record, seconds)
    finally:
        _WORKER_CAMPAIGN = None


# -- generic fork-mapping (used by the MPI campaign) ---------------------------

_WORKER_FN = None


def _fn_chunk(chunk) -> List:
    return [_WORKER_FN(item) for item in chunk]


def fork_map(fn: Callable, items: Sequence, n_jobs: int, chunk_size: int = DEFAULT_CHUNK):
    """Map ``fn`` over ``items`` with forked workers, yielding results in
    completion order.  ``fn`` and ``items`` are inherited by fork, so ``fn``
    may close over arbitrary unpicklable state; each *result* must pickle.
    Falls back to a plain serial map when fork is unavailable or
    ``n_jobs <= 1``.
    """
    if n_jobs <= 1 or len(items) <= 1 or not fork_available():
        for item in items:
            yield fn(item)
        return
    global _WORKER_FN
    chunks = [items[k : k + chunk_size] for k in range(0, len(items), chunk_size)]
    ctx = multiprocessing.get_context("fork")
    _WORKER_FN = fn
    try:
        with ctx.Pool(processes=min(n_jobs, len(chunks))) as pool:
            for shard in pool.imap_unordered(_fn_chunk, chunks):
                for result in shard:
                    yield result
    finally:
        _WORKER_FN = None
