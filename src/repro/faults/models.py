"""Pluggable fault models: what a "fault" is, per campaign.

The paper's model (§3, :mod:`repro.faults.model`) is a single transient
bit-flip in one instruction's result register.  Real silent corruption
is richer — GPU error studies show multi-bit and spatially correlated
patterns, and defect-induced faults corrupt *every* execution of one
instruction (ITHICA).  This module turns the hard-coded assumption into
a registry of :class:`FaultModel` implementations:

==================== ========================================================
``transient-1bit``   the paper's model; the default, bit-identical to the
                     historical engine (its fingerprint signature is empty,
                     so legacy checkpoints and campaign fingerprints are
                     unchanged)
``transient-multibit`` one firing flips ``k`` bits — adjacent
                     (spatially correlated) or uniformly random
``pattern``          one firing applies stuck-at / value-overwrite
                     corruption to the result's register representation
``intermittent``     fires with probability ``p`` on each execution of the
                     chosen instruction inside a ``window`` of executions
``persistent``       fires on *every* execution of the chosen instruction
                     (defect-induced, ITHICA-style)
==================== ========================================================

Each model owns site eligibility, its deterministic pre-sampled trial
plan (all randomness is drawn serially from the campaign RNG or derived
by pure functions of pre-sampled values, so the
bit-identical-at-any-``n_jobs`` contract holds per model), corruption
application, warm-start planning (``first_occurrence``), and whether the
single-bit coverage proof applies to it (``sanitizer_covered``).

The CLI grammar is ``NAME[:key=value,...]`` — e.g.
``transient-multibit:k=3,adjacent=0`` — validated eagerly by
:func:`validate_fault_model_spec` exactly like the ``--chaos`` grammar:
a malformed spec is a usage error naming the bad token, never a
mid-campaign surprise.
"""

from __future__ import annotations

import struct
import zlib
from typing import Callable, Dict, Optional, Tuple, Type

from ..ir.instructions import Instruction
from .model import FaultSite, result_bits

_M64 = (1 << 64) - 1

#: Injection mode names understood by the compiled-block injector
#: epilogue (``repro.interp.compiler``): ``1bit`` is the legacy inline
#: flip, ``once`` fires once at the sampled occurrence through a
#: model-supplied corrupter, ``multi`` consults a model-supplied firing
#: predicate on every execution (multi-shot arming).
MODE_1BIT = "1bit"
MODE_ONCE = "once"
MODE_MULTI = "multi"


class PlannedFault(FaultSite):
    """A :class:`FaultSite` plus model-private pre-sampled detail.

    ``detail`` holds whatever extra randomness the model drew at plan
    time (extra bits, a firing salt).  It is regenerated identically on
    checkpoint resume — trial plans are always re-sampled from the seed —
    so it never needs to cross the worker wire or reach disk.
    """

    __slots__ = ("detail",)

    def __init__(
        self,
        instruction: Instruction,
        occurrence: int,
        bit: int,
        detail: Optional[dict] = None,
    ):
        super().__init__(instruction, occurrence, bit)
        self.detail = detail or {}


class InjectionSpec:
    """A non-default model's armed injection, consumed by
    ``Interpreter.run``.  The legacy ``(instruction, occurrence, bit)``
    triple remains the ``transient-1bit`` fast path."""

    __slots__ = ("instruction", "occurrence", "mode", "corrupt", "fire")

    def __init__(
        self,
        instruction: Instruction,
        occurrence: int,
        mode: str,
        corrupt: Callable,
        fire: Optional[Callable] = None,
    ):
        self.instruction = instruction
        self.occurrence = occurrence
        self.mode = mode
        self.corrupt = corrupt
        self.fire = fire


# -- register-representation corruption helpers -------------------------------


def _f64_to_u(value: float) -> int:
    try:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    except (OverflowError, ValueError):
        return 0


def _u_to_f64(u: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", u & _M64))[0]


def _wrap_int(u: int, bits: int) -> int:
    mask = (1 << bits) - 1
    u &= mask
    if bits > 1 and u >= 1 << (bits - 1):
        u -= 1 << bits
    return u


def make_corrupter(inst: Instruction, op: Callable[[int, int], int]) -> Callable:
    """A closure corrupting ``inst``'s result value via ``op``.

    ``op`` maps ``(unsigned_representation, width) -> new representation``
    and is applied to the IEEE-754 image for floats, the two's-complement
    image for integers (re-signed on the way out), and the raw 64-bit
    image for pointers — the same representations the legacy flip helpers
    in ``repro.interp.compiler`` use.
    """
    t = inst.type
    if t.is_float():
        def corrupt_float(value):
            return _u_to_f64(op(_f64_to_u(value), 64))

        return corrupt_float
    if t.is_pointer():
        def corrupt_pointer(value):
            return _wrap_int(op(value & _M64, 64), 64)

        return corrupt_pointer
    bits = result_bits(inst)
    if bits == 1:
        def corrupt_bool(value):
            return bool(op(1 if value else 0, 1) & 1)

        return corrupt_bool
    mask = (1 << bits) - 1

    def corrupt_int(value):
        return _wrap_int(op(value & mask, bits), bits)

    return corrupt_int


# -- model base ----------------------------------------------------------------


def _int_param(text: str) -> int:
    return int(text, 10)


def _float_param(text: str) -> float:
    return float(text)


def _bool_param(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"not a boolean: {text!r}")


class FaultModel:
    """Base class: one pluggable definition of what a fault is.

    Subclasses declare ``PARAMS`` (``key -> (converter, default)``),
    validate ranges in ``__init__``, and implement sampling + injection.
    """

    #: registry key and CLI spec name
    name: str = "?"
    description: str = ""
    #: whether the fault can fire on more than one dynamic execution —
    #: multi-shot models fail-stop on detection instead of rolling back
    #: (re-execution would deterministically re-corrupt) and plan
    #: warm-start rungs against their *first possible* firing
    multi_shot: bool = False
    #: whether the single-bit coverage proof applies: the campaign
    #: sanitizer only raises ``CoverageViolation`` for covered models
    sanitizer_covered: bool = False
    #: accepted spec parameters: ``key -> (converter, default)``
    PARAMS: Dict[str, Tuple[Callable, object]] = {}

    def __init__(self, **params):
        for key in params:
            if key not in self.PARAMS:
                allowed = ", ".join(self.PARAMS) or "none"
                raise ValueError(
                    f"unknown parameter {key!r} for fault model "
                    f"{self.name!r}: accepted keys: {allowed}"
                )
        for key, (_conv, default) in self.PARAMS.items():
            setattr(self, key, params.get(key, default))

    # -- identity ----------------------------------------------------------

    def signature(self) -> str:
        """The fingerprint component: hashed into campaign fingerprints so
        checkpoints and journals never mix across models.  The default
        model returns ``""`` — legacy fingerprints are unchanged."""
        parts = ",".join(f"{k}={getattr(self, k)!r}" for k in sorted(self.PARAMS))
        return f"model:{self.name}" + (f":{parts}" if parts else "")

    def spec(self) -> str:
        """The canonical ``NAME[:k=v,...]`` spec string for this instance."""
        parts = ",".join(f"{key}={getattr(self, key)}" for key in sorted(self.PARAMS))
        return self.name + (f":{parts}" if parts else "")

    def __repr__(self) -> str:
        return f"<FaultModel {self.spec()}>"

    # -- trial planning ----------------------------------------------------

    def sample_site(self, campaign, rng) -> FaultSite:
        """Pre-sample one trial.  All randomness must come from ``rng``
        here, serially — workers never sample."""
        raise NotImplementedError

    def injection_for(self, site: FaultSite):
        """The injection object ``Interpreter.run`` arms for ``site``."""
        raise NotImplementedError

    def first_occurrence(self, site: FaultSite) -> int:
        """The earliest dynamic execution at which this trial can fire;
        warm-start planning must restore a rung strictly before it."""
        return site.occurrence


class Transient1Bit(FaultModel):
    """The paper's model: one transient bit-flip, once (§3)."""

    name = "transient-1bit"
    description = "single transient bit-flip in one result register"
    sanitizer_covered = True

    def signature(self) -> str:
        return ""  # the legacy model: fingerprints stay byte-identical

    def sample_site(self, campaign, rng) -> FaultSite:
        # Delegate to the campaign's historical sampler so the RNG
        # consumption — and therefore every trial plan — is byte-identical
        # to the pre-registry engine.
        return campaign.sample_site(rng)

    def injection_for(self, site: FaultSite):
        return site.as_injection()  # the interpreter's legacy fast path


class TransientMultiBit(FaultModel):
    """One firing flips ``k`` bits — adjacent or uniformly random."""

    name = "transient-multibit"
    description = "one firing flips k adjacent or random bits"
    PARAMS = {"k": (_int_param, 2), "adjacent": (_bool_param, True)}

    def __init__(self, **params):
        super().__init__(**params)
        if self.k < 1:
            raise ValueError(f"fault model {self.name!r}: k must be >= 1, got {self.k}")

    def sample_site(self, campaign, rng) -> PlannedFault:
        base = campaign.sample_site(rng)
        width = result_bits(base.instruction)
        n = min(self.k, width)
        if self.adjacent:
            bits = tuple((base.bit + j) % width for j in range(n))
            primary = base.bit
        else:
            bits = tuple(sorted(rng.sample(range(width), n)))
            primary = bits[0]
        return PlannedFault(
            base.instruction, base.occurrence, primary, {"bits": bits}
        )

    def injection_for(self, site: PlannedFault):
        mask = 0
        for bit in site.detail["bits"]:
            mask |= 1 << bit
        corrupt = make_corrupter(site.instruction, lambda u, w: u ^ mask)
        return InjectionSpec(site.instruction, site.occurrence, MODE_ONCE, corrupt)


class PatternFault(FaultModel):
    """One firing applies stuck-at / value-overwrite corruption."""

    name = "pattern"
    description = "stuck-at / value-overwrite corruption of the result"
    PARAMS = {"kind": (str, "stuck0")}
    KINDS = ("stuck0", "stuck1", "zero", "max")

    def __init__(self, **params):
        super().__init__(**params)
        if self.kind not in self.KINDS:
            raise ValueError(
                f"fault model {self.name!r}: unknown kind {self.kind!r}: "
                f"expected one of {', '.join(self.KINDS)}"
            )

    def sample_site(self, campaign, rng) -> FaultSite:
        return campaign.sample_site(rng)

    def injection_for(self, site: FaultSite):
        kind, bit = self.kind, site.bit
        if kind == "stuck0":
            op = lambda u, w: u & ~(1 << bit)  # may be a no-op: realistic
        elif kind == "stuck1":
            op = lambda u, w: u | (1 << bit)
        elif kind == "zero":
            op = lambda u, w: 0
        else:  # max: all-ones representation
            op = lambda u, w: (1 << w) - 1
        corrupt = make_corrupter(site.instruction, op)
        return InjectionSpec(site.instruction, site.occurrence, MODE_ONCE, corrupt)


class Intermittent(FaultModel):
    """Fires with probability ``p`` per execution over a trial window.

    The firing decision is a pure function of a pre-sampled per-trial
    salt and the execution index (a CRC32 hash scaled to [0, 1)), so it
    is independent of worker count and execution order — the determinism
    contract holds without serialising any per-execution randomness.
    """

    name = "intermittent"
    description = "fires with probability p per execution over a window"
    multi_shot = True
    PARAMS = {"p": (_float_param, 0.5), "window": (_int_param, 8)}

    def __init__(self, **params):
        super().__init__(**params)
        if not 0.0 < self.p <= 1.0:
            raise ValueError(
                f"fault model {self.name!r}: p must be in (0, 1], got {self.p}"
            )
        if self.window < 1:
            raise ValueError(
                f"fault model {self.name!r}: window must be >= 1, "
                f"got {self.window}"
            )

    def sample_site(self, campaign, rng) -> PlannedFault:
        base = campaign.sample_site(rng)
        salt = rng.getrandbits(32)
        return PlannedFault(base.instruction, base.occurrence, base.bit, {"salt": salt})

    def injection_for(self, site: PlannedFault):
        start, end = site.occurrence, site.occurrence + self.window
        salt = site.detail["salt"]
        threshold = int(self.p * 2**32)
        bit = site.bit

        def fire(k):
            if k < start or k >= end:
                return False
            return zlib.crc32(struct.pack("<II", salt, k)) < threshold

        corrupt = make_corrupter(site.instruction, lambda u, w: u ^ (1 << bit))
        return InjectionSpec(
            site.instruction, site.occurrence, MODE_MULTI, corrupt, fire
        )


class Persistent(FaultModel):
    """Fires on every execution of the chosen instruction (ITHICA-style)."""

    name = "persistent"
    description = "fires on every execution of the instruction"
    multi_shot = True

    def sample_site(self, campaign, rng) -> PlannedFault:
        base = campaign.sample_site(rng)
        # A defect corrupts the instruction from its first execution on;
        # the sampled occurrence is irrelevant, so pin it to 1 (which also
        # pins warm-start planning to a cold fallback).
        return PlannedFault(base.instruction, 1, base.bit)

    def injection_for(self, site: PlannedFault):
        bit = site.bit
        corrupt = make_corrupter(site.instruction, lambda u, w: u ^ (1 << bit))
        return InjectionSpec(
            site.instruction, 1, MODE_MULTI, corrupt, lambda k: True
        )

    def first_occurrence(self, site: FaultSite) -> int:
        return 1


#: The registry.  Insertion order is the presentation order everywhere
#: (docs table, experiments driver, CI matrix).
FAULT_MODELS: Dict[str, Type[FaultModel]] = {
    Transient1Bit.name: Transient1Bit,
    TransientMultiBit.name: TransientMultiBit,
    PatternFault.name: PatternFault,
    Intermittent.name: Intermittent,
    Persistent.name: Persistent,
}

DEFAULT_FAULT_MODEL = Transient1Bit.name


def _split_spec(spec: str) -> Tuple[str, Dict[str, object]]:
    name, sep, rest = spec.strip().partition(":")
    name = name.strip().lower()
    if name not in FAULT_MODELS:
        raise ValueError(
            f"unknown fault model {name!r}: expected one of "
            f"{', '.join(FAULT_MODELS)}"
        )
    cls = FAULT_MODELS[name]
    params: Dict[str, object] = {}
    if sep and rest.strip():
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, value = part.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or key not in cls.PARAMS:
                allowed = ", ".join(cls.PARAMS) or "none"
                raise ValueError(
                    f"bad fault-model parameter {part!r}: {name} expects "
                    f"key=value with keys: {allowed}"
                )
            conv = cls.PARAMS[key][0]
            try:
                params[key] = conv(value)
            except ValueError:
                raise ValueError(
                    f"bad fault-model parameter {part!r}: cannot parse "
                    f"value {value!r}"
                ) from None
    return name, params


def validate_fault_model_spec(spec: str) -> str:
    """Grammar + range check only; raises ``ValueError`` naming the bad
    token.  Mirrors ``repro.faults.chaos.validate_chaos_spec`` so the CLI
    can reject a typo at argparse time."""
    parse_fault_model_spec(spec)
    return spec


def parse_fault_model_spec(spec: str) -> FaultModel:
    """Build a model instance from a ``NAME[:key=value,...]`` spec."""
    name, params = _split_spec(spec)
    return FAULT_MODELS[name](**params)


def get_fault_model(model=None) -> FaultModel:
    """Resolve a campaign's ``fault_model`` argument: ``None`` means the
    default ``transient-1bit``; a string is parsed as a spec; a
    :class:`FaultModel` instance passes through."""
    if model is None:
        return Transient1Bit()
    if isinstance(model, FaultModel):
        return model
    if isinstance(model, str):
        return parse_fault_model_spec(model)
    raise TypeError(
        f"fault_model must be None, a spec string, or a FaultModel, "
        f"got {type(model).__name__}"
    )
