"""Evaluation of protected programs (paper §6.2–§6.3).

For each technique variant this module measures:

* **coverage** — the outcome proportions of a statistical fault-injection
  campaign (the Fig. 5 bars);
* **slowdown** — fault-free protected cycles over fault-free unprotected
  cycles (the Fig. 6 x-axis; deterministic on the cycle cost model);
* **SOC reduction** — the drop in SOC fraction relative to the unprotected
  campaign (the Fig. 6 y-axis);

and selects best configurations by the paper's *ideal point* criterion
(§6.3): the configuration closest, in the plotted units, to
(slowdown = 1, SOC reduction = 100%).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..faults.campaign import Campaign
from ..faults.outcomes import OutcomeCounts, soc_reduction_percent
from ..interp.interpreter import Interpreter
from ..ir.module import Module
from ..recover.runtime import RecoveryPolicy, summarize_telemetry
from ..workloads.base import Workload


class TechniqueEvaluation:
    """Coverage + performance of one protected (or unprotected) variant.

    ``recovery`` is a campaign-level telemetry summary (see
    :func:`repro.recover.summarize_telemetry`) when the evaluation ran
    under the rollback runtime, else ``None``.
    """

    def __init__(
        self,
        technique: str,
        config_label: str,
        counts: OutcomeCounts,
        golden_cycles: int,
        slowdown: float,
        duplicated_fraction: float,
        soc_reduction: float,
        recovery: Optional[Dict] = None,
    ):
        self.technique = technique
        self.config_label = config_label
        self.counts = counts
        self.golden_cycles = golden_cycles
        self.slowdown = slowdown
        self.duplicated_fraction = duplicated_fraction
        self.soc_reduction = soc_reduction
        self.recovery = recovery

    @property
    def soc_fraction(self) -> float:
        return self.counts.soc_fraction

    @property
    def corrected_fraction(self) -> float:
        return self.counts.corrected_fraction

    def distance_to_ideal(self) -> float:
        """Euclidean distance to (slowdown=1, reduction=100) in plot units."""
        return math.hypot(self.slowdown - 1.0, self.soc_reduction - 100.0)

    def __repr__(self) -> str:
        return (
            f"<TechniqueEvaluation {self.technique}/{self.config_label} "
            f"soc={self.soc_fraction:.3f} slowdown={self.slowdown:.3f}>"
        )


def evaluate_variant(
    module: Module,
    workload: Workload,
    unprotected_soc_fraction: float,
    unprotected_cycles: int,
    technique: str,
    config_label: str,
    trials: int,
    seed: int,
    duplicated_fraction: float = 0.0,
    input_id: int = 1,
    n_jobs: Optional[int] = None,
    supervision=None,
    recovery: Optional[RecoveryPolicy] = None,
    obs=None,
) -> TechniqueEvaluation:
    """Run the evaluation campaign for one module variant.

    ``supervision`` (a ``repro.faults.SupervisorPolicy``) controls worker
    recovery for the underlying campaign; ``None`` uses the env defaults.
    ``recovery`` (a ``repro.recover.RecoveryPolicy``) arms rollback
    re-execution, letting fired checks resolve as CORRECTED instead of
    fail-stop DETECTED.  ``obs`` (a ``repro.obs.Observation``) attaches
    tracing and a shared metrics registry to the campaign.
    """
    interp = workload.make_interpreter(input_id=input_id, module=module)
    campaign = Campaign(
        interp,
        verifier=workload.verifier(),
        entry=workload.entry,
        budget_factor=workload.budget_factor,
        recovery=recovery,
    )
    result = campaign.run(
        trials, seed=seed, n_jobs=n_jobs, supervision=supervision, obs=obs
    )
    slowdown = (
        campaign.golden_cycles / unprotected_cycles if unprotected_cycles else 1.0
    )
    reduction = soc_reduction_percent(
        unprotected_soc_fraction, result.counts.soc_fraction
    )
    recovery_summary = (
        summarize_telemetry(r.recovery for r in result.records)
        if recovery is not None
        else None
    )
    return TechniqueEvaluation(
        technique,
        config_label,
        result.counts,
        campaign.golden_cycles,
        slowdown,
        duplicated_fraction,
        reduction,
        recovery=recovery_summary,
    )


def evaluate_unprotected(
    workload: Workload,
    trials: int,
    seed: int,
    input_id: int = 1,
    n_jobs: Optional[int] = None,
    supervision=None,
    obs=None,
) -> TechniqueEvaluation:
    """The reference campaign on the clean module."""
    module = workload.compile()
    interp = workload.make_interpreter(input_id=input_id, module=module)
    campaign = Campaign(
        interp,
        verifier=workload.verifier(),
        entry=workload.entry,
        budget_factor=workload.budget_factor,
    )
    result = campaign.run(
        trials, seed=seed, n_jobs=n_jobs, supervision=supervision, obs=obs
    )
    return TechniqueEvaluation(
        "unprotected",
        "-",
        result.counts,
        campaign.golden_cycles,
        1.0,
        0.0,
        0.0,
    )


def ideal_point_best(
    evaluations: List[TechniqueEvaluation],
) -> Optional[TechniqueEvaluation]:
    """Paper §6.3: the configuration nearest (1, 100) in plot units."""
    if not evaluations:
        return None
    return min(evaluations, key=lambda e: e.distance_to_ideal())
