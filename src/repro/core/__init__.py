"""repro.core — the IPAS pipeline (paper Fig. 1) and its evaluation."""

from .scale import ExperimentScale
from .pipeline import (
    CollectedData,
    IpasPipeline,
    LABEL_SOC,
    LABEL_SYMPTOM,
    ProtectedVariant,
    TrainedConfig,
    TrainingData,
    collect_data,
)
from .evaluation import (
    TechniqueEvaluation,
    evaluate_unprotected,
    evaluate_variant,
    ideal_point_best,
)

__all__ = [
    "ExperimentScale",
    "CollectedData", "collect_data",
    "IpasPipeline", "LABEL_SOC", "LABEL_SYMPTOM", "ProtectedVariant",
    "TrainedConfig", "TrainingData",
    "TechniqueEvaluation", "evaluate_unprotected", "evaluate_variant",
    "ideal_point_best",
]
