"""The IPAS pipeline — the four steps of paper Fig. 1.

1. *Verification routine*: supplied by the workload (Table 2).
2. *Data collection*: a statistical fault-injection campaign on the
   training input labels each injected instruction's feature vector as
   SOC-generating or not (or symptom-generating, for the Shoestring-style
   baseline of §5.3).
3. *Training*: stratified-CV grid search over (C, γ) ranked by the Eq.-1
   F-score; the top-N configurations are kept (§6.1).
4. *Application protection*: each configuration's classifier nominates the
   instructions to protect, and the duplication pass rewrites a fresh
   module.

Wall-clock timings of steps 3 and 4 are recorded per configuration
(paper Table 6).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults.campaign import Campaign, CampaignResult
from ..faults.outcomes import Outcome
from ..features.extract import FeatureExtractor
from ..interp.interpreter import Interpreter
from ..ir.module import Module
from ..ml.crossval import GridSearch, SvmConfig, paper_grid
from ..ml.scaling import StandardScaler
from ..ml.svm import SVC
from ..protect.duplication import DuplicationReport, duplicate_instructions
from ..protect.selectors import IpasSelector, LearnedSelector, ShoestringStyleSelector
from ..workloads.base import Workload
from .scale import ExperimentScale

#: labeling policies for step 2
LABEL_SOC = "soc"          # class 1 = SOC-generating (IPAS)
LABEL_SYMPTOM = "symptom"  # class 1 = symptom-generating (baseline)


class CollectedData:
    """One campaign's raw material, shareable between labelings.

    The IPAS and Shoestring-style pipelines differ only in how trials are
    *labeled* (SOC vs symptom), so a single campaign on the training input
    feeds both — exactly as one FlipIt campaign log could be re-labeled.
    """

    def __init__(self, module: Module, campaign: CampaignResult, X: np.ndarray):
        self.module = module
        self.campaign = campaign
        self.X = X


def collect_data(
    workload: Workload,
    n_samples: int,
    seed: int = 0,
    n_jobs: Optional[int] = None,
    supervision=None,
    recovery=None,
) -> CollectedData:
    """Step 2 of Fig. 1: statistical fault injection plus feature vectors.

    ``supervision`` (a ``repro.faults.SupervisorPolicy``) controls worker
    recovery for the collection campaign; ``None`` uses the env defaults.
    ``recovery`` (a ``repro.recover.RecoveryPolicy``) arms rollback
    re-execution; leave it ``None`` for paper-faithful training labels —
    the clean training module carries no checks, so enabling it only
    matters when collecting from an already protected module.
    """
    module = workload.compile()
    interp = workload.make_interpreter(input_id=1, module=module)
    campaign = Campaign(
        interp,
        verifier=workload.verifier(),
        entry=workload.entry,
        budget_factor=workload.budget_factor,
        recovery=recovery,
    )
    result = campaign.run(n_samples, seed=seed, n_jobs=n_jobs, supervision=supervision)
    extractor = FeatureExtractor(module)
    X = extractor.extract_many([r.instruction for r in result.records])
    return CollectedData(module, result, X)


class TrainingData:
    """Labeled feature vectors from the fault-injection campaign."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        campaign: CampaignResult,
        labeling: str,
    ):
        self.X = X
        self.y = y
        self.campaign = campaign
        self.labeling = labeling

    @property
    def positive_fraction(self) -> float:
        return float(np.mean(self.y)) if len(self.y) else 0.0

    def __len__(self) -> int:
        return len(self.y)


class TrainedConfig:
    """One (C, γ) configuration fitted on the full training set."""

    def __init__(self, config: SvmConfig, model: SVC, scaler: StandardScaler):
        self.config = config
        self.model = model
        self.scaler = scaler

    def selector(self, protect_positive: bool) -> LearnedSelector:
        if protect_positive:
            return IpasSelector(self.model, self.scaler)
        return ShoestringStyleSelector(self.model, self.scaler)

    def __repr__(self) -> str:
        return f"<TrainedConfig {self.config!r}>"


class ProtectedVariant:
    """A protected module plus how it was produced."""

    def __init__(
        self,
        module: Module,
        report: DuplicationReport,
        technique: str,
        config: Optional[SvmConfig],
        duplication_seconds: float,
    ):
        self.module = module
        self.report = report
        self.technique = technique
        self.config = config
        self.duplication_seconds = duplication_seconds


class IpasPipeline:
    """End-to-end IPAS (or baseline) for one workload."""

    def __init__(
        self,
        workload: Workload,
        scale: Optional[ExperimentScale] = None,
        labeling: str = LABEL_SOC,
        seed: int = 0,
        collected: Optional[CollectedData] = None,
        n_jobs: Optional[int] = None,
        supervision=None,
    ):
        if labeling not in (LABEL_SOC, LABEL_SYMPTOM):
            raise ValueError(f"unknown labeling {labeling!r}")
        self.workload = workload
        self.scale = scale or ExperimentScale.from_env()
        self.labeling = labeling
        self.seed = seed
        self.n_jobs = n_jobs
        self.supervision = supervision
        self.training_seconds = 0.0
        self._collected = collected
        self._training_data: Optional[TrainingData] = None
        self._configs: Optional[List[TrainedConfig]] = None

    # -- step 2: data collection ------------------------------------------------

    def collect_training_data(self) -> TrainingData:
        """Fault-injection campaign on the training input, feature-labeled."""
        if self._training_data is not None:
            return self._training_data
        if self._collected is None:
            self._collected = collect_data(
                self.workload, self.scale.train_samples, self.seed,
                n_jobs=self.n_jobs, supervision=self.supervision,
            )
        collected = self._collected
        y = np.array(
            [
                1 if self._is_positive(r.outcome) else 0
                for r in collected.campaign.records
            ],
            dtype=np.int64,
        )
        self._training_data = TrainingData(
            collected.X, y, collected.campaign, self.labeling
        )
        return self._training_data

    def _is_positive(self, outcome: Outcome) -> bool:
        if self.labeling == LABEL_SOC:
            return outcome is Outcome.SOC
        return outcome.is_symptom

    # -- step 3: training -----------------------------------------------------------

    def train(self) -> List[TrainedConfig]:
        """Grid-search (C, γ), keep the top-N, fit each on all data."""
        if self._configs is not None:
            return self._configs
        data = self.collect_training_data()
        start = time.perf_counter()
        scaler = StandardScaler().fit(data.X)
        X = scaler.transform(data.X)
        search = GridSearch(
            grid=paper_grid(self.scale.grid_configs), k=5, seed=self.seed
        )
        top = search.top_configs(X, data.y, n=self.scale.top_n)
        configs: List[TrainedConfig] = []
        for cfg in top:
            model = cfg.make()
            model.fit(X, data.y)
            configs.append(TrainedConfig(cfg, model, scaler))
        self.training_seconds = time.perf_counter() - start
        self._configs = configs
        return configs

    # -- step 4: protection -----------------------------------------------------------

    def protect(self, trained: TrainedConfig) -> ProtectedVariant:
        """Produce a protected module using one trained configuration."""
        module = self.workload.compile()
        start = time.perf_counter()
        selector = trained.selector(protect_positive=self.labeling == LABEL_SOC)
        selected = selector.select(module)
        report = duplicate_instructions(module, selected)
        elapsed = time.perf_counter() - start
        technique = "ipas" if self.labeling == LABEL_SOC else "baseline"
        return ProtectedVariant(module, report, technique, trained.config, elapsed)

    def protect_all(self) -> List[ProtectedVariant]:
        """Protected variants for every top-N configuration."""
        return [self.protect(tc) for tc in self.train()]
