"""Experiment scaling (paper-scale vs laptop-scale campaigns).

The paper's campaign sizes — 2,500 training samples per code (§4.1), 500
SVM configurations (§4.3.2), 1,024 evaluation injections per technique ×
configuration (§5.4) — are sized for a cluster.  The same pipeline runs
here at configurable scale; the presets:

=========  ========================================================
paper      the paper's numbers (2500 / 500 / 1024, top-5)
default    laptop-scale: same shape, minutes instead of hours
quick      CI-scale: smoke validation of the full pipeline
=========  ========================================================

Pick one with ``ExperimentScale.preset(name)`` or the ``IPAS_SCALE``
environment variable (read by :func:`ExperimentScale.from_env`).
Individual fields can be overridden with ``IPAS_TRAIN_SAMPLES``,
``IPAS_GRID_CONFIGS``, ``IPAS_EVAL_TRIALS``, and ``IPAS_TOP_N``.
"""

from __future__ import annotations

import os
from typing import Dict


class ExperimentScale:
    """Campaign sizes for one end-to-end IPAS experiment."""

    PRESETS: Dict[str, Dict[str, int]] = {
        "paper": {
            "train_samples": 2500,
            "grid_configs": 500,
            "eval_trials": 1024,
            "top_n": 5,
        },
        "default": {
            "train_samples": 400,
            "grid_configs": 48,
            "eval_trials": 128,
            "top_n": 5,
        },
        "quick": {
            "train_samples": 150,
            "grid_configs": 12,
            "eval_trials": 48,
            "top_n": 3,
        },
    }

    def __init__(
        self,
        train_samples: int,
        grid_configs: int,
        eval_trials: int,
        top_n: int,
        name: str = "custom",
    ):
        if min(train_samples, grid_configs, eval_trials, top_n) < 1:
            raise ValueError("all scale parameters must be >= 1")
        self.train_samples = train_samples
        self.grid_configs = grid_configs
        self.eval_trials = eval_trials
        self.top_n = top_n
        self.name = name

    @classmethod
    def preset(cls, name: str) -> "ExperimentScale":
        try:
            params = cls.PRESETS[name]
        except KeyError:
            raise KeyError(
                f"unknown scale preset {name!r}; choose from {list(cls.PRESETS)}"
            ) from None
        return cls(name=name, **params)

    @classmethod
    def from_env(cls) -> "ExperimentScale":
        scale = cls.preset(os.environ.get("IPAS_SCALE", "default"))
        overrides = {
            "train_samples": "IPAS_TRAIN_SAMPLES",
            "grid_configs": "IPAS_GRID_CONFIGS",
            "eval_trials": "IPAS_EVAL_TRIALS",
            "top_n": "IPAS_TOP_N",
        }
        custom = False
        for attr, env in overrides.items():
            value = os.environ.get(env)
            if value is not None:
                setattr(scale, attr, max(int(value), 1))
                custom = True
        if custom:
            scale.name = scale.name + "+env"
        return scale

    def cache_key(self) -> str:
        return (
            f"t{self.train_samples}-g{self.grid_configs}"
            f"-e{self.eval_trials}-n{self.top_n}"
        )

    def __repr__(self) -> str:
        return (
            f"<ExperimentScale {self.name}: train={self.train_samples} "
            f"grid={self.grid_configs} eval={self.eval_trials} topN={self.top_n}>"
        )
