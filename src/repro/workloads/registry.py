"""Workload registry (the paper's five evaluation codes, Table 2)."""

from __future__ import annotations

from typing import Dict, List, Type

from .amg import AmgWorkload
from .base import Workload
from .comd import ComdWorkload
from .fft import FftWorkload
from .hpccg import HpccgWorkload
from .is_sort import IsWorkload
from .particles import ParticlesWorkload

#: Paper order: two mini-apps, two kernels, one benchmark — plus the
#: long-horizon particle disk added for multi-shot fault-model studies.
WORKLOAD_CLASSES: Dict[str, Type[Workload]] = {
    "comd": ComdWorkload,
    "hpccg": HpccgWorkload,
    "amg": AmgWorkload,
    "fft": FftWorkload,
    "is": IsWorkload,
    "particles": ParticlesWorkload,
}

WORKLOAD_NAMES: List[str] = list(WORKLOAD_CLASSES)


def get_workload(name: str) -> Workload:
    """Instantiate a workload by its short name ('comd', 'hpccg', ...)."""
    try:
        return WORKLOAD_CLASSES[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(WORKLOAD_NAMES)}"
        ) from None


def all_workloads() -> List[Workload]:
    """One instance of each of the five evaluation workloads."""
    return [cls() for cls in WORKLOAD_CLASSES.values()]
