"""Workload abstraction (paper Table 2 + Table 5).

A workload bundles: the scil program (written SPMD-style so the same source
runs serially and under the simulated MPI runtime), the input ladder
(input 1 trains IPAS; inputs 2–4 test transfer, per Table 5), and the
output-verification routine that defines SOC for this code (Table 2).

``compile()`` always returns a *fresh* module: the IPAS pipeline protects
the same program under many configurations, and each protected variant
starts from an identical clean module.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..faults.campaign import OutputVerifier
from ..frontend import compile_to_ir
from ..interp.interpreter import Interpreter
from ..ir.module import Module
from ..parallel.mpi import MpiJob


class Workload:
    """Base class; concrete workloads define the class attributes."""

    #: short identifier ("comd", "hpccg", ...)
    name: str = "abstract"
    #: one-line description for reports
    description: str = ""
    #: scil source text
    source: str = ""
    #: input id -> {global name: value}; input 1 is the training input
    inputs: Dict[int, Dict[str, int]] = {}
    #: human-readable labels for the input ladder (Table 5)
    input_labels: Dict[int, str] = {}
    #: entry point
    entry: str = "main"
    #: hang budget as a multiple of the golden run
    budget_factor: float = 10.0

    # -- construction -----------------------------------------------------------

    def compile(self, optimize: bool = True) -> Module:
        """A fresh, optimized, verified module of this workload."""
        return compile_to_ir(self.source, name=self.name, optimize=optimize)

    def make_interpreter(
        self,
        input_id: int = 1,
        module: Optional[Module] = None,
        mpi=None,
    ) -> Interpreter:
        """An interpreter primed with the chosen input's global overrides."""
        if input_id not in self.inputs:
            raise KeyError(f"{self.name} has no input {input_id}")
        interp = Interpreter(module if module is not None else self.compile(), mpi=mpi)
        for name, value in self.inputs[input_id].items():
            interp.set_global_override(name, value)
        return interp

    def make_job(
        self,
        n_ranks: int,
        input_id: int = 1,
        module: Optional[Module] = None,
    ) -> MpiJob:
        """An SPMD job over ``n_ranks`` simulated MPI ranks."""
        if input_id not in self.inputs:
            raise KeyError(f"{self.name} has no input {input_id}")
        return MpiJob(
            module if module is not None else self.compile(),
            n_ranks,
            overrides=self.inputs[input_id],
        )

    def verifier(self) -> OutputVerifier:
        """The Table-2 verification routine; default: exact output match."""
        return OutputVerifier()

    # -- metadata --------------------------------------------------------------------

    @property
    def lines_of_code(self) -> int:
        """Non-blank, non-comment source lines (paper Table 3)."""
        count = 0
        for line in self.source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count

    def static_instructions(self) -> int:
        """Static IR instruction count after optimization (paper Table 3)."""
        return self.compile().static_instruction_count

    def __repr__(self) -> str:
        return f"<Workload {self.name}: {self.description}>"


class ToleranceVerifier(OutputVerifier):
    """Accepts outputs within an absolute tolerance of the golden values,
    for the named globals (others are ignored)."""

    def __init__(self, globals_and_tolerances: Dict[str, float]):
        self.tolerances = dict(globals_and_tolerances)

    def capture(self, interp: Interpreter):
        return {name: interp.read_global(name) for name in self.tolerances}

    def check(self, interp: Interpreter, golden) -> bool:
        for name, tol in self.tolerances.items():
            expected = golden[name]
            actual = interp.read_global(name)
            if isinstance(expected, list):
                for a, e in zip(actual, expected):
                    if not _within(a, e, tol):
                        return False
            else:
                if not _within(actual, expected, tol):
                    return False
        return True


def _within(actual, expected, tol: float) -> bool:
    try:
        diff = abs(float(actual) - float(expected))
    except (TypeError, ValueError, OverflowError):
        return False
    if diff != diff:  # NaN anywhere in the output is corruption
        return False
    return diff <= tol
