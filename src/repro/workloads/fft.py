"""FFT: batched complex radix-2 Cooley-Tukey, forward + inverse.

The paper's kernel computes the 2-D FFT (and its inverse) of a matrix in a
loop.  This scil port transforms a small batch of rows (a matrix), forward
then inverse, for a few sweeps: round-trip floating-point error accumulates
exactly as in the original, and every butterfly is exercised in both
directions.  SPMD: rows are partitioned across ranks; the output matrix is
assembled with a zero-and-allreduce exchange.

Verification (paper Table 2): the L2 norm between the output of the
error-free run and the output of a fault-injection run must stay below
1e-6, computed host-side by :class:`FftVerifier`.
"""

from __future__ import annotations

import math

from ..interp.interpreter import Interpreter
from .base import OutputVerifier, Workload

_SOURCE = """
// Batched complex radix-2 FFT (forward + inverse), Cooley-Tukey.
int param_n = 64;               // transform length (power of two, max 512)
int param_rows = 4;             // batch rows ("matrix" height)
int param_sweeps = 2;           // forward+inverse round trips

output double out_re[2048];     // final data, rows concatenated
output double out_im[2048];

double re[2048];
double im[2048];

int bit_reverse(int k, int logn) {
    int r = 0;
    for (int b = 0; b < logn; b = b + 1) {
        r = (r << 1) | (k & 1);
        k = k >> 1;
    }
    return r;
}

// In-place radix-2 FFT of row starting at `base`; sign = -1 forward, +1 inverse.
void fft_row(int base, int n, int logn, double sign) {
    for (int k = 0; k < n; k = k + 1) {
        int j = bit_reverse(k, logn);
        if (j > k) {
            double tr = re[base + k];
            double ti = im[base + k];
            re[base + k] = re[base + j];
            im[base + k] = im[base + j];
            re[base + j] = tr;
            im[base + j] = ti;
        }
    }
    for (int len = 2; len <= n; len = len << 1) {
        double angle = sign * 6.283185307179586 / (double)len;
        double wlen_re = cos(angle);
        double wlen_im = sin(angle);
        for (int start = 0; start < n; start = start + len) {
            double w_re = 1.0;
            double w_im = 0.0;
            int half = len >> 1;
            for (int k = 0; k < half; k = k + 1) {
                int a = base + start + k;
                int b = a + half;
                double ur = re[a];
                double ui = im[a];
                double vr = re[b] * w_re - im[b] * w_im;
                double vi = re[b] * w_im + im[b] * w_re;
                re[a] = ur + vr;
                im[a] = ui + vi;
                re[b] = ur - vr;
                im[b] = ui - vi;
                double nw_re = w_re * wlen_re - w_im * wlen_im;
                w_im = w_re * wlen_im + w_im * wlen_re;
                w_re = nw_re;
            }
        }
    }
    if (sign > 0.0) {
        double inv = 1.0 / (double)n;
        for (int k = 0; k < n; k = k + 1) {
            re[base + k] = re[base + k] * inv;
            im[base + k] = im[base + k] * inv;
        }
    }
}

void main() {
    int n = param_n;
    int rows = param_rows;
    int sweeps = param_sweeps;
    int logn = 0;
    while ((1 << logn) < n) { logn = logn + 1; }

    int rank = mpi_rank();
    int size = mpi_size();
    int chunk = (rows + size - 1) / size;
    int r0 = rank * chunk;
    int r1 = r0 + chunk;
    if (r1 > rows) { r1 = rows; }
    if (r0 > rows) { r0 = rows; }

    // Deterministic input signal: a few smooth modes per row.
    int total = rows * n;
    for (int row = 0; row < rows; row = row + 1) {
        for (int k = 0; k < n; k = k + 1) {
            double t = (double)k / (double)n;
            double phase = 6.283185307179586 * t;
            re[row * n + k] = sin(phase * (double)(row + 1))
                            + 0.5 * cos(phase * 3.0);
            im[row * n + k] = 0.25 * sin(phase * 2.0);
        }
    }

    for (int sweep = 0; sweep < sweeps; sweep = sweep + 1) {
        for (int row = r0; row < r1; row = row + 1) {
            fft_row(row * n, n, logn, -1.0);
            fft_row(row * n, n, logn, 1.0);
        }
    }

    // Assemble the full matrix on every rank and publish the output.
    for (int i = 0; i < total; i = i + 1) {
        int row = i / n;
        if (row < r0 || row >= r1) { re[i] = 0.0; im[i] = 0.0; }
    }
    mpi_allreduce_sum_array(re, total);
    mpi_allreduce_sum_array(im, total);
    for (int i = 0; i < total; i = i + 1) {
        out_re[i] = re[i];
        out_im[i] = im[i];
    }
}
"""


class FftVerifier(OutputVerifier):
    """L2-norm-vs-golden check with the paper's 1e-6 threshold."""

    def __init__(self, tol: float = 1e-6):
        self.tol = tol

    def capture(self, interp: Interpreter):
        n = interp.read_global("param_n")
        rows = interp.read_global("param_rows")
        total = n * rows
        return {
            "re": interp.read_global("out_re")[:total],
            "im": interp.read_global("out_im")[:total],
        }

    def check(self, interp: Interpreter, golden) -> bool:
        re = interp.read_global("out_re")
        im = interp.read_global("out_im")
        acc = 0.0
        for i, (gr, gi) in enumerate(zip(golden["re"], golden["im"])):
            try:
                dr = float(re[i]) - gr
                di = float(im[i]) - gi
            except (TypeError, ValueError, OverflowError):
                return False
            acc += dr * dr + di * di
        if acc != acc:  # NaN
            return False
        return math.sqrt(acc) <= self.tol


class FftWorkload(Workload):
    name = "fft"
    description = "Batched complex radix-2 FFT, forward + inverse round trips"
    source = _SOURCE
    inputs = {
        1: {"param_n": 64},
        2: {"param_n": 128},
        3: {"param_n": 256},
        4: {"param_n": 512},
    }
    input_labels = {
        1: "n=64 x 4 rows",
        2: "n=128 x 4 rows",
        3: "n=256 x 4 rows",
        4: "n=512 x 4 rows",
    }

    def verifier(self) -> OutputVerifier:
        return FftVerifier()
