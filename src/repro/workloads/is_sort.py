"""IS: bucketed integer sort (NPB IS analogue).

NPB IS ranks a large array of small integer keys — a histogram (bucket)
sort stressing integer arithmetic and random memory access.  This scil port
generates keys with the NPB-style in-program LCG, builds per-rank bucket
histograms, derives global scatter positions, and scatters keys into the
sorted output; repeated for a few ranking iterations like the original.
SPMD: keys are block-partitioned; per-rank histograms are concatenated with
a zero-and-allreduce exchange so every rank can compute exact global scatter
offsets for its own keys, and the scattered output is assembled the same way.

Verification (paper Table 2): the benchmark's own check — every adjacent
pair of the sorted output must satisfy ``key[i-1] <= key[i]``.
"""

from __future__ import annotations

from ..interp.interpreter import Interpreter
from .base import OutputVerifier, Workload

_SOURCE = """
// NPB-IS-like bucketed integer sort.
int param_nkeys = 512;          // number of keys (max 4096)
int param_iterations = 2;       // ranking iterations, like NPB IS
int nbuckets = 256;             // key range [0, nbuckets)

output int sorted_keys[4096];
output int sort_stats[2];       // number of keys, iterations completed

int keys[4096];
int hist[256];
int all_hist[2048];             // per-rank histograms, 8 ranks max
int start[256];
int scatter_pos[256];
int lcg_state = 314159265;

int lcg_next() {
    lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
    if (lcg_state < 0) { lcg_state = -lcg_state; }
    return lcg_state;
}

void generate_keys(int nkeys) {
    // Every rank generates the full key sequence (same seed), as NPB IS
    // ranks regenerate their slice deterministically.
    for (int i = 0; i < nkeys; i = i + 1) {
        keys[i] = (lcg_next() >> 7) % nbuckets;
    }
}

void rank_and_scatter(int nkeys, int k0, int k1, int rank, int size) {
    // Local bucket histogram over our slice of the keys.
    for (int b = 0; b < nbuckets; b = b + 1) { hist[b] = 0; }
    for (int i = k0; i < k1; i = i + 1) {
        int b = keys[i];
        hist[b] = hist[b] + 1;
    }

    // Publish per-rank histograms: slot r occupies all_hist[r*nbuckets ..).
    for (int c = 0; c < size * nbuckets; c = c + 1) { all_hist[c] = 0; }
    for (int b = 0; b < nbuckets; b = b + 1) {
        all_hist[rank * nbuckets + b] = hist[b];
    }
    mpi_allreduce_sum_array(all_hist, size * nbuckets);

    // Global bucket starts (exclusive prefix sum over bucket totals)...
    int running = 0;
    for (int b = 0; b < nbuckets; b = b + 1) {
        int total = 0;
        for (int r = 0; r < size; r = r + 1) {
            total = total + all_hist[r * nbuckets + b];
        }
        start[b] = running;
        running = running + total;
    }
    // ...plus this rank's offset inside each bucket (keys of lower ranks
    // land first, keeping the sort stable across the partition).
    for (int b = 0; b < nbuckets; b = b + 1) {
        int below = 0;
        for (int r = 0; r < rank; r = r + 1) {
            below = below + all_hist[r * nbuckets + b];
        }
        scatter_pos[b] = start[b] + below;
    }

    // Scatter our keys; other ranks' slots stay zero for the allreduce.
    for (int i = 0; i < nkeys; i = i + 1) { sorted_keys[i] = 0; }
    for (int i = k0; i < k1; i = i + 1) {
        int b = keys[i];
        int pos = scatter_pos[b];
        scatter_pos[b] = pos + 1;
        sorted_keys[pos] = b;
    }
    mpi_allreduce_sum_array(sorted_keys, nkeys);
}

void main() {
    int nkeys = param_nkeys;
    int iterations = param_iterations;
    int rank = mpi_rank();
    int size = mpi_size();
    int chunk = (nkeys + size - 1) / size;
    int k0 = rank * chunk;
    int k1 = k0 + chunk;
    if (k1 > nkeys) { k1 = nkeys; }
    if (k0 > nkeys) { k0 = nkeys; }

    generate_keys(nkeys);

    int done = 0;
    for (int it = 0; it < iterations; it = it + 1) {
        // Like NPB IS, perturb a couple of keys each iteration so the
        // ranking is re-done on slightly different data.
        keys[it % nkeys] = (keys[it % nkeys] + it) % nbuckets;
        keys[(it * 7 + 3) % nkeys] = (keys[(it * 7 + 3) % nkeys] + 2 * it) % nbuckets;
        rank_and_scatter(nkeys, k0, k1, rank, size);
        done = done + 1;
    }

    sort_stats[0] = nkeys;
    sort_stats[1] = done;
}
"""


class IsVerifier(OutputVerifier):
    """NPB IS partial verification: the output must be sorted."""

    def capture(self, interp: Interpreter):
        nkeys = interp.read_global("param_nkeys")
        return {"nkeys": nkeys, "iterations": interp.read_global("param_iterations")}

    def check(self, interp: Interpreter, golden) -> bool:
        stats = interp.read_global("sort_stats")
        if stats[0] != golden["nkeys"] or stats[1] != golden["iterations"]:
            return False
        keys = interp.read_global("sorted_keys")
        n = golden["nkeys"]
        previous = None
        for i in range(n):
            k = keys[i]
            if not isinstance(k, (int, float)) or k != k:
                return False
            if previous is not None and k < previous:
                return False
            previous = k
        return True


class IsWorkload(Workload):
    name = "is"
    description = "Bucketed integer sort (NPB IS analogue)"
    source = _SOURCE
    inputs = {
        1: {"param_nkeys": 512},
        2: {"param_nkeys": 1024},
        3: {"param_nkeys": 2048},
        4: {"param_nkeys": 4096},
    }
    input_labels = {
        1: "512 keys (class S analogue)",
        2: "1024 keys (class W analogue)",
        3: "2048 keys (class A analogue)",
        4: "4096 keys (class B analogue)",
    }

    def verifier(self) -> OutputVerifier:
        return IsVerifier()
