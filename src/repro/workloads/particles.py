"""Particles: long-horizon 2-D particle-disk integration (N-body).

A small disk of particles orbits a central mass under softened gravity,
integrated with a kick-drift-kick leapfrog for hundreds to thousands of
steps.  The long horizon is the point: an N-body system is chaotic, so a
masked-looking low-mantissa corruption early in the run can grow into a
macroscopic trajectory error by the end — exactly the silent-corruption
amplification profile that motivates intermittent and persistent fault
models.  SPMD: each rank computes accelerations for its particle slice
against all particles and the slices are summed with a zero-and-allreduce
exchange; every rank then advances the full (now identical) state.

Verification (paper Table 2 style): final positions and the total energy
must stay within an absolute tolerance of the error-free run; any NaN is
corruption.
"""

from __future__ import annotations

from .base import OutputVerifier, ToleranceVerifier, Workload

_SOURCE = """
// 2-D particle disk around a central mass, leapfrog (kick-drift-kick).
int param_n = 6;                // particles (max 16)
int param_steps = 300;          // leapfrog steps (the long horizon)

output double out_x[16];        // final positions
output double out_y[16];
output double out_energy[1];    // total energy at the end

double px[16];
double py[16];
double vx[16];
double vy[16];
double ax[16];
double ay[16];

// Softened gravity on this rank's slice [p0, p1): central mass M = 1 at
// the origin plus pairwise pulls from every particle (mass m each).
void accelerations(int n, int p0, int p1) {
    double eps2 = 0.01;
    double m = 0.001;
    for (int i = 0; i < n; i = i + 1) { ax[i] = 0.0; ay[i] = 0.0; }
    for (int i = p0; i < p1; i = i + 1) {
        double r2 = px[i] * px[i] + py[i] * py[i] + eps2;
        double inv = 1.0 / (r2 * sqrt(r2));
        ax[i] = 0.0 - px[i] * inv;
        ay[i] = 0.0 - py[i] * inv;
        for (int j = 0; j < n; j = j + 1) {
            if (j != i) {
                double dx = px[j] - px[i];
                double dy = py[j] - py[i];
                double d2 = dx * dx + dy * dy + eps2;
                double dinv = m / (d2 * sqrt(d2));
                ax[i] = ax[i] + dx * dinv;
                ay[i] = ay[i] + dy * dinv;
            }
        }
    }
    mpi_allreduce_sum_array(ax, n);
    mpi_allreduce_sum_array(ay, n);
}

void main() {
    int n = param_n;
    int steps = param_steps;
    double dt = 0.02;

    int rank = mpi_rank();
    int size = mpi_size();
    int chunk = (n + size - 1) / size;
    int p0 = rank * chunk;
    int p1 = p0 + chunk;
    if (p1 > n) { p1 = n; }
    if (p0 > n) { p0 = n; }

    // Deterministic disk: staggered ring radii, circular orbit speeds.
    for (int i = 0; i < n; i = i + 1) {
        double angle = 6.283185307179586 * (double)i / (double)n;
        double radius = 1.0 + 0.05 * (double)i;
        px[i] = radius * cos(angle);
        py[i] = radius * sin(angle);
        double speed = sqrt(1.0 / radius);
        vx[i] = 0.0 - speed * sin(angle);
        vy[i] = speed * cos(angle);
    }

    accelerations(n, p0, p1);
    for (int step = 0; step < steps; step = step + 1) {
        for (int i = 0; i < n; i = i + 1) {
            vx[i] = vx[i] + 0.5 * dt * ax[i];
            vy[i] = vy[i] + 0.5 * dt * ay[i];
            px[i] = px[i] + dt * vx[i];
            py[i] = py[i] + dt * vy[i];
        }
        accelerations(n, p0, p1);
        for (int i = 0; i < n; i = i + 1) {
            vx[i] = vx[i] + 0.5 * dt * ax[i];
            vy[i] = vy[i] + 0.5 * dt * ay[i];
        }
    }

    // Total energy: kinetic + central potential + pairwise potential.
    double m = 0.001;
    double eps2 = 0.01;
    double energy = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        energy = energy + 0.5 * m * (vx[i] * vx[i] + vy[i] * vy[i]);
        energy = energy - m / sqrt(px[i] * px[i] + py[i] * py[i] + eps2);
        for (int j = i + 1; j < n; j = j + 1) {
            double dx = px[j] - px[i];
            double dy = py[j] - py[i];
            energy = energy - m * m / sqrt(dx * dx + dy * dy + eps2);
        }
        out_x[i] = px[i];
        out_y[i] = py[i];
    }
    out_energy[0] = energy;
}
"""


class ParticlesWorkload(Workload):
    name = "particles"
    description = "Long-horizon 2-D particle-disk leapfrog integration"
    source = _SOURCE
    inputs = {
        1: {"param_n": 6, "param_steps": 300},
        2: {"param_n": 8, "param_steps": 800},
        3: {"param_n": 10, "param_steps": 1500},
        4: {"param_n": 12, "param_steps": 4000},
    }
    input_labels = {
        1: "6 particles x 300 steps",
        2: "8 particles x 800 steps",
        3: "10 particles x 1500 steps",
        4: "12 particles x 4000 steps",
    }

    def verifier(self) -> OutputVerifier:
        return ToleranceVerifier(
            {"out_x": 1e-6, "out_y": 1e-6, "out_energy": 1e-6}
        )
