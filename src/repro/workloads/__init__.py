"""repro.workloads — the five evaluation codes (paper Table 2, Table 5).

Each workload is a scil program plus its input ladder and verification
routine:

=========  ==================================================================
``comd``   Lennard-Jones molecular dynamics; verifies energy conservation
``hpccg``  conjugate gradient, 3-D Poisson; verifies against the exact
           solution within tolerance and iteration budget
``amg``    multigrid V-cycle solver, 2-D Poisson; verifies uncorrupted
           inputs and genuine (host-recomputed) convergence
``fft``    batched complex radix-2 FFT round trips; verifies the L2 norm
           against an error-free run
``is``     bucketed integer sort; verifies sortedness of the output
=========  ==================================================================

Plus ``particles`` — a long-horizon 2-D particle-disk leapfrog integration
added for multi-shot fault-model studies; verifies final positions and
total energy within tolerance.
"""

from .base import OutputVerifier, ToleranceVerifier, Workload
from .amg import AmgVerifier, AmgWorkload
from .comd import ComdVerifier, ComdWorkload
from .fft import FftVerifier, FftWorkload
from .hpccg import HpccgVerifier, HpccgWorkload
from .is_sort import IsVerifier, IsWorkload
from .particles import ParticlesWorkload
from .registry import WORKLOAD_NAMES, all_workloads, get_workload

__all__ = [
    "OutputVerifier", "ToleranceVerifier", "Workload",
    "AmgVerifier", "AmgWorkload", "ComdVerifier", "ComdWorkload",
    "FftVerifier", "FftWorkload", "HpccgVerifier", "HpccgWorkload",
    "IsVerifier", "IsWorkload", "ParticlesWorkload",
    "WORKLOAD_NAMES", "all_workloads", "get_workload",
]
