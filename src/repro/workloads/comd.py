"""CoMD: Lennard-Jones molecular dynamics with velocity-Verlet.

The ExMatEx CoMD proxy app simulates short-range interatomic potentials.
This scil port places atoms on a cubic lattice near the LJ equilibrium
spacing, seeds small deterministic velocities (an in-program LCG), and
integrates with velocity Verlet under a cutoff LJ potential.  SPMD: atoms
are block-partitioned; every rank needs all positions for the pair loop, so
position updates are assembled with a zero-and-allreduce exchange, and the
energies reduce across ranks.

Verification (paper Table 2): total energy must be conserved.  The golden
run's own energy drift defines the acceptance band — a faulty run passes if
its |E_final − E_initial| stays within 3× the golden drift (the paper's
"3 standard deviations" criterion, instantiated with the deterministic
drift of the reference integrator) plus a small absolute floor.
"""

from __future__ import annotations

from ..interp.interpreter import Interpreter
from .base import OutputVerifier, Workload

_SOURCE = """
// CoMD-like Lennard-Jones molecular dynamics (velocity Verlet).
int param_natoms = 16;          // number of atoms (max 64: 4x4x4 lattice)
int param_nsteps = 6;
double dt = 0.002;
double cutoff = 2.5;            // LJ cutoff radius (sigma units)

output double energies[4];      // E_initial, E_final, KE_final, PE_final

double px[64]; double py[64]; double pz[64];
double vx[64]; double vy[64]; double vz[64];
double fx[64]; double fy[64]; double fz[64];

int lcg_state = 20220913;

double lcg_uniform() {
    // Deterministic PRNG in [0,1) (integer mix, like CoMD's initial jitter).
    lcg_state = (lcg_state * 1103515245 + 12345) % 2147483648;
    if (lcg_state < 0) { lcg_state = -lcg_state; }
    return (double)lcg_state / 2147483648.0;
}

void init_lattice(int natoms) {
    double spacing = 1.1225;    // ~2^(1/6): LJ equilibrium distance
    for (int i = 0; i < natoms; i = i + 1) {
        px[i] = (double)(i % 4) * spacing;
        py[i] = (double)((i / 4) % 4) * spacing;
        pz[i] = (double)(i / 16) * spacing;
        vx[i] = 0.2 * (lcg_uniform() - 0.5);
        vy[i] = 0.2 * (lcg_uniform() - 0.5);
        vz[i] = 0.2 * (lcg_uniform() - 0.5);
    }
}

// LJ forces on atoms [a0, a1) from all pairs; also returns the potential
// energy share of the owned atoms (half per pair to avoid double count).
double compute_forces(int natoms, int a0, int a1) {
    double rc2 = cutoff * cutoff;
    double pe = 0.0;
    for (int i = a0; i < a1; i = i + 1) {
        fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0;
    }
    for (int i = a0; i < a1; i = i + 1) {
        for (int j = 0; j < natoms; j = j + 1) {
            if (j != i) {
                double dx = px[i] - px[j];
                double dy = py[i] - py[j];
                double dz = pz[i] - pz[j];
                double r2 = dx * dx + dy * dy + dz * dz;
                if (r2 < rc2) {
                    double inv2 = 1.0 / r2;
                    double inv6 = inv2 * inv2 * inv2;
                    double inv12 = inv6 * inv6;
                    // F = 24 eps (2 r^-12 - r^-6) / r^2 * dr
                    double fmag = 24.0 * (2.0 * inv12 - inv6) * inv2;
                    fx[i] = fx[i] + fmag * dx;
                    fy[i] = fy[i] + fmag * dy;
                    fz[i] = fz[i] + fmag * dz;
                    pe = pe + 2.0 * (inv12 - inv6);   // 0.5 * 4 eps (...)
                }
            }
        }
    }
    return pe;
}

double kinetic_energy(int a0, int a1) {
    double ke = 0.0;
    for (int i = a0; i < a1; i = i + 1) {
        ke = ke + 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
    }
    return ke;
}

// Zero the positions we do not own, then allreduce-sum to assemble the
// globally consistent position arrays on every rank.
void exchange_positions(int natoms, int a0, int a1) {
    for (int i = 0; i < natoms; i = i + 1) {
        if (i < a0 || i >= a1) {
            px[i] = 0.0; py[i] = 0.0; pz[i] = 0.0;
        }
    }
    mpi_allreduce_sum_array(px, natoms);
    mpi_allreduce_sum_array(py, natoms);
    mpi_allreduce_sum_array(pz, natoms);
}

void main() {
    int natoms = param_natoms;
    int nsteps = param_nsteps;
    int rank = mpi_rank();
    int size = mpi_size();
    int chunk = (natoms + size - 1) / size;
    int a0 = rank * chunk;
    int a1 = a0 + chunk;
    if (a1 > natoms) { a1 = natoms; }
    if (a0 > natoms) { a0 = natoms; }

    init_lattice(natoms);   // identical on every rank (same LCG seed)

    double pe = mpi_allreduce_sum(compute_forces(natoms, a0, a1));
    double ke = mpi_allreduce_sum(kinetic_energy(a0, a1));
    energies[0] = ke + pe;

    for (int step = 0; step < nsteps; step = step + 1) {
        // velocity Verlet: half kick, drift, force, half kick
        for (int i = a0; i < a1; i = i + 1) {
            vx[i] = vx[i] + 0.5 * dt * fx[i];
            vy[i] = vy[i] + 0.5 * dt * fy[i];
            vz[i] = vz[i] + 0.5 * dt * fz[i];
            px[i] = px[i] + dt * vx[i];
            py[i] = py[i] + dt * vy[i];
            pz[i] = pz[i] + dt * vz[i];
        }
        exchange_positions(natoms, a0, a1);
        pe = mpi_allreduce_sum(compute_forces(natoms, a0, a1));
        for (int i = a0; i < a1; i = i + 1) {
            vx[i] = vx[i] + 0.5 * dt * fx[i];
            vy[i] = vy[i] + 0.5 * dt * fy[i];
            vz[i] = vz[i] + 0.5 * dt * fz[i];
        }
    }

    ke = mpi_allreduce_sum(kinetic_energy(a0, a1));
    energies[1] = ke + pe;
    energies[2] = ke;
    energies[3] = pe;
}
"""


class ComdVerifier(OutputVerifier):
    """Energy-conservation band calibrated from the golden run's drift."""

    def __init__(self, sigma_factor: float = 3.0, abs_floor: float = 1e-9):
        self.sigma_factor = sigma_factor
        self.abs_floor = abs_floor

    def capture(self, interp: Interpreter):
        energies = interp.read_global("energies")
        drift = abs(energies[1] - energies[0])
        scale = max(abs(energies[0]), 1.0)
        return {"golden_drift": drift, "scale": scale}

    def check(self, interp: Interpreter, golden) -> bool:
        energies = interp.read_global("energies")
        try:
            e0 = float(energies[0])
            e1 = float(energies[1])
        except (TypeError, ValueError):
            return False
        drift = abs(e1 - e0)
        if drift != drift:  # NaN energy is corruption
            return False
        band = (
            self.sigma_factor * golden["golden_drift"]
            + self.abs_floor * golden["scale"]
        )
        return drift <= band


class ComdWorkload(Workload):
    name = "comd"
    description = (
        "Lennard-Jones molecular dynamics with velocity Verlet "
        "(ExMatEx CoMD analogue)"
    )
    source = _SOURCE
    inputs = {
        1: {"param_natoms": 16},
        2: {"param_natoms": 24},
        3: {"param_natoms": 32},
        4: {"param_natoms": 48},
    }
    input_labels = {
        1: "natoms=16",
        2: "natoms=24",
        3: "natoms=32",
        4: "natoms=48",
    }

    def verifier(self) -> OutputVerifier:
        return ComdVerifier()
