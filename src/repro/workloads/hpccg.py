"""HPCCG: conjugate gradient on a 3-D 7-point Poisson operator.

The Mantevo HPCCG mini-app solves a sparse SPD system with CG on an
``nx × ny × nz`` grid.  This scil port is matrix-free (the classic 7-point
Laplacian stencil), SPMD over z-slabs: each rank computes its slab of the
sparse matrix-vector product and its share of the dot products; vector
updates are performed redundantly on all ranks, as small CG codes often do.

Verification (paper Table 2): the right-hand side is constructed as
``b = A·1`` so the exact solution is known; a run is accepted when the
computed solution matches the exact all-ones vector within tolerance inside
the iteration limit.
"""

from __future__ import annotations

from ..interp.interpreter import Interpreter
from .base import OutputVerifier, Workload

_SOURCE = """
// HPCCG-like conjugate gradient, 3-D 7-point Poisson, matrix-free.
int param_n = 6;                // grid side; n^3 unknowns (max 12)
int max_iters = 80;
double tolerance = 0.000001;    // relative residual tolerance

output double x[1728];          // computed solution (exact solution: ones)
output double solve_stats[4];   // iterations, final rr, converged, b norm^2

double b[1728];
double r[1728];
double p[1728];
double ap[1728];

int idx3(int ix, int iy, int iz, int n) {
    return ix + iy * n + iz * n * n;
}

// 7-point Laplacian rows of the z-slab [z0, z1); rows outside are zeroed
// so an allreduce-sum assembles the full product.
void spmv_slab(double v[], double out[], int n, int z0, int z1) {
    int nrows = n * n * n;
    for (int i = 0; i < nrows; i = i + 1) { out[i] = 0.0; }
    for (int iz = z0; iz < z1; iz = iz + 1) {
        for (int iy = 0; iy < n; iy = iy + 1) {
            for (int ix = 0; ix < n; ix = ix + 1) {
                int i = idx3(ix, iy, iz, n);
                double s = 6.0 * v[i];
                if (ix > 0)     { s = s - v[i - 1]; }
                if (ix < n - 1) { s = s - v[i + 1]; }
                if (iy > 0)     { s = s - v[i - n]; }
                if (iy < n - 1) { s = s - v[i + n]; }
                if (iz > 0)     { s = s - v[i - n * n]; }
                if (iz < n - 1) { s = s - v[i + n * n]; }
                out[i] = s;
            }
        }
    }
}

double dot_range(double u[], double v[], int lo, int hi) {
    double s = 0.0;
    for (int i = lo; i < hi; i = i + 1) { s = s + u[i] * v[i]; }
    return s;
}

void waxpby(double w[], double alpha, double u[], double beta, double v[], int nrows) {
    for (int i = 0; i < nrows; i = i + 1) {
        w[i] = alpha * u[i] + beta * v[i];
    }
}

void main() {
    int n = param_n;
    int nrows = n * n * n;
    int rank = mpi_rank();
    int size = mpi_size();
    int zchunk = (n + size - 1) / size;
    int z0 = rank * zchunk;
    int z1 = z0 + zchunk;
    if (z1 > n) { z1 = n; }
    if (z0 > n) { z0 = n; }
    int lo = z0 * n * n;
    int hi = z1 * n * n;

    // b = A * ones, so the exact solution is all ones.
    for (int i = 0; i < nrows; i = i + 1) { x[i] = 1.0; }
    spmv_slab(x, ap, n, z0, z1);
    mpi_allreduce_sum_array(ap, nrows);
    for (int i = 0; i < nrows; i = i + 1) {
        b[i] = ap[i];
        x[i] = 0.0;
        r[i] = b[i];
        p[i] = b[i];
    }

    double rr = mpi_allreduce_sum(dot_range(r, r, lo, hi));
    double bnorm2 = rr;
    double tol2 = tolerance * tolerance * bnorm2;
    int iters = 0;
    while (iters < max_iters && rr > tol2) {
        spmv_slab(p, ap, n, z0, z1);
        mpi_allreduce_sum_array(ap, nrows);
        double pap = mpi_allreduce_sum(dot_range(p, ap, lo, hi));
        double alpha = rr / pap;
        waxpby(x, 1.0, x, alpha, p, nrows);
        waxpby(r, 1.0, r, -alpha, ap, nrows);
        double rr_new = mpi_allreduce_sum(dot_range(r, r, lo, hi));
        double beta = rr_new / rr;
        rr = rr_new;
        waxpby(p, 1.0, r, beta, p, nrows);
        iters = iters + 1;
    }

    solve_stats[0] = (double)iters;
    solve_stats[1] = rr;
    if (rr <= tol2) { solve_stats[2] = 1.0; } else { solve_stats[2] = 0.0; }
    solve_stats[3] = bnorm2;
}
"""


class HpccgVerifier(OutputVerifier):
    """Known-exact-solution check: ``|x_i - 1| < tol`` on the active rows,
    and the solver must have reported convergence within its budget."""

    def __init__(self, tol: float = 1e-4):
        self.tol = tol

    def capture(self, interp: Interpreter):
        n = interp.read_global("param_n")
        return {"nrows": n * n * n}

    def check(self, interp: Interpreter, golden) -> bool:
        stats = interp.read_global("solve_stats")
        converged = stats[2]
        if converged != 1.0:
            return False
        x = interp.read_global("x")
        for i in range(golden["nrows"]):
            xi = x[i]
            try:
                diff = abs(float(xi) - 1.0)
            except (TypeError, ValueError, OverflowError):
                return False
            if diff != diff or diff > self.tol:
                return False
        return True


class HpccgWorkload(Workload):
    name = "hpccg"
    description = (
        "Conjugate gradient on a 3-D 7-point Poisson operator "
        "(Mantevo HPCCG analogue)"
    )
    source = _SOURCE
    inputs = {
        1: {"param_n": 6},
        2: {"param_n": 8},
        3: {"param_n": 10},
        4: {"param_n": 12},
    }
    input_labels = {
        1: "nx=ny=nz=6",
        2: "nx=ny=nz=8",
        3: "nx=ny=nz=10",
        4: "nx=ny=nz=12",
    }

    def verifier(self) -> OutputVerifier:
        return HpccgVerifier()
