"""AMG: a geometric multigrid V-cycle solver for the 2-D Poisson problem.

The paper uses the *solve* kernel of an algebraic multigrid code on a 2-D
problem with a 4-level hierarchy.  This scil port builds the multigrid
hierarchy over the 5-point Laplacian: damped-Jacobi smoothing, full-
weighting restriction, bilinear prolongation, and a heavily-smoothed
coarsest level, iterating V-cycles until the residual drops below the
tolerance.  Grids are interior-centered with odd sides (31 → 15 → 7 → 3),
so coarse point (ci, cj) sits at fine point (2ci+1, 2cj+1) — the classic
vertex-centred Dirichlet coarsening.  The hierarchy is stored in flat
per-level slabs of one global array, as a packed AMG hierarchy would be.

SPMD: the fine-grid smoother and residual are partitioned by rows with
zero-and-allreduce assembly; coarse levels are processed redundantly on all
ranks — the standard practice for small coarse grids.

Verification (paper Table 2): (1) the solver's inputs (the RHS) must be
uncorrupted relative to the golden run, and (2) the solver must reach the
tolerance within the allotted cycles — with the residual recomputed
host-side from the published solution, so a corrupted in-program residual
cannot fake convergence.
"""

from __future__ import annotations

import math

from ..interp.interpreter import Interpreter
from .base import OutputVerifier, Workload

_SOURCE = """
// Geometric multigrid V-cycle solver, 2-D Poisson (5-point stencil).
int param_n = 31;               // fine-grid side (odd; max 63)
// The solver needs ~7 V-cycles; 10 is the operational budget (paper Table 2:
// convergence must happen "in the allotted number of iterations").  A fault
// that delays convergence past the allotment is silent output corruption.
int max_cycles = 10;
double tolerance = 0.000001;    // relative residual target

output double u[3969];          // fine-grid solution (row-major n x n)
output double rhs[3969];        // fine-grid right-hand side (checked input)
output double cycle_stats[3];   // cycles used, final rel residual, converged

// Packed hierarchy slabs: level k has an odd side; offsets set in main.
double hu[5400];                // solution per level
double hf[5400];                // RHS per level
double hr[5400];                // residual / scratch per level
double tmp[4096];               // Jacobi scratch (fine level is largest)
int level_offset[8];
int level_side[8];

// 5-point operator application on rows [row0, row1): out = A*v.
void apply_a(double v[], double out[], int base, int s, int row0, int row1) {
    for (int j = row0; j < row1; j = j + 1) {
        for (int i = 0; i < s; i = i + 1) {
            int c = base + j * s + i;
            double val = 4.0 * v[c];
            if (i > 0)     { val = val - v[c - 1]; }
            if (i < s - 1) { val = val - v[c + 1]; }
            if (j > 0)     { val = val - v[c - s]; }
            if (j < s - 1) { val = val - v[c + s]; }
            out[c] = val;
        }
    }
}

// Damped Jacobi sweeps on the level slab; `parallel` assembles the fine
// level across ranks after each sweep (only used for level 0).
void smooth(int base, int s, int sweeps, int row0, int row1, bool parallel) {
    double omega = 0.8;
    for (int sweep = 0; sweep < sweeps; sweep = sweep + 1) {
        for (int j = row0; j < row1; j = j + 1) {
            for (int i = 0; i < s; i = i + 1) {
                int c = base + j * s + i;
                double sum = hf[c];
                if (i > 0)     { sum = sum + hu[c - 1]; }
                if (i < s - 1) { sum = sum + hu[c + 1]; }
                if (j > 0)     { sum = sum + hu[c - s]; }
                if (j < s - 1) { sum = sum + hu[c + s]; }
                tmp[(j - row0) * s + i] = (1.0 - omega) * hu[c] + omega * sum / 4.0;
            }
        }
        for (int j = row0; j < row1; j = j + 1) {
            for (int i = 0; i < s; i = i + 1) {
                hu[base + j * s + i] = tmp[(j - row0) * s + i];
            }
        }
        if (parallel) {
            for (int j = 0; j < s; j = j + 1) {
                if (j < row0 || j >= row1) {
                    for (int i = 0; i < s; i = i + 1) { hu[j * s + i] = 0.0; }
                }
            }
            mpi_allreduce_sum_array(hu, s * s);   // fine level lives at offset 0
        }
    }
}

double residual_norm2(int base, int s, int row0, int row1) {
    apply_a(hu, hr, base, s, row0, row1);
    double acc = 0.0;
    for (int j = row0; j < row1; j = j + 1) {
        for (int i = 0; i < s; i = i + 1) {
            int c = base + j * s + i;
            double r = hf[c] - hr[c];
            hr[c] = r;
            acc = acc + r * r;
        }
    }
    return acc;
}

void vcycle(int levels, int fine_row0, int fine_row1, bool parallel) {
    for (int k = 0; k < levels - 1; k = k + 1) {
        int base = level_offset[k];
        int s = level_side[k];
        int row0 = 0;
        int row1 = s;
        bool par = false;
        if (k == 0) { row0 = fine_row0; row1 = fine_row1; par = parallel; }
        smooth(base, s, 2, row0, row1, par);
        // Residual over the whole level (coarse levels are redundant, and
        // the fine level is globally consistent after the smoother).
        apply_a(hu, hr, base, s, 0, s);
        for (int c = 0; c < s * s; c = c + 1) {
            hr[base + c] = hf[base + c] - hr[base + c];
        }
        // Full-weighting restriction: coarse (ci,cj) <-> fine (2ci+1,2cj+1).
        int cbase = level_offset[k + 1];
        int cs = level_side[k + 1];
        for (int cj = 0; cj < cs; cj = cj + 1) {
            for (int ci = 0; ci < cs; ci = ci + 1) {
                int f = base + (2 * cj + 1) * s + (2 * ci + 1);
                double acc = 4.0 * hr[f]
                    + 2.0 * (hr[f - 1] + hr[f + 1] + hr[f - s] + hr[f + s])
                    + hr[f - s - 1] + hr[f - s + 1]
                    + hr[f + s - 1] + hr[f + s + 1];
                hf[cbase + cj * cs + ci] = acc / 4.0;   // FW * (h_c/h_f)^2
                hu[cbase + cj * cs + ci] = 0.0;
            }
        }
    }
    // Coarsest level: heavy smoothing stands in for a direct solve.
    int kl = levels - 1;
    smooth(level_offset[kl], level_side[kl], 40, 0, level_side[kl], false);
    // Back up: prolong the correction (bilinear scatter) and post-smooth.
    for (int k = levels - 2; k >= 0; k = k - 1) {
        int base = level_offset[k];
        int s = level_side[k];
        int cbase = level_offset[k + 1];
        int cs = level_side[k + 1];
        for (int cj = 0; cj < cs; cj = cj + 1) {
            for (int ci = 0; ci < cs; ci = ci + 1) {
                double e = hu[cbase + cj * cs + ci];
                int f = base + (2 * cj + 1) * s + (2 * ci + 1);
                hu[f] = hu[f] + e;
                hu[f - 1] = hu[f - 1] + 0.5 * e;
                hu[f + 1] = hu[f + 1] + 0.5 * e;
                hu[f - s] = hu[f - s] + 0.5 * e;
                hu[f + s] = hu[f + s] + 0.5 * e;
                hu[f - s - 1] = hu[f - s - 1] + 0.25 * e;
                hu[f - s + 1] = hu[f - s + 1] + 0.25 * e;
                hu[f + s - 1] = hu[f + s - 1] + 0.25 * e;
                hu[f + s + 1] = hu[f + s + 1] + 0.25 * e;
            }
        }
        int row0 = 0;
        int row1 = s;
        bool par = false;
        if (k == 0) { row0 = fine_row0; row1 = fine_row1; par = parallel; }
        smooth(base, s, 2, row0, row1, par);
    }
}

void main() {
    int n = param_n;
    int rank = mpi_rank();
    int size = mpi_size();

    // Build the hierarchy: odd sides, (s-1)/2 coarsening, at most 4 levels.
    int levels = 1;
    level_offset[0] = 0;
    level_side[0] = n;
    while (levels < 4 && level_side[levels - 1] % 2 == 1
           && (level_side[levels - 1] - 1) / 2 >= 3) {
        level_side[levels] = (level_side[levels - 1] - 1) / 2;
        level_offset[levels] = level_offset[levels - 1]
            + level_side[levels - 1] * level_side[levels - 1];
        levels = levels + 1;
    }

    int chunk = (n + size - 1) / size;
    int row0 = rank * chunk;
    int row1 = row0 + chunk;
    if (row1 > n) { row1 = n; }
    if (row0 > n) { row0 = n; }
    bool parallel = size > 1;

    // RHS: a smooth source term; publish it for the input-integrity check.
    for (int j = 0; j < n; j = j + 1) {
        for (int i = 0; i < n; i = i + 1) {
            double xx = (double)(i + 1) / (double)(n + 1);
            double yy = (double)(j + 1) / (double)(n + 1);
            double v = sin(3.141592653589793 * xx) * sin(3.141592653589793 * yy);
            hf[j * n + i] = v;
            rhs[j * n + i] = v;
            hu[j * n + i] = 0.0;
        }
    }

    double f2 = mpi_allreduce_sum(residual_norm2(0, n, row0, row1));
    if (f2 <= 0.0) { f2 = 1.0; }
    double tol2 = tolerance * tolerance * f2;

    int cycles = 0;
    double r2 = f2;
    while (cycles < max_cycles && r2 > tol2) {
        vcycle(levels, row0, row1, parallel);
        r2 = mpi_allreduce_sum(residual_norm2(0, n, row0, row1));
        cycles = cycles + 1;
    }

    for (int c = 0; c < n * n; c = c + 1) { u[c] = hu[c]; }
    cycle_stats[0] = (double)cycles;
    cycle_stats[1] = sqrt(r2 / f2);
    if (r2 <= tol2) { cycle_stats[2] = 1.0; } else { cycle_stats[2] = 0.0; }
}
"""


class AmgVerifier(OutputVerifier):
    """Table-2 AMG checks: uncorrupted inputs + genuine convergence.

    The residual is recomputed host-side from the published ``u`` and
    ``rhs``, so a fault that corrupts the solver's own convergence test
    cannot fake a converged state.
    """

    def __init__(self, tol: float = 1e-6, slack: float = 10.0):
        self.tol = tol
        # Host recomputation reproduces the in-program residual exactly, but
        # allow a small slack factor for accumulation-order differences.
        self.slack = slack

    def capture(self, interp: Interpreter):
        n = interp.read_global("param_n")
        rhs = interp.read_global("rhs")[: n * n]
        return {"n": n, "rhs": rhs}

    @staticmethod
    def _residual_rel(n: int, u, f) -> float:
        acc = 0.0
        f2 = 0.0
        for j in range(n):
            for i in range(n):
                c = j * n + i
                val = 4.0 * u[c]
                if i > 0:
                    val -= u[c - 1]
                if i < n - 1:
                    val -= u[c + 1]
                if j > 0:
                    val -= u[c - n]
                if j < n - 1:
                    val -= u[c + n]
                r = f[c] - val
                acc += r * r
                f2 += f[c] * f[c]
        if f2 <= 0.0:
            return float("inf")
        return math.sqrt(acc / f2)

    def check(self, interp: Interpreter, golden) -> bool:
        n = golden["n"]
        rhs = interp.read_global("rhs")[: n * n]
        for a, e in zip(rhs, golden["rhs"]):
            try:
                if abs(float(a) - e) > 1e-12:
                    return False
            except (TypeError, ValueError, OverflowError):
                return False
        stats = interp.read_global("cycle_stats")
        if stats[2] != 1.0:
            return False
        u = interp.read_global("u")[: n * n]
        try:
            rel = self._residual_rel(n, [float(v) for v in u], golden["rhs"])
        except (TypeError, ValueError, OverflowError):
            return False
        if rel != rel:
            return False
        return rel <= self.tol * self.slack


class AmgWorkload(Workload):
    name = "amg"
    description = "Multigrid V-cycle solver for 2-D Poisson (AMG solve-kernel analogue)"
    source = _SOURCE
    inputs = {
        1: {"param_n": 15},
        2: {"param_n": 19},
        3: {"param_n": 23},
        4: {"param_n": 31},
    }
    input_labels = {
        1: "15x15 fine grid (3 levels)",
        2: "19x19 fine grid",
        3: "23x23 fine grid",
        4: "31x31 fine grid (4 levels)",
    }

    def verifier(self) -> OutputVerifier:
        return AmgVerifier()
