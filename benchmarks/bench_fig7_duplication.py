"""Figure 7: average percentage of duplicated instructions, IPAS vs
Baseline (top-N configurations).

The paper's key cost argument: IPAS protects substantially fewer
instructions than the Shoestring-style baseline, which explains both the
detection-rate and the slowdown differences.
"""

import pytest

from repro.experiments import banner, format_table, percent, run_full_evaluation
from repro.workloads import WORKLOAD_NAMES

from conftest import one_shot


def _mean(values):
    return sum(values) / len(values) if values else 0.0


def test_fig7_duplicated_instructions(benchmark, report, scale):
    def compute():
        rows = []
        for name in WORKLOAD_NAMES:
            result = run_full_evaluation(name, scale)
            ipas = _mean([e["duplicated_fraction"] for e in result["ipas"]])
            base = _mean([e["duplicated_fraction"] for e in result["baseline"]])
            rows.append([name, ipas, base])
        return rows

    rows = one_shot(benchmark, compute)
    text = banner("Figure 7: average duplicated instructions (top-N configs)") + "\n"
    text += format_table(
        ["code", "IPAS", "Baseline"],
        [[name, percent(i), percent(b)] for name, i, b in rows],
    )
    report("fig7_duplication", text)

    # Paper claim: IPAS duplicates fewer instructions than Baseline on
    # every code.
    for name, ipas, base in rows:
        assert ipas < base, f"{name}: IPAS {ipas:.2f} !< Baseline {base:.2f}"
        assert 0.0 <= ipas <= 1.0 and 0.0 <= base <= 1.0
