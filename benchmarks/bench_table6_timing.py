"""Table 6: training and duplication time per code.

Paper values: training ~30s per code (constant — same 2,500-sample input to
the SVM sweep), duplication 0.68-6.73s.  The shape to reproduce: training
time is roughly constant across codes (it depends on the campaign size, not
the code), and duplication time scales with code size, both far below the
data-collection time.
"""

import pytest

from repro.experiments import banner, best_by_ideal_point, format_table, run_full_evaluation
from repro.workloads import WORKLOAD_NAMES

from conftest import one_shot


def test_table6_training_and_duplication_time(benchmark, report, scale):
    def compute():
        rows = []
        for name in WORKLOAD_NAMES:
            result = run_full_evaluation(name, scale)
            best = best_by_ideal_point(result["ipas"])
            training = result["ipas_training_seconds"]
            duplication = best["duplication_seconds"]
            rows.append(
                [
                    name,
                    round(training, 2),
                    round(duplication, 2),
                    round(training + duplication, 2),
                    round(result["collection_seconds"], 2),
                ]
            )
        return rows

    rows = one_shot(benchmark, compute)
    text = banner("Table 6: training and duplication time (seconds)") + "\n"
    text += format_table(
        [
            "code",
            "training time (s)",
            "duplication time (s)",
            "total (s)",
            "[data collection (s)]",
        ],
        rows,
    )
    text += (
        "\ntraining time is dominated by the (C, gamma) sweep and is roughly"
        "\nconstant across codes, as in the paper; data collection depends on"
        "\nthe application's execution time (paper: 'close to the application"
        "\nexecution time' when trials run in parallel)."
    )
    report("table6_timing", text)

    trainings = [row[1] for row in rows]
    # Roughly constant training time across codes (same campaign size).
    assert max(trainings) < 6 * max(min(trainings), 0.5)
    for row in rows:
        assert row[2] < row[1] + 5.0  # duplication is cheap relative to training
