"""Extension: fault injection into parallel MPI jobs.

The paper evaluates coverage on single-process runs (§6) while noting that
FlipIt can inject into random MPI ranks (§4.1) and that one rank's failure
aborts the job (§4.4.1).  This bench closes the loop: the same IPAS-best
protected binary is fault-injected serially and at 4 simulated ranks, and
the job-level outcome mixes are compared — detections propagate across
ranks, and the coverage shape survives parallel execution.
"""

import pytest

from repro.experiments import (
    banner,
    best_by_ideal_point,
    best_protected_variant,
    format_table,
    outcome_row,
    run_full_evaluation,
)
from repro.experiments import cache
from repro.faults import Campaign, MpiCampaign
from repro.workloads import get_workload

from conftest import one_shot

WORKLOAD = "is"
RANKS = 4


def _compute(scale):
    key = f"mpifaults-{WORKLOAD}-r{RANKS}-{scale.cache_key()}-s0"
    hit = cache.load(key)
    if hit is not None:
        return hit
    workload = get_workload(WORKLOAD)
    full = run_full_evaluation(WORKLOAD, scale)
    best = best_by_ideal_point(full["ipas"])
    variant = best_protected_variant(WORKLOAD, scale, best_config=best.get("config"))

    trials = scale.eval_trials
    serial = Campaign(
        workload.make_interpreter(1, module=variant.module),
        verifier=workload.verifier(),
        budget_factor=workload.budget_factor,
    ).run(trials, seed=123)
    job = workload.make_job(RANKS, 1, module=variant.module)
    parallel = MpiCampaign(
        job, verifier=workload.verifier(), budget_factor=workload.budget_factor
    ).run(trials, seed=123)
    result = {
        "workload": WORKLOAD,
        "ranks": RANKS,
        "trials": trials,
        "serial": serial.counts.as_dict(),
        "parallel": parallel.counts.as_dict(),
    }
    cache.store(key, result)
    return result


def test_mpi_fault_injection(benchmark, report, scale):
    result = one_shot(benchmark, lambda: _compute(scale))

    headers = ["campaign", "symptom", "detected", "masked", "SOC"]
    rows = [
        ["serial (1 proc)", *outcome_row(result["serial"])],
        [f"parallel ({RANKS} ranks)", *outcome_row(result["parallel"])],
    ]
    text = banner(
        f"Extension: fault injection in MPI jobs — {WORKLOAD}, "
        f"best IPAS config, {result['trials']} trials"
    ) + "\n"
    text += format_table(headers, rows)
    text += (
        "\nDetections on any rank abort the whole job (paper §4.4.1), so the"
        "\njob-level detected fraction tracks the serial one."
    )
    report("mpi_faults", text)

    serial = result["serial"]
    parallel = result["parallel"]
    # The protection works in parallel: detections occur, SOC stays low.
    assert parallel["detected"] > 0.15
    assert parallel["soc"] <= serial["soc"] + 0.10
    # The coverage shape survives: masked dominates SOC in both.
    assert parallel["masked"] > parallel["soc"]
