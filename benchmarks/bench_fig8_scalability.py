"""Figure 8: strong-scaling slowdown of the best IPAS configuration.

The protected and unprotected programs run fault-free under the simulated
MPI runtime at 1-8 ranks; the paper's expectation — reproduced here — is
that slowdown stays roughly constant with scale, because IPAS instruments
computation only.
"""

import pytest

from repro.experiments import DEFAULT_RANKS, banner, format_table, run_scalability
from repro.workloads import WORKLOAD_NAMES

from conftest import one_shot


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_fig8_scalability(benchmark, report, scale, name):
    result = one_shot(
        benchmark, lambda: run_scalability(name, ranks=DEFAULT_RANKS, scale=scale)
    )

    rows = [
        [p["ranks"], p["clean_cycles"], p["protected_cycles"], round(p["slowdown"], 3)]
        for p in result["points"]
    ]
    text = banner(f"Figure 8: scalability — {name} (best IPAS config)") + "\n"
    text += format_table(
        ["MPI ranks", "clean cycles", "protected cycles", "slowdown"], rows
    )
    report(f"fig8_scalability_{name}", text)

    slowdowns = [p["slowdown"] for p in result["points"]]
    assert all(s >= 1.0 for s in slowdowns)
    # "Slowdown does not vary considerably with scale": the spread across
    # rank counts stays within a small band.
    assert max(slowdowns) - min(slowdowns) < 0.25, slowdowns
