"""Figure 6: SOC reduction (%) versus slowdown per configuration.

One scatter per code: the top-N IPAS points and the top-N Baseline points.
Paper-level expectations checked: there is always an IPAS configuration
with less slowdown than every Baseline configuration while keeping a
substantial share of the SOC reduction (§6.3's headline claim).
"""

import pytest

from repro.experiments import banner, format_table, run_full_evaluation
from repro.workloads import WORKLOAD_NAMES

from conftest import one_shot


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_fig6_soc_vs_slowdown(benchmark, report, scale, name):
    result = one_shot(benchmark, lambda: run_full_evaluation(name, scale))

    headers = ["technique", "config", "C", "gamma", "SOC reduction %", "slowdown"]
    rows = []
    for technique, entries in (("IPAS", result["ipas"]), ("Baseline", result["baseline"])):
        for entry in entries:
            cfg = entry.get("config", {})
            rows.append(
                [
                    technique,
                    entry["label"],
                    f"{cfg.get('C', 0):.3g}",
                    f"{cfg.get('gamma', 0):.3g}",
                    round(entry["soc_reduction"], 1),
                    round(entry["slowdown"], 3),
                ]
            )
    rows.append(["Full dup.", "-", "-", "-",
                 round(result["full"]["soc_reduction"], 1),
                 round(result["full"]["slowdown"], 3)])

    text = banner(f"Figure 6: SOC reduction vs slowdown — {name}") + "\n"
    text += format_table(headers, rows)
    report(f"fig6_soc_vs_slowdown_{name}", text)

    ipas = result["ipas"]
    baseline = result["baseline"]
    # §6.3: some IPAS configuration beats every Baseline configuration on
    # runtime overhead.
    min_ipas_slowdown = min(e["slowdown"] for e in ipas)
    min_base_slowdown = min(e["slowdown"] for e in baseline)
    assert min_ipas_slowdown <= min_base_slowdown + 1e-9
    # All slowdowns are genuine overheads in a plausible range.
    for entry in ipas + baseline:
        assert 1.0 <= entry["slowdown"] < 3.5
