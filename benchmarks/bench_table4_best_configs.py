"""Table 4: best configurations by the ideal-point criterion.

For each code, the IPAS and Baseline configurations closest to
(slowdown = 1, SOC reduction = 100%).  Paper values for reference:

    code   | IPAS red./slowdown | Baseline red./slowdown
    CoMD   | 67.58% / 1.17      | 62.74% / 2.09
    HPCCG  | 81.42% / 1.18      | 90.96% / 1.66
    AMG    | 76.89% / 1.10      | 73.88% / 2.10
    FFT    | 90.02% / 1.35      | 88.49% / 1.81
    IS     | 86.88% / 1.04      | 84.11% / 1.79

The shape to reproduce: IPAS's best configuration always has a (much)
smaller slowdown than Baseline's at comparable SOC reduction.
"""

import pytest

from repro.experiments import (
    banner,
    best_by_ideal_point,
    format_table,
    run_full_evaluation,
)
from repro.workloads import WORKLOAD_NAMES

from conftest import one_shot


def test_table4_best_configurations(benchmark, report, scale):
    def compute():
        rows = []
        for name in WORKLOAD_NAMES:
            result = run_full_evaluation(name, scale)
            ipas = best_by_ideal_point(result["ipas"])
            base = best_by_ideal_point(result["baseline"])
            rows.append(
                [
                    name,
                    round(ipas["soc_reduction"], 2),
                    round(base["soc_reduction"], 2),
                    round(ipas["slowdown"], 3),
                    round(base["slowdown"], 3),
                ]
            )
        return rows

    rows = one_shot(benchmark, compute)
    text = banner("Table 4: best configurations (ideal-point criterion)") + "\n"
    text += format_table(
        [
            "code",
            "IPAS SOC red. %",
            "Baseline SOC red. %",
            "IPAS slowdown",
            "Baseline slowdown",
        ],
        rows,
    )
    report("table4_best_configs", text)

    slow_ipas = [row[3] for row in rows]
    slow_base = [row[4] for row in rows]
    # Headline claim: IPAS costs less than Baseline per code, and overall
    # slowdowns stay modest (paper: 1.04x-1.35x for IPAS).
    wins = sum(1 for i, b in zip(slow_ipas, slow_base) if i <= b + 1e-9)
    assert wins >= len(rows) - 1, f"IPAS cheaper on only {wins}/{len(rows)} codes"
    assert max(slow_ipas) < 2.0
    # SOC reduction is substantial for both techniques.
    for row in rows:
        assert row[1] > 30.0, f"{row[0]}: IPAS reduction too low"
