"""Figure 9 (+ Table 5): SOC reduction as the input varies.

IPAS is trained on input 1 and evaluated on the larger inputs 2-4 of each
code's Table-5 ladder.  The paper's expectation: SOC reduction transfers —
it stays comparable to the training-input reduction (AMG being the noted
exception, with extra variability from its changing hierarchy).
"""

import pytest

from repro.experiments import banner, format_table, run_input_variation
from repro.workloads import WORKLOAD_NAMES, get_workload

from conftest import one_shot


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_fig9_input_variation(benchmark, report, scale, name):
    result = one_shot(benchmark, lambda: run_input_variation(name, scale=scale))

    rows = [
        [
            p["input"],
            p["label"],
            f"{100*p['unprotected_soc']:.1f}%",
            f"{100*p['protected_soc']:.1f}%",
            round(p["soc_reduction"], 1),
        ]
        for p in result["points"]
    ]
    text = banner(
        f"Figure 9: input variation — {name} (trained on input 1)"
    ) + "\n"
    text += format_table(
        ["input", "parameters", "unprot. SOC", "prot. SOC", "SOC reduction %"],
        rows,
    )
    text += f"\nmean reduction: {result['mean_reduction']:.1f}%"
    report(f"fig9_input_variation_{name}", text)

    reductions = [p["soc_reduction"] for p in result["points"]]
    # Protection trained on input 1 must still reduce SOC on larger inputs
    # (the paper tolerates variability; AMG is its own noted exception).
    transferred = [r for r in reductions[1:] if r > 20.0]
    assert len(transferred) >= max(1, len(reductions[1:]) - 1), reductions


def test_table5_input_ladder(benchmark, report):
    def compute():
        rows = []
        for name in WORKLOAD_NAMES:
            workload = get_workload(name)
            rows.append(
                [name] + [workload.input_labels[i] for i in (1, 2, 3, 4)]
            )
        return rows

    rows = one_shot(benchmark, compute)
    text = banner("Table 5: application inputs (input 1 trains IPAS)") + "\n"
    text += format_table(
        ["code", "input 1 (training)", "input 2", "input 3", "input 4"], rows
    )
    report("table5_inputs", text)
    assert len(rows) == 5
