"""Shared fixtures for the benchmark / experiment-regeneration suite.

Each benchmark regenerates one paper table or figure.  Results print to
stdout (run with ``-s`` to watch live) and are also written to
``benchmarks/results/<name>.txt`` so ``bench_output.txt`` plus that
directory together capture the whole reproduction.

Campaign sizes come from :class:`repro.core.ExperimentScale` — set
``IPAS_SCALE=paper`` for the paper's full 2500/500/1024 campaign sizes,
``IPAS_SCALE=quick`` for a smoke pass (the default preset is laptop-scale).
Computed results are cached under ``.ipas_cache/``, so regenerating another
figure over the same campaigns is fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.core import ExperimentScale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def report():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        sys.stdout.write(text + "\n")  # visible with -s; captured otherwise

    return emit


def one_shot(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
