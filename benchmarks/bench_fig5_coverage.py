"""Figure 5: coverage — outcome proportions per technique per workload.

One bar group per code: unprotected, full duplication, the top-N IPAS
configurations, and the top-N Shoestring-style baseline configurations; the
label on top of each paper bar is the SOC percentage, printed here as the
last column.  Paper-level expectations checked: unprotected SOC is a small
fraction (masking dominates), full duplication detects the most faults, and
Baseline detects more than IPAS (it protects more instructions).
"""

import pytest

from repro.experiments import banner, format_table, outcome_row, percent, run_full_evaluation
from repro.workloads import WORKLOAD_NAMES

from conftest import one_shot


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_fig5_coverage(benchmark, report, scale, name):
    result = one_shot(benchmark, lambda: run_full_evaluation(name, scale))

    headers = ["variant", "symptom", "detected", "masked", "SOC"]
    rows = [["unprotected", *outcome_row(result["unprotected"]["counts"])]]
    rows.append(["full dup.", *outcome_row(result["full"]["counts"])])
    for entry in result["ipas"]:
        rows.append([f"IPAS {entry['label']}", *outcome_row(entry["counts"])])
    for entry in result["baseline"]:
        rows.append([f"Baseline {entry['label']}", *outcome_row(entry["counts"])])

    text = banner(f"Figure 5: coverage — {name} "
                  f"({result['unprotected']['trials']} injections/variant)") + "\n"
    text += format_table(headers, rows)
    text += (
        f"\nmargin of error (95%): "
        f"{percent(result['margin_of_error_95'])} (paper: 0.68%-1.34%)"
    )
    report(f"fig5_coverage_{name}", text)

    unprotected = result["unprotected"]
    # Unprotected: no duplication checks exist, masking dominates SOC.
    assert unprotected["counts"]["detected"] == 0.0
    assert unprotected["counts"]["masked"] > unprotected["counts"]["soc"]
    # Full duplication detects the largest share of faults.
    all_detected = [e["counts"]["detected"] for e in result["ipas"] + result["baseline"]]
    assert result["full"]["counts"]["detected"] >= max(all_detected) - 0.05
    # Baseline protects more instructions, so it detects more than IPAS
    # on average (paper §6.2).
    mean = lambda xs: sum(xs) / len(xs)
    assert mean([e["counts"]["detected"] for e in result["baseline"]]) >= mean(
        [e["counts"]["detected"] for e in result["ipas"]]
    ) - 0.05
