"""Ablation benches for the design choices DESIGN.md calls out.

* classifier choice (§4.3.1): SVM vs decision tree vs k-NN,
* training-set size (§4.1/§6.3): the F-score learning curve,
* feature categories (Table 1): leave-one-out and alone,
* top-N configurations (§6.1): N=3 vs N=5 under the ideal-point pick.

Ablations run on two codes with contrasting profiles: IS (integer/pointer
heavy) and HPCCG (floating-point heavy).
"""

import pytest

from repro.experiments import (
    banner,
    format_table,
    run_classifier_ablation,
    run_feature_ablation,
    run_topn_ablation,
    run_training_size_ablation,
)

from conftest import one_shot

ABLATION_CODES = ["is", "hpccg"]


@pytest.mark.parametrize("name", ABLATION_CODES)
def test_ablation_classifier_choice(benchmark, report, scale, name):
    result = one_shot(benchmark, lambda: run_classifier_ablation(name, scale))
    rows = [[clf, round(score, 3)] for clf, score in result["scores"].items()]
    text = banner(f"Ablation: classifier choice — {name} "
                  f"(positive fraction {result['positive_fraction']:.2f})") + "\n"
    text += format_table(["classifier", "held-out F-score (Eq. 1)"], rows)
    report(f"ablation_classifier_{name}", text)

    scores = result["scores"]
    # §4.3.1: the SVM must be competitive with (not dominated by) the
    # decision tree and k-NN on this class-imbalanced data.
    assert scores["svm"] >= max(scores["decision_tree"], scores["knn"]) - 0.15


@pytest.mark.parametrize("name", ABLATION_CODES)
def test_ablation_training_size(benchmark, report, scale, name):
    sizes = (50, 100, 200, min(400, scale.train_samples))
    result = one_shot(
        benchmark, lambda: run_training_size_ablation(name, sizes, scale)
    )
    rows = [[p["size"], round(p["fscore"], 3)] for p in result["points"]]
    text = banner(f"Ablation: training-set size — {name}") + "\n"
    text += format_table(["fault-injection samples", "F-score"], rows)
    report(f"ablation_training_size_{name}", text)

    scores = [p["fscore"] for p in result["points"]]
    # More data should not make the classifier dramatically worse.
    assert scores[-1] >= scores[0] - 0.25


@pytest.mark.parametrize("name", ABLATION_CODES)
def test_ablation_feature_categories(benchmark, report, scale, name):
    result = one_shot(benchmark, lambda: run_feature_ablation(name, scale))
    rows = [["all 31 features", round(result["all_features"], 3), "-"]]
    for category in result["without"]:
        rows.append(
            [
                category,
                round(result["without"][category], 3),
                round(result["only"][category], 3),
            ]
        )
    text = banner(f"Ablation: Table-1 feature categories — {name}") + "\n"
    text += format_table(
        ["category", "F-score without it", "F-score alone"], rows
    )
    report(f"ablation_features_{name}", text)

    # Every single category alone is worse than (or equal to) using all 31
    # features, within noise — the categories are complementary.
    for category, alone in result["only"].items():
        assert alone <= result["all_features"] + 0.2, category


@pytest.mark.parametrize("name", ABLATION_CODES)
def test_ablation_top_n(benchmark, report, scale, name):
    result = one_shot(benchmark, lambda: run_topn_ablation(name, scale))
    text = banner(f"Ablation: top-N configurations — {name}") + "\n"
    text += format_table(
        ["pick", "config", "SOC reduction %", "slowdown"],
        [
            [
                "best of top-5",
                result["top5_best"]["label"],
                round(result["top5_best"]["soc_reduction"], 1),
                round(result["top5_best"]["slowdown"], 3),
            ],
            [
                "best of top-3",
                result["top3_best"]["label"],
                round(result["top3_best"]["soc_reduction"], 1),
                round(result["top3_best"]["slowdown"], 3),
            ],
        ],
    )
    text += f"\nsame configuration chosen: {result['same_choice']}"
    report(f"ablation_topn_{name}", text)

    # §6.1: "we expect similar results with N=3" — top-3's best must be
    # close to top-5's best in the ideal-point metric.
    import math

    d5 = math.hypot(
        result["top5_best"]["slowdown"] - 1, result["top5_best"]["soc_reduction"] - 100
    )
    d3 = math.hypot(
        result["top3_best"]["slowdown"] - 1, result["top3_best"]["soc_reduction"] - 100
    )
    assert d3 <= d5 + 25.0
